"""repro — Stabilizing Byzantine-Fault Tolerant Storage, reproduced.

Executable reproduction of Bonomi, Potop-Butucaru & Tixeuil,
"Stabilizing Byzantine-Fault Tolerant Storage" (IPPS 2015): a
pseudo-stabilizing Byzantine-fault-tolerant multi-writer multi-reader
regular register with bounded timestamps, on a deterministic
discrete-event message-passing simulator, with specification checkers,
baseline protocols and the full experiment harness (see DESIGN.md and
EXPERIMENTS.md).

Quick tour::

    from repro import RegisterSystem, SystemConfig, evaluate_stabilization

    system = RegisterSystem(SystemConfig(n=6, f=1), seed=42, n_clients=3)
    system.write_sync("c0", "hello")
    assert system.read_sync("c1") == "hello"

Subpackages:

* :mod:`repro.sim` — simulation substrate (scheduler, channels, faults,
  stabilizing data-link);
* :mod:`repro.labels` — bounded labeling systems (Alon et al. k-SBLS and
  baselines);
* :mod:`repro.wtsg` — weighted timestamp graphs;
* :mod:`repro.core` — the paper's protocol;
* :mod:`repro.byzantine` — the adversary zoo;
* :mod:`repro.baselines` — comparison protocols (ABD, Malkhi-Reiter,
  Kanjani-style, TM_1R);
* :mod:`repro.spec` — histories and specification checkers;
* :mod:`repro.workloads` — workload scripts and fault schedules;
* :mod:`repro.harness` — metrics, tables and experiments E1-E12.
"""

__version__ = "1.0.0"

from repro.core.client import ABORT
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.labels.alon import AlonLabelingScheme
from repro.spec.regularity import RegularityChecker
from repro.spec.stabilization import evaluate_stabilization

__all__ = [
    "__version__",
    "ABORT",
    "SystemConfig",
    "RegisterSystem",
    "AlonLabelingScheme",
    "RegularityChecker",
    "evaluate_stabilization",
]
