"""Fabric lifecycle: spawn the shard hosts, own the control plane.

The supervisor turns "shards=4" into four :class:`ShardSpec` s with
independent derived seeds, boots one host per shard — separate OS
processes by default (``mode="process"``), same-loop groups for fast
tests (``mode="inline"``) — and publishes the started fabric as a
:class:`~repro.fabric.topology.FabricTopology`. Every later verb
(partition a shard, corruption wave, retire/respawn a server) is a
one-line relay to the owning host; after a respawn the supervisor also
patches the topology's address book, so late-connecting clients dial
the replacement.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional, Sequence

from repro.errors import ConfigurationError
from repro.fabric.host import InlineShardHost, ProcessShardHost
from repro.fabric.ring import DEFAULT_VNODES
from repro.fabric.topology import FabricTopology, ShardSpec
from repro.net.transport import DEFAULT_FLUSH_WATERMARK
from repro.net.wire import DEFAULT_WIRE
from repro.sim.environment import derive_seed

__all__ = ["FabricSupervisor"]


class FabricSupervisor:
    """Spawns, commands, and tears down one fabric of shard hosts.

    Args:
        shards: how many shards (ids ``shard0 .. shard{k-1}``), or pass
            ``specs`` for full control.
        n / f: per-shard replication (validated per the paper's bound).
        seed: master seed; each shard derives its own stream.
        byzantine: optional zoo strategy *name* — every shard then hosts
            one such server in its last slot (per-shard budget, as the
            KV store's compromised-provider scenario does).
        proxied: front every server with an identity-policy
            :class:`~repro.net.proxy.FaultProxy` (required by the
            partition verbs).
        mode: ``"process"`` (one OS process per shard, the deployment
            shape) or ``"inline"`` (same loop, fast tests).
        specs: explicit :class:`ShardSpec` s, overriding the knobs above.
    """

    def __init__(
        self,
        shards: int = 2,
        n: int = 6,
        f: int = 1,
        seed: int = 0,
        byzantine: Optional[str] = None,
        proxied: bool = False,
        wire: int = DEFAULT_WIRE,
        family: str = "tcp",
        socket_dir: Optional[str] = None,
        flush_watermark: int = DEFAULT_FLUSH_WATERMARK,
        mode: str = "process",
        vnodes: int = DEFAULT_VNODES,
        specs: Optional[Sequence[ShardSpec]] = None,
    ) -> None:
        if mode not in ("process", "inline"):
            raise ConfigurationError(f"unknown fabric mode {mode!r}")
        if specs is None:
            if shards < 1:
                raise ConfigurationError(f"need at least one shard: {shards}")
            built = []
            for i in range(shards):
                shard_id = f"shard{i}"
                byz: tuple[tuple[str, str], ...] = ()
                if byzantine is not None:
                    last = f"s{n - 1}"
                    byz = ((last, byzantine),)
                built.append(
                    ShardSpec(
                        shard_id=shard_id,
                        n=n,
                        f=f,
                        seed=derive_seed(seed, f"fabric:{shard_id}"),
                        byzantine=byz,
                        proxied=proxied,
                        wire=wire,
                        family=family,
                        socket_dir=socket_dir,
                        flush_watermark=flush_watermark,
                    )
                )
            specs = built
        specs = tuple(specs)
        ids = [spec.shard_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate shard ids: {ids}")
        self.specs = specs
        self.seed = seed
        self.mode = mode
        self.vnodes = vnodes
        self.hosts: dict[str, Any] = {}
        self.topology: Optional[FabricTopology] = None
        self.started = False

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> FabricTopology:
        """Boot every shard host concurrently; returns the topology."""
        host_cls = ProcessShardHost if self.mode == "process" else InlineShardHost
        hosts = {spec.shard_id: host_cls(spec) for spec in self.specs}
        self.hosts = hosts
        started = await asyncio.gather(
            *(hosts[spec.shard_id].start() for spec in self.specs)
        )
        addresses = {
            spec.shard_id: addrs for spec, addrs in zip(self.specs, started)
        }
        self.topology = FabricTopology(self.specs, addresses, vnodes=self.vnodes)
        self.started = True
        return self.topology

    async def stop(self) -> None:
        """Tear down every host (idempotent; best-effort per shard)."""
        hosts, self.hosts = dict(self.hosts), {}
        self.started = False
        if not hosts:
            return
        await asyncio.gather(
            *(host.stop() for host in hosts.values()), return_exceptions=True
        )

    async def __aenter__(self) -> "FabricSupervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- control plane ---------------------------------------------------
    def host(self, shard_id: str) -> Any:
        try:
            return self.hosts[shard_id]
        except KeyError:
            raise ConfigurationError(f"unknown shard id {shard_id!r}") from None

    async def ping(self, shard_id: str) -> str:
        return await self.host(shard_id).call("ping")

    async def kill_server(self, shard_id: str, sid: str) -> None:
        await self.host(shard_id).call("kill", sid)

    async def heal_server(self, shard_id: str, sid: str) -> None:
        await self.host(shard_id).call("heal", sid)

    async def kill_shard(self, shard_id: str) -> None:
        """Partition the whole shard (sever every fault proxy)."""
        await self.host(shard_id).call("kill_all")

    async def heal_shard(self, shard_id: str) -> None:
        await self.host(shard_id).call("heal_all")

    async def corrupt_shard(self, shard_id: str, wave_seed: int) -> list[str]:
        """Corruption wave on the shard's correct servers; ids touched."""
        return await self.host(shard_id).call("corrupt", wave_seed)

    async def retire(self, shard_id: str, sid: str) -> None:
        await self.host(shard_id).call("retire", sid)

    async def respawn(
        self, shard_id: str, sid: str, transfer: bool = True
    ) -> str:
        """Respawn a retired server; returns (and records) the address."""
        address = await self.host(shard_id).call("respawn", sid, transfer)
        if self.topology is not None:
            self.topology.addresses[shard_id][sid] = address
        return address

    async def stats(self) -> dict[str, dict[str, int]]:
        """Server-side message totals per shard."""
        out: dict[str, dict[str, int]] = {}
        for spec in self.specs:
            out[spec.shard_id] = await self.host(spec.shard_id).call("stats")
        return out
