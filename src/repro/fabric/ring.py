"""Consistent-hash key placement, deterministic across interpreters.

The ring hashes with :func:`zlib.crc32` — the same choice the Byzantine
zoo's ``stable_parity`` made — because builtin ``hash()`` is salted per
interpreter run (``PYTHONHASHSEED``): a placement that moved between the
CLI process and a shard host, or between two runs of the same benchmark,
would silently route the same key to different registers. crc32 of the
UTF-8 bytes is a pure function of the string on every platform.

Each shard contributes :data:`DEFAULT_VNODES` virtual points so the
keyspace splits evenly and adding a shard steals roughly ``1/k`` of the
keys (and *only* steals: a consistent-hash insertion can reassign a key
to the new shard, never between two old ones — the rebalance-bound test
pins both properties).
"""

from __future__ import annotations

import bisect
import zlib
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_VNODES", "HashRing", "ring_hash"]

#: Virtual points per shard. 64 keeps the per-shard share within a few
#: percent of 1/k for single-digit shard counts while the ring stays
#: tiny (k*64 sorted ints).
DEFAULT_VNODES = 64


def ring_hash(text: str) -> int:
    """crc32 of the UTF-8 bytes — process- and seed-invariant."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """Key -> shard id via first-clockwise-vnode placement.

    Args:
        shard_ids: the shards, in any order (the ring sorts points by
            hash; ties break by shard id, so construction order never
            matters).
        vnodes: virtual points per shard.
    """

    def __init__(
        self, shard_ids: Sequence[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        ids = list(shard_ids)
        if not ids:
            raise ConfigurationError("a ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate shard ids: {ids}")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1: {vnodes}")
        self.shard_ids = tuple(sorted(ids))
        self.vnodes = vnodes
        self._points = sorted(
            (ring_hash(f"{sid}#{i}"), sid)
            for sid in self.shard_ids
            for i in range(vnodes)
        )
        self._hashes = [point for point, _ in self._points]

    def place(self, key: str) -> str:
        """The shard owning ``key``: the first vnode strictly clockwise
        of ``ring_hash(key)`` (wrapping past the top of the ring)."""
        idx = bisect.bisect_right(self._hashes, ring_hash(key))
        return self._points[idx % len(self._points)][1]

    def spread(self, keys: Sequence[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (all shards present)."""
        counts = {sid: 0 for sid in self.shard_ids}
        for key in keys:
            counts[self.place(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing({list(self.shard_ids)!r}, vnodes={self.vnodes})"
