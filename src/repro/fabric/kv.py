"""Plugging the live fabric into ``StabilizingKVStore.shard_factory``.

:class:`FabricKV` runs a whole fabric (supervisor + per-key endpoints)
on a private event loop in a background thread and exposes the
*synchronous* surface the KV store's seam expects: its
:meth:`~FabricKV.shard_factory` method is passed straight to
``StabilizingKVStore(shard_factory=...)``, and each backend it returns
speaks the ``RegisterSystem`` operations dialect — ``write_sync`` /
``read_sync`` / ``history`` / ``checker`` / ``check_regularity`` — so
``put``/``get``/``audit`` work unchanged while every operation really
crosses sockets (and, in ``mode="process"``, OS process boundaries).

One honest caveat, documented rather than hidden: a shard hosts ONE
paper register. Keys that the ring co-locates on a shard share that
register — the fabric's unit of isolation (and of audit) is the shard,
so all keys of one shard see one interleaved history and the *last*
write to the shard wins reads, whichever key wrote it. Distinct keys on
distinct shards (what the scale-out exists for) behave as fully
independent registers; ``docs/FABRIC.md`` spells out the contract. The
audit seam is per-shard accordingly: every backend of a shard reports
the shard's history.

Corruption hooks (``corrupt_servers``/``corrupt_clients``) are wired to
the fabric's control plane so ``store.strike()`` reaches live shards
too; note the store stamps strike times with its *sim* clock while live
histories carry :class:`~repro.net.bridge.LiveClock` times — pass an
explicit ``last_fault_time`` from :meth:`FabricKV.now` when auditing a
struck live store.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.fabric.client import FabricClient
from repro.fabric.supervisor import FabricSupervisor
from repro.fabric.topology import FabricTopology
from repro.net.daemon import ClientEndpoint
from repro.sim.environment import derive_seed
from repro.spec.regularity import RegularityChecker, RegularityVerdict

__all__ = ["FabricKV"]


class FabricKV:
    """A live fabric behind a synchronous facade (see module docstring).

    Use as a context manager::

        with FabricKV(shards=2, mode="inline") as fabric:
            store = StabilizingKVStore(shard_factory=fabric.shard_factory)
            store.put("alpha", 1)

    Args (fabric knobs mirror :class:`FabricSupervisor`):
        op_timeout: per-operation deadline on every endpoint.
        call_timeout: how long a synchronous call waits for the loop
            thread before giving up.
    """

    def __init__(
        self,
        shards: int = 2,
        n: int = 6,
        f: int = 1,
        seed: int = 0,
        byzantine: Optional[str] = None,
        proxied: bool = False,
        wire: int = 2,
        mode: str = "inline",
        op_timeout: float = 30.0,
        call_timeout: float = 120.0,
    ) -> None:
        self.seed = seed
        self.op_timeout = op_timeout
        self.call_timeout = call_timeout
        self.supervisor = FabricSupervisor(
            shards=shards,
            n=n,
            f=f,
            seed=seed,
            byzantine=byzantine,
            proxied=proxied,
            wire=wire,
            mode=mode,
        )
        self.topology: Optional[FabricTopology] = None
        self.fabric_client: Optional[FabricClient] = None
        self.started = False
        self._backends: dict[str, "_LiveShardBackend"] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- loop-thread plumbing --------------------------------------------
    def _thread_main(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.call_soon(ready.set)
        try:
            loop.run_forever()
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    def _call(self, coro: Any) -> Any:
        """Run ``coro`` on the fabric loop; block the caller until done."""
        loop = self._loop
        if loop is None or not loop.is_running():
            coro.close()
            raise ConfigurationError("FabricKV is not started")
        future = asyncio.run_coroutine_threadsafe(coro, loop)
        return future.result(timeout=self.call_timeout)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "FabricKV":
        if self.started:
            return self
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main,
            args=(ready,),
            name="repro-fabric-kv",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=self.call_timeout):  # pragma: no cover
            raise ConfigurationError("fabric loop thread failed to start")
        self.started = True  # _call works from here on
        try:
            self.topology = self._call(self.supervisor.start())
            client = FabricClient(
                self.topology,
                clients_per_shard=1,  # routing pool for direct put/get
                seed=derive_seed(self.seed, "fabric-kv:router"),
                op_timeout=self.op_timeout,
            )
            self._call(client.connect())
            self.fabric_client = client
        except BaseException:
            self.started = False
            self._stop_loop()
            raise
        return self

    def close(self) -> None:
        if not self.started:
            return
        backends, self._backends = dict(self._backends), {}
        try:
            for backend in backends.values():
                self._call(backend._close())
            if self.fabric_client is not None:
                self._call(self.fabric_client.close())
            self._call(self.supervisor.stop())
        finally:
            self.started = False
            self._stop_loop()

    def _stop_loop(self) -> None:
        loop, self._loop = self._loop, None
        thread, self._thread = self._thread, None
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=self.call_timeout)

    def __enter__(self) -> "FabricKV":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the seam --------------------------------------------------------
    def shard_factory(
        self, store: Any, key: str, byzantine: Optional[dict] = None
    ) -> "_LiveShardBackend":
        """``StabilizingKVStore.shard_factory`` hook (pass bound).

        ``byzantine`` factories cannot be applied per key here: live
        shard hosts pick their own strategies at fabric boot (the
        supervisor's ``byzantine=`` knob). A store configured with
        ``byzantine_factory`` is therefore rejected loudly rather than
        silently ignored.
        """
        if byzantine:
            raise ConfigurationError(
                "live fabric shards choose Byzantine strategies at boot "
                "(FabricSupervisor(byzantine=...)); byzantine_factory on "
                "the store cannot reach them"
            )
        if not self.started or self.topology is None:
            raise ConfigurationError("FabricKV is not started")
        shard_id = self.topology.place(key)
        clients = getattr(store, "clients_per_key", 1)
        backend = _LiveShardBackend(self, key, shard_id, clients)
        self._backends[key] = backend
        return backend

    def place(self, key: str) -> str:
        if self.topology is None:
            raise ConfigurationError("FabricKV is not started")
        return self.topology.place(key)

    def now(self) -> float:
        """The fabric's history clock (for explicit audit fault times)."""
        if self.fabric_client is None:
            raise ConfigurationError("FabricKV is not started")
        return self.fabric_client.clock.now()


class _LiveShardBackend:
    """One key's view of its live shard, RegisterSystem-dialect.

    Client endpoints are created lazily per cid (the store names them
    ``{key}:c{i}``) on the fabric loop; the history/checker surface is
    the *shard's* — see the module docstring for the sharing contract.
    """

    def __init__(
        self, fabric: FabricKV, key: str, shard_id: str, clients: int
    ) -> None:
        self.fabric = fabric
        self.key = key
        self.shard_id = shard_id
        self.clients = clients
        self._endpoints: dict[str, ClientEndpoint] = {}

    # -- RegisterSystem operations dialect ------------------------------
    def write_sync(self, cid: str, value: Any) -> Any:
        return self.fabric._call(self._op(cid, "write", value))

    def read_sync(self, cid: str) -> Any:
        return self.fabric._call(self._op(cid, "read"))

    @property
    def history(self):
        client = self.fabric.fabric_client
        assert client is not None
        return client.histories[self.shard_id]

    def checker(self, **overrides: Any) -> RegularityChecker:
        client = self.fabric.fabric_client
        assert client is not None
        return client.checker(self.shard_id, **overrides)

    def check_regularity(self, **overrides: Any) -> RegularityVerdict:
        client = self.fabric.fabric_client
        assert client is not None
        return client.check_shard(self.shard_id, **overrides)

    # -- store-wide fault hooks (strike) --------------------------------
    def corrupt_servers(self) -> None:
        """Corruption wave over the shard's correct servers (live E6)."""
        self.fabric._call(
            self.fabric.supervisor.corrupt_shard(
                self.shard_id,
                wave_seed=derive_seed(self.fabric.seed, f"strike:{self.key}"),
            )
        )

    def corrupt_clients(self) -> None:
        """Crash-restart this key's clients (the live corruption model
        for in-operation client state; see :mod:`repro.net.daemon`)."""
        self.fabric._call(self._crash_clients())

    # -- internals (run on the fabric loop) ------------------------------
    async def _endpoint(self, cid: str) -> ClientEndpoint:
        endpoint = self._endpoints.get(cid)
        if endpoint is None:
            spec = self.fabric.topology.spec(self.shard_id)
            fabric_client = self.fabric.fabric_client
            endpoint = ClientEndpoint(
                cid,
                spec.config(),
                self.fabric.topology.addresses[self.shard_id],
                history=fabric_client.histories[self.shard_id],
                clock=fabric_client.clock,
                scheme=fabric_client.schemes[self.shard_id],
                seed=derive_seed(self.fabric.seed, f"kv:{cid}"),
                op_timeout=self.fabric.op_timeout,
                wire=spec.wire,
                flush_watermark=spec.flush_watermark,
            )
            await endpoint.connect()
            self._endpoints[cid] = endpoint
        return endpoint

    async def _op(self, cid: str, kind: str, *args: Any) -> Any:
        endpoint = await self._endpoint(cid)
        if kind == "write":
            return await endpoint.write(*args)
        return await endpoint.read()

    async def _crash_clients(self) -> None:
        for cid in sorted(self._endpoints):
            client = self._endpoints[cid].client
            client.crash()
            client.restart()

    async def _close(self) -> None:
        endpoints, self._endpoints = dict(self._endpoints), {}
        for endpoint in endpoints.values():
            await endpoint.close()
