"""The serializable fabric layout: ``repro-fabric-topology/1``.

A :class:`ShardSpec` is everything a shard host needs to boot its
register group — and nothing else, so it pickles cleanly across the
``multiprocessing`` spawn boundary (Byzantine servers travel as zoo
strategy *names*, resolved against
:data:`~repro.byzantine.strategies.STRATEGY_ZOO` inside the host).

A :class:`FabricTopology` is the started fabric's public shape: the
specs plus the concrete server addresses each shard actually bound, and
the hash ring derived from the shard ids. Its dict form is the
``repro-fabric-topology/1`` artifact — enough for a client in another
process (or another machine, for tcp addresses) to dial every shard and
route keys identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.fabric.ring import DEFAULT_VNODES, HashRing
from repro.net.transport import DEFAULT_FLUSH_WATERMARK
from repro.net.wire import DEFAULT_WIRE

__all__ = ["TOPOLOGY_FORMAT", "FabricTopology", "ShardSpec"]

TOPOLOGY_FORMAT = "repro-fabric-topology/1"


@dataclass(frozen=True)
class ShardSpec:
    """One shard's boot parameters (picklable; see module docstring).

    ``byzantine`` pairs ``(server id, zoo strategy name)`` — at most
    ``f`` of them, exactly like the sim's per-shard budget.
    """

    shard_id: str
    n: int = 6
    f: int = 1
    seed: int = 0
    byzantine: tuple[tuple[str, str], ...] = ()
    proxied: bool = False
    wire: int = DEFAULT_WIRE
    family: str = "tcp"
    socket_dir: Optional[str] = None
    flush_watermark: int = DEFAULT_FLUSH_WATERMARK

    def __post_init__(self) -> None:
        if not self.shard_id:
            raise ConfigurationError("shard_id must be non-empty")
        config = self.config()  # validates the n >= 5f+1 bound
        if len(self.byzantine) > self.f:
            raise ConfigurationError(
                f"{self.shard_id}: {len(self.byzantine)} Byzantine servers "
                f"configured but f={self.f}"
            )
        for sid, strategy in self.byzantine:
            if sid not in config.server_ids:
                raise ConfigurationError(
                    f"{self.shard_id}: unknown Byzantine server id {sid!r}"
                )
            if strategy not in STRATEGY_ZOO:
                raise ConfigurationError(
                    f"{self.shard_id}: unknown strategy {strategy!r}; "
                    f"known: {sorted(STRATEGY_ZOO)}"
                )
        if self.family not in ("tcp", "unix"):
            raise ConfigurationError(f"unknown address family {self.family!r}")
        if self.family == "unix" and not self.socket_dir:
            raise ConfigurationError("family='unix' needs a socket_dir")

    def config(self) -> SystemConfig:
        return SystemConfig(n=self.n, f=self.f)

    def factories(self) -> dict[str, Any]:
        """Server id -> zoo class, resolved locally (never pickled)."""
        return {sid: STRATEGY_ZOO[name] for sid, name in self.byzantine}

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "n": self.n,
            "f": self.f,
            "seed": self.seed,
            "byzantine": [list(pair) for pair in self.byzantine],
            "proxied": self.proxied,
            "wire": self.wire,
            "family": self.family,
            "socket_dir": self.socket_dir,
            "flush_watermark": self.flush_watermark,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardSpec":
        return cls(
            shard_id=data["shard_id"],
            n=data["n"],
            f=data["f"],
            seed=data["seed"],
            byzantine=tuple(
                (sid, name) for sid, name in data.get("byzantine", ())
            ),
            proxied=data.get("proxied", False),
            wire=data.get("wire", DEFAULT_WIRE),
            family=data.get("family", "tcp"),
            socket_dir=data.get("socket_dir"),
            flush_watermark=data.get("flush_watermark", DEFAULT_FLUSH_WATERMARK),
        )


class FabricTopology:
    """Specs + bound addresses + the derived ring (serializable)."""

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        addresses: dict[str, dict[str, str]],
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        specs = tuple(specs)
        ids = [spec.shard_id for spec in specs]
        missing = set(ids) - set(addresses)
        if missing:
            raise ConfigurationError(
                f"no addresses for shards: {sorted(missing)}"
            )
        for spec in specs:
            absent = set(spec.config().server_ids) - set(addresses[spec.shard_id])
            if absent:
                raise ConfigurationError(
                    f"{spec.shard_id}: missing addresses for {sorted(absent)}"
                )
        self.specs = specs
        self.vnodes = vnodes
        self.addresses = {sid: dict(addresses[sid]) for sid in ids}
        self.ring = HashRing(ids, vnodes=vnodes)
        self._by_id = {spec.shard_id: spec for spec in specs}

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(spec.shard_id for spec in self.specs)

    def spec(self, shard_id: str) -> ShardSpec:
        try:
            return self._by_id[shard_id]
        except KeyError:
            raise ConfigurationError(f"unknown shard id {shard_id!r}") from None

    def place(self, key: str) -> str:
        """The shard id owning ``key`` (the ring's placement rule)."""
        return self.ring.place(key)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": TOPOLOGY_FORMAT,
            "vnodes": self.vnodes,
            "shards": [
                {**spec.to_dict(), "servers": dict(self.addresses[spec.shard_id])}
                for spec in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FabricTopology":
        fmt = data.get("format")
        if fmt != TOPOLOGY_FORMAT:
            raise ConfigurationError(
                f"not a {TOPOLOGY_FORMAT} document: format={fmt!r}"
            )
        specs = []
        addresses = {}
        for entry in data["shards"]:
            entry = dict(entry)
            servers = entry.pop("servers")
            spec = ShardSpec.from_dict(entry)
            specs.append(spec)
            addresses[spec.shard_id] = dict(servers)
        return cls(specs, addresses, vnodes=data.get("vnodes", DEFAULT_VNODES))
