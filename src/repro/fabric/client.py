"""The fabric's client side: route, multiplex, judge per shard.

A :class:`FabricClient` owns ``clients_per_shard`` worker
:class:`~repro.net.daemon.ClientEndpoint` s *per shard*, all stamped by
one shared :class:`~repro.net.bridge.LiveClock` into per-shard
:class:`~repro.spec.history.History` objects. Routing is the topology's
hash ring; a shard is one paper register, so two keys co-located on a
shard share that register's serialization (see ``docs/FABRIC.md``).

Per-shard worker pools are the blast-radius design point: an operation
stuck on a partitioned shard stalls only that shard's workers — traffic
to healthy shards never queues behind it.

Judging is unchanged from the single-group tier: each shard's history
goes to the same sweep :class:`~repro.spec.regularity.RegularityChecker`
a :class:`~repro.net.cluster.LiveRegisterCluster` (or the sim) uses,
with the scheme rebuilt from that shard's config — schemes are
parameterized only by ``k``, so client and shard host agree without
sharing objects.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.server import INITIAL_VALUE
from repro.errors import ConfigurationError
from repro.fabric.topology import FabricTopology
from repro.net.bridge import LiveClock
from repro.net.daemon import ClientEndpoint, default_scheme
from repro.sim.environment import derive_seed
from repro.sim.tracing import MessageStats
from repro.spec.history import History
from repro.spec.regularity import RegularityChecker, RegularityVerdict

__all__ = ["FabricClient"]


class FabricClient:
    """Dial every shard; ``put``/``get`` route by key.

    Args:
        topology: a started fabric's layout (addresses included).
        clients_per_shard: endpoints per shard
            (``{shard_id}.c0 .. c{m-1}``); each is a sequential protocol
            client, so this is also the shard's op concurrency.
        seed: base for every endpoint's derived RNG stream.
        op_timeout: per-operation deadline before an endpoint
            crash-restarts its client (see :mod:`repro.net.daemon`).
    """

    def __init__(
        self,
        topology: FabricTopology,
        clients_per_shard: int = 2,
        seed: int = 0,
        op_timeout: float = 30.0,
    ) -> None:
        if clients_per_shard < 1:
            raise ConfigurationError("need at least one client per shard")
        self.topology = topology
        self.clients_per_shard = clients_per_shard
        self.seed = seed
        self.op_timeout = op_timeout
        self.clock = LiveClock()
        self.histories: dict[str, History] = {
            shard_id: History() for shard_id in topology.shard_ids
        }
        self.schemes = {
            spec.shard_id: default_scheme(spec.config())
            for spec in topology.specs
        }
        self.endpoints: dict[tuple[str, int], ClientEndpoint] = {}
        self.started = False

    # -- lifecycle -------------------------------------------------------
    async def connect(self) -> None:
        """Dial every shard's servers from every worker endpoint."""
        for spec in self.topology.specs:
            shard_id = spec.shard_id
            for i in range(self.clients_per_shard):
                endpoint = ClientEndpoint(
                    f"{shard_id}.c{i}",
                    spec.config(),
                    self.topology.addresses[shard_id],
                    history=self.histories[shard_id],
                    clock=self.clock,
                    scheme=self.schemes[shard_id],
                    seed=derive_seed(self.seed, f"fabric:{shard_id}.c{i}"),
                    op_timeout=self.op_timeout,
                    wire=spec.wire,
                    flush_watermark=spec.flush_watermark,
                )
                await endpoint.connect()
                self.endpoints[(shard_id, i)] = endpoint
        self.clock.start()  # history time zero = "fabric fully dialed"
        self.started = True

    async def close(self) -> None:
        endpoints, self.endpoints = dict(self.endpoints), {}
        self.started = False
        for endpoint in endpoints.values():
            await endpoint.close()

    async def __aenter__(self) -> "FabricClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- routing & operations -------------------------------------------
    def place(self, key: str) -> str:
        return self.topology.place(key)

    def endpoint(self, shard_id: str, worker: int = 0) -> ClientEndpoint:
        try:
            return self.endpoints[(shard_id, worker)]
        except KeyError:
            raise ConfigurationError(
                f"no endpoint ({shard_id!r}, worker {worker})"
            ) from None

    async def put(self, key: str, value: Any, worker: int = 0) -> Any:
        """Route a write to the shard owning ``key``."""
        return await self.endpoint(self.place(key), worker).write(value)

    async def get(self, key: str, worker: int = 0) -> Any:
        """Route a read to the shard owning ``key``."""
        return await self.endpoint(self.place(key), worker).read()

    # -- churn plumbing --------------------------------------------------
    async def redial_server(
        self, shard_id: str, sid: str, address: Optional[str] = None
    ) -> None:
        """Every worker of the shard redials one server (respawn/heal)."""
        for i in range(self.clients_per_shard):
            await self.endpoint(shard_id, i).redial(sid, address=address)

    async def redial_shard(self, shard_id: str) -> None:
        """Redial all of one shard's servers at their topology addresses.

        The heal path: a killed-then-healed proxy keeps its address, but
        the old connections are dead and HELLO must run again.
        """
        for sid in sorted(self.topology.addresses[shard_id]):
            await self.redial_server(
                shard_id, sid, address=self.topology.addresses[shard_id][sid]
            )

    # -- verification & accounting --------------------------------------
    def checker(self, shard_id: str, **overrides: Any) -> RegularityChecker:
        """A checker wired like the shard's sim twin would be."""
        kwargs: dict[str, Any] = dict(
            scheme=self.schemes[shard_id], initial_value=INITIAL_VALUE
        )
        kwargs.update(overrides)
        return RegularityChecker(**kwargs)

    def check_shard(self, shard_id: str, **overrides: Any) -> RegularityVerdict:
        """Judge one shard's captured history."""
        return self.checker(shard_id, **overrides).check(
            self.histories[shard_id]
        )

    def check_all(self, **overrides: Any) -> dict[str, RegularityVerdict]:
        return {
            shard_id: self.check_shard(shard_id, **overrides)
            for shard_id in self.topology.shard_ids
        }

    def stats(self) -> MessageStats:
        """Client-side message accounting merged over every endpoint."""
        merged = MessageStats()
        for endpoint in self.endpoints.values():
            merged = merged.merged_with(endpoint.stats)
        return merged

    @property
    def timeouts(self) -> int:
        return sum(e.timeouts for e in self.endpoints.values())

    def shard_timeouts(self, shard_id: str) -> int:
        return sum(
            endpoint.timeouts
            for (owner, _), endpoint in self.endpoints.items()
            if owner == shard_id
        )
