"""A nemesis aimed at one shard while the rest of the fabric serves.

Sharding earns its keep only if a shard failure is *contained*: the
blast-radius contract (``docs/FABRIC.md``) says a nemesis on one shard
may degrade that shard — stuck operations, timeouts, a stabilization
(rather than plain-regularity) verdict — but every other shard must
stay CLEAN under the sweep checker, keep completing operations, and
record zero timeouts. :func:`run_targeted_chaos` runs exactly that
scenario and returns a ``repro-fabric-chaos/1`` report whose
``blast_radius.contained`` field is the machine-checkable verdict.

Nemesis kinds (all aimed at ``ShardNemesis.target``):

* ``partition`` — sever every fault proxy of the target (needs a
  ``proxied`` fabric); heal after the window and redial. Operations
  scheduled into the window strand until the endpoint's ``op_timeout``
  crash-restarts its client, so the run should use a short one.
* ``corrupt`` — a corruption wave over the target's correct servers
  (each hosted process's own ``corrupt_state``), the paper's transient
  fault, live. Subsequent writes re-anchor the register.
* ``crash`` — retire the target's last correct server for real, then
  respawn it with PR 8 state transfer after the window.

The targeted shard is judged by
:func:`~repro.spec.stabilization.evaluate_stabilization` with the
fault window's edge as ``last_fault_time`` — degradation inside the
window is *attributed*, not excused: it must still stabilize after.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.fabric.client import FabricClient
from repro.fabric.loadgen import run_fabric_load
from repro.fabric.supervisor import FabricSupervisor
from repro.sim.environment import derive_seed
from repro.spec.stabilization import evaluate_stabilization

__all__ = ["FABRIC_CHAOS_FORMAT", "NEMESIS_KINDS", "ShardNemesis", "run_targeted_chaos"]

FABRIC_CHAOS_FORMAT = "repro-fabric-chaos/1"

NEMESIS_KINDS = ("partition", "corrupt", "crash")


@dataclass(frozen=True)
class ShardNemesis:
    """One targeted fault window.

    ``start`` is seconds after the measured window opens; ``length`` is
    how long the fault holds before the heal/respawn step.
    """

    target: str
    kind: str = "partition"
    start: float = 1.0
    length: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in NEMESIS_KINDS:
            raise ConfigurationError(
                f"unknown nemesis kind {self.kind!r}; known: {NEMESIS_KINDS}"
            )
        if self.start < 0 or self.length <= 0:
            raise ConfigurationError(
                f"bad nemesis window: start={self.start} length={self.length}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "kind": self.kind,
            "start": self.start,
            "length": self.length,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardNemesis":
        return cls(
            target=data["target"],
            kind=data.get("kind", "partition"),
            start=data.get("start", 1.0),
            length=data.get("length", 2.0),
        )


async def run_targeted_chaos(
    supervisor: FabricSupervisor,
    client: FabricClient,
    nemesis: ShardNemesis,
    rate_per_shard: float = 100.0,
    duration: float = 6.0,
    warmup: float = 0.5,
    read_fraction: float = 0.5,
    keys: int = 256,
    skew: str = "uniform",
    zipf_s: float = 1.1,
    seed: int = 0,
) -> dict[str, Any]:
    """Open-loop load over every shard + one fault window on the target.

    The fabric must be started and the client connected. Returns the
    ``repro-fabric-chaos/1`` report (see module docstring).
    """
    shard_ids = client.topology.shard_ids
    if nemesis.target not in shard_ids:
        raise ConfigurationError(f"unknown target shard {nemesis.target!r}")
    spec = client.topology.spec(nemesis.target)
    if nemesis.kind == "partition" and not spec.proxied:
        raise ConfigurationError(
            "partition nemesis needs a proxied fabric (FabricSupervisor("
            "proxied=True))"
        )
    if nemesis.start + nemesis.length >= duration:
        raise ConfigurationError(
            f"nemesis window [{nemesis.start}, "
            f"{nemesis.start + nemesis.length}) must close before the "
            f"duration {duration}s so the target can be observed healing"
        )
    clock = client.clock
    rate = rate_per_shard * len(shard_ids)
    load_task = asyncio.create_task(
        run_fabric_load(
            client,
            mode="open",
            rate=rate,
            duration=duration,
            warmup=warmup,
            read_fraction=read_fraction,
            keys=keys,
            skew=skew,
            zipf_s=zipf_s,
            seed=seed,
        )
    )

    await asyncio.sleep(warmup + nemesis.start)
    fault_time = clock.now()
    victim = None
    if nemesis.kind == "partition":
        await supervisor.kill_shard(nemesis.target)
    elif nemesis.kind == "corrupt":
        await supervisor.corrupt_shard(
            nemesis.target, wave_seed=derive_seed(seed, "fabric:chaos-wave")
        )
    else:  # crash
        correct = [
            sid
            for sid in spec.config().server_ids
            if sid not in {byz_sid for byz_sid, _ in spec.byzantine}
        ]
        victim = correct[-1]
        await supervisor.retire(nemesis.target, victim)

    await asyncio.sleep(nemesis.length)
    heal_time = clock.now()
    if nemesis.kind == "partition":
        await supervisor.heal_shard(nemesis.target)
        await client.redial_shard(nemesis.target)
    elif nemesis.kind == "crash":
        address = await supervisor.respawn(nemesis.target, victim, True)
        await client.redial_server(nemesis.target, victim, address=address)

    load = await load_task

    # Judging: bystanders owe plain regularity; the target owes
    # stabilization after the last moment the fault could still act.
    last_fault = fault_time if nemesis.kind == "corrupt" else heal_time
    per_shard: dict[str, Any] = {}
    degraded: list[str] = []
    bystanders_clean = True
    bystanders_completing = True
    bystander_timeouts = 0
    for shard_id in shard_ids:
        result = load.shards[shard_id]
        entry = result.to_dict()
        entry["role"] = "target" if shard_id == nemesis.target else "bystander"
        healthy = True
        if shard_id == nemesis.target:
            report = evaluate_stabilization(
                client.histories[shard_id],
                client.checker(shard_id),
                last_fault_time=last_fault,
            )
            entry["stabilized"] = bool(report.stabilized)
            entry["stabilization"] = report.summary()
            healthy = bool(report.stabilized)
        else:
            verdict = client.check_shard(shard_id, algorithm="sweep")
            entry["clean"] = bool(verdict.ok)
            bystanders_clean = bystanders_clean and bool(verdict.ok)
            bystanders_completing = bystanders_completing and result.completed > 0
            bystander_timeouts += result.timeouts
            healthy = bool(verdict.ok)
        if result.timeouts or not healthy:
            degraded.append(shard_id)
        per_shard[shard_id] = entry

    target_result = load.shards[nemesis.target]
    target_stabilized = bool(per_shard[nemesis.target]["stabilized"])
    contained = (
        bystanders_clean
        and bystanders_completing
        and bystander_timeouts == 0
        and set(degraded) <= {nemesis.target}
    )
    aggregate = load.aggregate
    return {
        "format": FABRIC_CHAOS_FORMAT,
        "nemesis": nemesis.to_dict(),
        "fault_time": fault_time,
        "heal_time": heal_time,
        "offered_ops_per_s": rate,
        "per_shard": per_shard,
        "aggregate": aggregate.to_dict(),
        "blast_radius": {
            "contained": contained,
            "bystanders_clean": bystanders_clean,
            "bystanders_completing": bystanders_completing,
            "bystander_timeouts": bystander_timeouts,
            "degraded": sorted(degraded),
            "target_stabilized": target_stabilized,
            "target_timeouts": target_result.timeouts,
            "target_completed": target_result.completed,
        },
    }
