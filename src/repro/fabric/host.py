"""One shard's register group, inline or in its own OS process.

:class:`ShardServerGroup` boots the shard's ``n``
:class:`~repro.net.daemon.ServerDaemon` s (Byzantine zoo substitutions
per the spec, at most ``f``), optionally fronts each with an
identity-policy :class:`~repro.net.proxy.FaultProxy` (the handle the
partition nemesis severs), and carries the control-plane verbs the
supervisor relays: kill/heal, corruption waves, retire/respawn with the
PR 8 state-transfer poll (:func:`~repro.net.cluster.poll_state_snapshots`
+ :func:`~repro.core.server.adopt_snapshot`).

Two hostings of the same group:

* :class:`InlineShardHost` — the group lives in the caller's event
  loop. No process isolation, but instant and deterministic to boot;
  the test tier's default.
* :class:`ProcessShardHost` — the group lives in a separate OS process
  (``multiprocessing`` **spawn** — the parent runs an asyncio loop, so
  forking would clone a live loop). The child runs
  :func:`shard_host_main`: an asyncio loop whose only inputs are the
  control pipe and the shard's sockets. Commands travel the pipe as
  plain tuples, replies as ``("ok", payload) | ("error", text)`` with
  payloads restricted to picklable builtins — addresses and counter
  dicts, never protocol objects.

The one thing that does NOT cross the pipe is history: operations are
invoked by client endpoints in the *parent* (or wherever the client
runs), so invocation/response records accrue in the client's history and
the sweep checker judges them there. The shard process hosts servers
only — exactly the split a real deployment has.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Optional

from repro.core.server import adopt_snapshot
from repro.errors import ConfigurationError, ReproError
from repro.fabric.topology import ShardSpec
from repro.net.bridge import LiveClock
from repro.net.cluster import poll_state_snapshots
from repro.net.daemon import ServerDaemon, default_scheme
from repro.net.proxy import FaultPolicy, FaultProxy
from repro.sim.environment import derive_seed
from repro.sim.tracing import MessageStats

__all__ = [
    "InlineShardHost",
    "ProcessShardHost",
    "ShardHostError",
    "ShardServerGroup",
    "shard_host_main",
    "stats_to_dict",
]


class ShardHostError(ReproError):
    """A shard host failed to boot, answer, or shut down."""


def stats_to_dict(stats: MessageStats) -> dict[str, int]:
    """Collapse message accounting to picklable totals (pipe-safe)."""
    return {
        "sent": stats.total_sent,
        "delivered": stats.total_delivered,
        "dropped": stats.dropped,
        "corrupted": stats.corrupted,
    }


class ShardServerGroup:
    """Daemons + optional fault proxies for one shard, one event loop.

    The server-side half of what :class:`~repro.net.cluster.
    LiveRegisterCluster` does, minus clients and history — those live
    with whoever dials in. ``start`` returns the addresses clients
    should dial (proxy fronts when the spec says ``proxied``).
    """

    def __init__(self, spec: ShardSpec, clock: Optional[LiveClock] = None) -> None:
        self.spec = spec
        self.config = spec.config()
        self.scheme = default_scheme(self.config)
        self.clock = clock if clock is not None else LiveClock()
        self.byzantine_ids = {sid for sid, _ in spec.byzantine}
        self._factories = spec.factories()
        self.daemons: dict[str, ServerDaemon] = {}
        self.proxies: dict[str, FaultProxy] = {}
        self.addresses: dict[str, str] = {}  # as dialed by clients
        self.departed: set[str] = set()
        self._generations: dict[str, int] = {}
        self.started = False

    # -- lifecycle -------------------------------------------------------
    def _listen(self, name: str) -> str:
        if self.spec.family == "unix":
            return f"unix:{self.spec.socket_dir}/{self.spec.shard_id}-{name}.sock"
        return "tcp:127.0.0.1:0"

    async def _boot_daemon(self, sid: str, seed_tag: str) -> ServerDaemon:
        daemon = ServerDaemon(
            sid,
            self.config,
            address=self._listen(seed_tag),
            factory=self._factories.get(sid),
            scheme=self.scheme,
            seed=derive_seed(self.spec.seed, seed_tag),
            clock=self.clock,
            wire=self.spec.wire,
            flush_watermark=self.spec.flush_watermark,
        )
        await daemon.start()
        return daemon

    async def _boot_proxy(self, sid: str, upstream: str, tag: str) -> FaultProxy:
        proxy = FaultProxy(
            upstream=upstream,
            listen=self._listen(tag),
            policy=FaultPolicy(),  # identity: a severable handle, no faults
            seed=derive_seed(self.spec.seed, tag),
        )
        await proxy.start()
        return proxy

    async def start(self) -> dict[str, str]:
        """Boot every daemon (and proxy front); returns dial addresses."""
        for sid in self.config.server_ids:
            daemon = await self._boot_daemon(sid, seed_tag=sid)
            self.daemons[sid] = daemon
            self.addresses[sid] = daemon.address
        if self.spec.proxied:
            for sid in self.config.server_ids:
                proxy = await self._boot_proxy(
                    sid, self.addresses[sid], tag=f"proxy-{sid}"
                )
                self.proxies[sid] = proxy
                self.addresses[sid] = proxy.address
        self.clock.start()
        self.started = True
        return dict(self.addresses)

    async def stop(self) -> None:
        # Take ownership before the first await: a concurrent command
        # arriving mid-teardown must see empty maps, not half-closed hosts.
        proxies, self.proxies = dict(self.proxies), {}
        daemons, self.daemons = dict(self.daemons), {}
        self.started = False
        for proxy in proxies.values():
            await proxy.stop()
        for daemon in daemons.values():
            await daemon.stop()

    # -- control-plane verbs ---------------------------------------------
    def _proxy(self, sid: str) -> FaultProxy:
        proxy = self.proxies.get(sid)
        if proxy is None:
            raise ConfigurationError(
                f"{self.spec.shard_id}/{sid}: kill/heal need proxied=True "
                f"(no fault proxy fronts this server)"
            )
        return proxy

    async def kill(self, sid: str) -> None:
        """Sever + refuse at the proxy; the daemon itself keeps running."""
        await self._proxy(sid).kill()

    def heal(self, sid: str) -> None:
        self._proxy(sid).heal()

    async def kill_all(self) -> None:
        """Partition the whole shard off (every proxy severed)."""
        for sid in sorted(self.proxies):
            await self.proxies[sid].kill()

    def heal_all(self) -> None:
        for sid in sorted(self.proxies):
            self.proxies[sid].heal()

    def corrupt(self, wave_seed: int) -> list[str]:
        """Scramble every correct, live server's hosted process state.

        The live-tier analogue of :func:`~repro.sim.faults.
        scramble_processes`: each hosted process's own ``corrupt_state``
        runs against a stream derived from ``wave_seed``. Byzantine
        servers are skipped — their behaviour is already arbitrary.
        Returns the server ids touched.
        """
        rng = random.Random(
            derive_seed(wave_seed, f"corrupt:{self.spec.shard_id}")
        )
        touched = []
        for sid, daemon in sorted(self.daemons.items()):
            if sid in self.byzantine_ids or sid in self.departed:
                continue
            daemon.process.corrupt_state(rng)
            touched.append(sid)
        return touched

    async def retire(self, sid: str) -> None:
        """Stop one server for real (socket closed, process gone)."""
        if sid not in self.daemons:
            raise ConfigurationError(f"unknown server id: {sid!r}")
        if sid in self.departed:
            raise ConfigurationError(f"server {sid!r} is already retired")
        self.departed.add(sid)
        proxy = self.proxies.pop(sid, None)
        if proxy is not None:
            await proxy.stop()
        await self.daemons[sid].stop()

    async def respawn(self, sid: str, transfer: bool = True) -> str:
        """Fresh daemon in the retired slot; PR 8 state transfer applies.

        The replacement polls each live peer over the wire with a
        one-shot StateRequest and adopts the ``(value, ts)`` snapshot
        ``f+1`` of them vouch for — the same machinery
        :meth:`LiveRegisterCluster.respawn_server` uses. Returns the new
        dial address (callers must redial their endpoints).
        """
        if sid not in self.departed:
            raise ConfigurationError(f"server {sid!r} is not retired")
        gen = self._generations.get(sid, 0) + 1
        self._generations[sid] = gen
        daemon = await self._boot_daemon(sid, seed_tag=f"respawn:{sid}:{gen}")
        self.daemons[sid] = daemon
        address = daemon.address
        if transfer and sid not in self.byzantine_ids:
            peers = {
                peer: peer_daemon.address
                for peer, peer_daemon in self.daemons.items()
                if peer != sid and peer not in self.departed
            }
            replies = await poll_state_snapshots(
                peers,
                probe=f"join:{self.spec.shard_id}:{sid}:{gen}",
                nonce=gen,
                wire=self.spec.wire,
            )
            winner = adopt_snapshot(replies, self.scheme, self.config.f)
            if winner is not None:
                # Unconditional adoption, as in the cluster respawn: no
                # client learns the new address before this returns, so
                # the fresh boot label is arbitrary, not protected state.
                process = daemon.process
                process.value, process.ts = winner
                process.old_vals = []
        if self.spec.proxied:
            proxy = await self._boot_proxy(
                sid, address, tag=f"proxy-{sid}-g{gen}"
            )
            self.proxies[sid] = proxy
            address = proxy.address
        self.addresses[sid] = address
        self.departed.discard(sid)
        return address

    def stats(self) -> dict[str, int]:
        """Server-side message totals, pipe-safe."""
        merged = MessageStats()
        for daemon in self.daemons.values():
            merged = merged.merged_with(daemon.stats)
        return stats_to_dict(merged)


async def _dispatch(group: ShardServerGroup, op: str, args: tuple) -> Any:
    """Run one control verb against the group; returns a picklable result."""
    if op == "ping":
        return "pong"
    if op == "kill":
        await group.kill(*args)
        return None
    if op == "heal":
        group.heal(*args)
        return None
    if op == "kill_all":
        await group.kill_all()
        return None
    if op == "heal_all":
        group.heal_all()
        return None
    if op == "corrupt":
        return group.corrupt(*args)
    if op == "retire":
        await group.retire(*args)
        return None
    if op == "respawn":
        return await group.respawn(*args)
    if op == "stats":
        return group.stats()
    raise ConfigurationError(f"unknown shard-host op {op!r}")


def shard_host_main(spec_dict: dict, conn: Any) -> None:
    """OS-process entry point (``multiprocessing`` spawn target).

    Boots the group, reports ``("ready", addresses)`` on the pipe, then
    serves commands until ``("stop",)`` or pipe EOF. Runs in a child
    process: ``spec_dict`` (not a ShardSpec) keeps the pickled surface
    to builtins.
    """
    spec = ShardSpec.from_dict(spec_dict)
    try:
        asyncio.run(_shard_host_loop(spec, conn))
    finally:
        conn.close()


async def _shard_host_loop(spec: ShardSpec, conn: Any) -> None:
    group = ShardServerGroup(spec)
    loop = asyncio.get_running_loop()
    inbox: asyncio.Queue = asyncio.Queue()

    def pump() -> None:
        # The pipe is readable: a whole command tuple is available (the
        # parent writes tiny tuples atomically), or the parent is gone.
        try:
            message = conn.recv()
        except (EOFError, OSError):
            loop.remove_reader(conn.fileno())
            message = ("stop",)
        inbox.put_nowait(message)

    def reply(kind: str, payload: Any) -> None:
        try:
            conn.send((kind, payload))
        except (BrokenPipeError, OSError):
            pass  # parent died; the stop path tears us down anyway

    try:
        addresses = await group.start()
    except Exception as exc:
        reply("error", f"{type(exc).__name__}: {exc}")
        return
    loop.add_reader(conn.fileno(), pump)
    reply("ready", addresses)
    try:
        while True:
            message = await inbox.get()
            op, args = message[0], tuple(message[1:])
            if op == "stop":
                reply("ok", None)
                return
            try:
                result = await _dispatch(group, op, args)
            except Exception as exc:
                reply("error", f"{type(exc).__name__}: {exc}")
            else:
                reply("ok", result)
    finally:
        try:
            loop.remove_reader(conn.fileno())
        except (OSError, ValueError):
            pass
        await group.stop()


class InlineShardHost:
    """The group in the caller's own loop (no isolation, fast boots)."""

    mode = "inline"

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.group = ShardServerGroup(spec)

    async def start(self) -> dict[str, str]:
        return await self.group.start()

    async def call(self, op: str, *args: Any) -> Any:
        return await _dispatch(self.group, op, args)

    async def stop(self) -> None:
        await self.group.stop()


class ProcessShardHost:
    """The group in its own OS process, driven over a spawn-context pipe.

    All pipe waits happen in the default executor — ``Connection.recv``
    blocks a thread, never the event loop. One command is in flight at a
    time (a lazily created lock serializes callers), matching the
    child's sequential dispatch loop.
    """

    mode = "process"

    #: Seconds to wait for boot, replies, and the join on shutdown.
    call_timeout = 60.0

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.process: Optional[Any] = None
        self._conn: Optional[Any] = None
        self._lock: Optional[asyncio.Lock] = None  # created in-loop (lazily)

    async def _recv(self) -> tuple[str, Any]:
        conn = self._conn
        if conn is None:
            raise ShardHostError(f"{self.spec.shard_id}: host is not running")
        loop = asyncio.get_running_loop()
        try:
            message = await asyncio.wait_for(
                loop.run_in_executor(None, conn.recv), timeout=self.call_timeout
            )
        except asyncio.TimeoutError:
            raise ShardHostError(
                f"{self.spec.shard_id}: no reply within {self.call_timeout}s"
            ) from None
        except (EOFError, OSError) as exc:
            raise ShardHostError(
                f"{self.spec.shard_id}: shard host process died ({exc!r})"
            ) from exc
        return message

    async def start(self) -> dict[str, str]:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=shard_host_main,
            args=(self.spec.to_dict(), child_conn),
            name=f"repro-shard-{self.spec.shard_id}",
            daemon=True,
        )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, process.start)
        child_conn.close()
        self.process = process
        self._conn = parent_conn
        kind, payload = await self._recv()
        if kind != "ready":
            raise ShardHostError(f"{self.spec.shard_id}: boot failed: {payload}")
        return payload

    async def call(self, op: str, *args: Any) -> Any:
        if self._lock is None:
            self._lock = asyncio.Lock()
        async with self._lock:
            conn = self._conn
            if conn is None:
                raise ShardHostError(
                    f"{self.spec.shard_id}: host is not running"
                )
            conn.send((op, *args))
            kind, payload = await self._recv()
        if kind == "error":
            raise ShardHostError(f"{self.spec.shard_id}: {payload}")
        return payload

    async def stop(self) -> None:
        # Ownership swap before the first await (a late call() must see
        # a stopped host, not a half-torn pipe).
        process, self.process = self.process, None
        conn, self._conn = self._conn, None
        if process is None:
            return
        loop = asyncio.get_running_loop()
        if conn is not None:
            try:
                conn.send(("stop",))
                await asyncio.wait_for(
                    loop.run_in_executor(None, conn.recv), timeout=10.0
                )
            except (asyncio.TimeoutError, EOFError, OSError, ValueError):
                pass  # child already gone (or wedged: terminated below)
        await loop.run_in_executor(None, process.join, 10.0)
        if process.is_alive():  # pragma: no cover - wedged child
            process.terminate()
            await loop.run_in_executor(None, process.join, 5.0)
        if conn is not None:
            conn.close()
