"""The sharded KV fabric: many register groups behind one hash ring.

One paper register group (``n >= 5f + 1`` servers) is a single
serialization domain; the ROADMAP's production north star scales *out*
by running many independent groups — shards — and routing each key to
one of them. This package is that layer:

* :mod:`~repro.fabric.ring` — deterministic consistent-hash placement
  (crc32, never builtin ``hash()``), key -> shard id;
* :mod:`~repro.fabric.topology` — the serializable fabric layout
  (``repro-fabric-topology/1``): shards, ``n/f``, server addresses;
* :mod:`~repro.fabric.host` — one shard's register group
  (:class:`~repro.net.daemon.ServerDaemon` s + optional
  :class:`~repro.net.proxy.FaultProxy` chain) in its own event loop,
  plus the OS-process entry point driven over a ``multiprocessing``
  pipe;
* :mod:`~repro.fabric.supervisor` — lifecycle owner: spawns one host
  per shard (separate OS processes by default), relays control-plane
  commands (kill/heal/corrupt/retire/respawn), tears down;
* :mod:`~repro.fabric.client` — multiplexes
  :class:`~repro.net.daemon.ClientEndpoint` s across shards; per-shard
  histories judged by the same sweep
  :class:`~repro.spec.regularity.RegularityChecker` as everything else;
* :mod:`~repro.fabric.kv` — the sync adapter that plugs the fabric into
  :class:`~repro.kvstore.store.StabilizingKVStore` via its
  ``shard_factory`` seam, so ``put``/``get``/``audit`` work unchanged;
* :mod:`~repro.fabric.loadgen` — open/closed-loop fabric load with
  keyspace skew (uniform/zipf) and the ``repro-bench-fabric/1``
  artifact;
* :mod:`~repro.fabric.chaos` — a nemesis targeted at one shard while
  the others serve, with a blast-radius verdict.

See ``docs/FABRIC.md`` for the topology format, the placement rule and
the blast-radius contract.
"""

from repro.fabric.chaos import ShardNemesis, run_targeted_chaos
from repro.fabric.client import FabricClient
from repro.fabric.host import InlineShardHost, ProcessShardHost, ShardServerGroup
from repro.fabric.kv import FabricKV
from repro.fabric.loadgen import (
    FABRIC_BENCH_FORMAT,
    FabricLoadResult,
    KeyPicker,
    fabric_benchmark,
    fabric_scaleout,
    run_fabric_load,
)
from repro.fabric.ring import DEFAULT_VNODES, HashRing, ring_hash
from repro.fabric.supervisor import FabricSupervisor
from repro.fabric.topology import TOPOLOGY_FORMAT, FabricTopology, ShardSpec

__all__ = [
    "DEFAULT_VNODES",
    "FABRIC_BENCH_FORMAT",
    "FabricClient",
    "FabricKV",
    "FabricLoadResult",
    "FabricSupervisor",
    "FabricTopology",
    "HashRing",
    "InlineShardHost",
    "KeyPicker",
    "ProcessShardHost",
    "ShardNemesis",
    "ShardServerGroup",
    "ShardSpec",
    "TOPOLOGY_FORMAT",
    "fabric_benchmark",
    "fabric_scaleout",
    "ring_hash",
    "run_fabric_load",
    "run_targeted_chaos",
]
