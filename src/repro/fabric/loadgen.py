"""Fabric load: skewed keyspaces, per-shard attribution, scale-out runs.

The open-loop generator extends PR 6's Poisson arrivals to many shards:
one seeded global arrival process draws (time, key, op-kind) triples,
the ring routes each arrival to its shard, and the arrival is assigned
round-robin to one of that shard's worker endpoints. The whole schedule
is precomputed before the run — fully deterministic given the seed —
and each worker then serves *its own* arrivals in order. Workers never
cross shards, so a stalled shard (partition nemesis) delays only its
own arrivals; healthy shards' queues are untouched. Latency is measured
from the scheduled arrival, queueing included, exactly as in
:func:`repro.net.loadgen.run_open_load`.

Keyspace skew is the knob that makes placement interesting: ``uniform``
spreads arrivals evenly, ``zipf`` (probability ∝ 1/rank^s) concentrates
them on a head of hot keys — and therefore on whichever shards the ring
happens to own those keys.

The closed-loop mode keeps every worker back-to-back busy on its own
shard (keys drawn from the shard's slice of the keyspace), which
measures per-shard saturation capacity without rate tuning.

:func:`fabric_scaleout` boots a fresh fabric per shard count and emits
the ``repro-bench-fabric/1`` artifact: per-shard + aggregate throughput
and latency, each shard's sweep-checker verdict, and the host CPU count
in ``meta`` — on a 1-CPU container the curve documents the
multi-process overhead floor, not scale-up (PR 6 reporting precedent).
"""

from __future__ import annotations

import asyncio
import bisect
import os
import platform
import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.client import ABORT
from repro.errors import ConfigurationError
from repro.fabric.client import FabricClient
from repro.fabric.host import stats_to_dict
from repro.fabric.supervisor import FabricSupervisor
from repro.net.daemon import TIMED_OUT
from repro.net.loadgen import LoadResult, measurement_harness
from repro.net.wire import get_codec
from repro.sim.environment import derive_seed

__all__ = [
    "FABRIC_BENCH_FORMAT",
    "FabricLoadResult",
    "KeyPicker",
    "fabric_benchmark",
    "fabric_scaleout",
    "run_fabric_load",
]

FABRIC_BENCH_FORMAT = "repro-bench-fabric/1"


class KeyPicker:
    """Deterministic key sampling over ``k00000 .. k{keys-1:05d}``.

    ``uniform`` draws every key equally; ``zipf`` draws key rank ``r``
    (1-based, in id order) with probability proportional to
    ``1 / r**zipf_s`` via one precomputed CDF and a bisect — no numpy,
    no unseeded randomness, identical draws for a given rng stream.
    """

    def __init__(
        self, keys: int = 256, skew: str = "uniform", zipf_s: float = 1.1
    ) -> None:
        if keys < 1:
            raise ConfigurationError(f"need at least one key: {keys}")
        if skew not in ("uniform", "zipf"):
            raise ConfigurationError(f"unknown skew {skew!r}")
        if skew == "zipf" and zipf_s <= 0:
            raise ConfigurationError(f"zipf_s must be positive: {zipf_s}")
        self.keys = keys
        self.skew = skew
        self.zipf_s = zipf_s
        self._cdf: Optional[list[float]] = None
        if skew == "zipf":
            weights = [1.0 / (rank**zipf_s) for rank in range(1, keys + 1)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cdf[-1] = 1.0  # float drift guard: the last bucket closes the CDF
            self._cdf = cdf

    @staticmethod
    def key_name(index: int) -> str:
        return f"k{index:05d}"

    def all_keys(self) -> list[str]:
        return [self.key_name(i) for i in range(self.keys)]

    def pick(self, rng: random.Random) -> str:
        if self._cdf is None:
            return self.key_name(rng.randrange(self.keys))
        idx = bisect.bisect_left(self._cdf, rng.random())
        return self.key_name(min(idx, self.keys - 1))


@dataclass
class FabricLoadResult:
    """Per-shard :class:`LoadResult` s plus the merged aggregate."""

    duration: float
    mode: str = "open"
    offered_rate: Optional[float] = None
    keys: int = 0
    skew: str = "uniform"
    shards: dict[str, LoadResult] = field(default_factory=dict)

    @property
    def aggregate(self) -> LoadResult:
        merged = LoadResult(
            duration=self.duration, mode=self.mode, offered_rate=self.offered_rate
        )
        for result in self.shards.values():
            merged.reads += result.reads
            merged.writes += result.writes
            merged.aborts += result.aborts
            merged.timeouts += result.timeouts
            merged.read_latency.merge(result.read_latency)
            merged.write_latency.merge(result.write_latency)
        return merged

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "keys": self.keys,
            "skew": self.skew,
            "shards": {
                shard_id: result.to_dict()
                for shard_id, result in sorted(self.shards.items())
            },
            "aggregate": self.aggregate.to_dict(),
        }


def _record(
    result: LoadResult, is_read: bool, value: Any, elapsed: float
) -> None:
    if value is TIMED_OUT:
        result.timeouts += 1
    elif is_read and value is ABORT:
        result.aborts += 1
    elif is_read:
        result.reads += 1
        result.read_latency.add(elapsed)
    else:
        result.writes += 1
        result.write_latency.add(elapsed)


async def run_fabric_load(
    client: FabricClient,
    mode: str = "open",
    rate: Optional[float] = None,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    keys: int = 256,
    skew: str = "uniform",
    zipf_s: float = 1.1,
    seed: int = 0,
) -> FabricLoadResult:
    """Drive the whole fabric; returns per-shard attributed results.

    Open mode: ``rate`` is the *aggregate* offered ops/s; the seeded
    arrival schedule (time, key, kind, worker) is precomputed up front
    and served per (shard, worker) — see module docstring for why that
    shape bounds the blast radius. Closed mode ignores ``rate`` and
    keeps every worker busy on its own shard's keys.
    """
    picker = KeyPicker(keys=keys, skew=skew, zipf_s=zipf_s)
    clock = client.clock
    start = clock.now()
    warm_until = start + warmup
    deadline = warm_until + duration
    results = {
        shard_id: LoadResult(
            duration=duration,
            mode=mode,
            offered_rate=rate if mode == "open" else None,
        )
        for shard_id in client.topology.shard_ids
    }
    workers = []

    if mode == "open":
        if rate is None or rate <= 0:
            raise ConfigurationError(f"open-loop rate must be positive: {rate}")
        rng = random.Random(derive_seed(seed, "fabric:openloop"))
        plans: dict[tuple[str, int], list[tuple[float, str, bool]]] = {}
        next_worker = {shard_id: 0 for shard_id in client.topology.shard_ids}
        when = start
        while True:
            when += rng.expovariate(rate)
            if when >= deadline:
                break
            key = picker.pick(rng)
            shard_id = client.place(key)
            is_read = rng.random() < read_fraction
            worker = next_worker[shard_id]
            next_worker[shard_id] = (worker + 1) % client.clients_per_shard
            plans.setdefault((shard_id, worker), []).append(
                (when, key, is_read)
            )

        async def serve_open(
            shard_id: str, worker: int, items: list[tuple[float, str, bool]]
        ) -> None:
            endpoint = client.endpoint(shard_id, worker)
            sequence = 0
            for scheduled, key, is_read in items:
                now = clock.now()
                if scheduled > now:
                    await asyncio.sleep(scheduled - now)
                if is_read:
                    value = await endpoint.read()
                else:
                    sequence += 1
                    value = await endpoint.write(
                        f"{key}={shard_id}.c{worker}#{sequence}"
                    )
                elapsed = clock.now() - scheduled  # queueing included
                if scheduled < warm_until:
                    continue
                _record(results[shard_id], is_read, value, elapsed)

        workers = [
            serve_open(shard_id, worker, items)
            for (shard_id, worker), items in sorted(plans.items())
        ]
    elif mode == "closed":
        keys_by_shard: dict[str, list[str]] = {
            shard_id: [] for shard_id in client.topology.shard_ids
        }
        for key in picker.all_keys():
            keys_by_shard[client.place(key)].append(key)

        async def serve_closed(shard_id: str, worker: int) -> None:
            owned = keys_by_shard[shard_id]
            if not owned:
                return  # the ring gave this shard no keys at this keyspace
            endpoint = client.endpoint(shard_id, worker)
            rng_w = random.Random(
                derive_seed(seed, f"fabric:closed:{shard_id}.c{worker}")
            )
            sequence = 0
            while clock.now() < deadline:
                key = owned[rng_w.randrange(len(owned))]
                is_read = rng_w.random() < read_fraction
                begin = clock.now()
                if is_read:
                    value = await endpoint.read()
                else:
                    sequence += 1
                    value = await endpoint.write(
                        f"{key}={shard_id}.c{worker}#{sequence}"
                    )
                elapsed = clock.now() - begin
                if begin < warm_until:
                    continue
                _record(results[shard_id], is_read, value, elapsed)

        workers = [
            serve_closed(shard_id, worker)
            for shard_id in client.topology.shard_ids
            for worker in range(client.clients_per_shard)
        ]
    else:
        raise ConfigurationError(f"unknown load mode {mode!r}")

    with measurement_harness():
        await asyncio.gather(*workers)
    measured = max(clock.now() - warm_until, duration)
    for result in results.values():
        result.duration = measured  # drain honesty, as in net.loadgen
    return FabricLoadResult(
        duration=measured,
        mode=mode,
        offered_rate=rate if mode == "open" else None,
        keys=keys,
        skew=skew,
        shards=results,
    )


async def fabric_benchmark(
    supervisor: FabricSupervisor,
    client: FabricClient,
    mode: str = "open",
    rate: Optional[float] = None,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    keys: int = 256,
    skew: str = "uniform",
    zipf_s: float = 1.1,
    seed: int = 0,
) -> dict[str, Any]:
    """One started fabric -> one scale-out *point* (see the artifact).

    The fabric must already be started and the client connected; the
    caller tears both down. Every shard's history is judged by the
    sweep checker; ``all_clean`` ands the verdicts.
    """
    load = await run_fabric_load(
        client,
        mode=mode,
        rate=rate,
        duration=duration,
        warmup=warmup,
        read_fraction=read_fraction,
        keys=keys,
        skew=skew,
        zipf_s=zipf_s,
        seed=seed,
    )
    server_stats = await supervisor.stats()
    per_shard: dict[str, Any] = {}
    all_clean = True
    for shard_id in client.topology.shard_ids:
        verdict = client.check_shard(shard_id, algorithm="sweep")
        all_clean = all_clean and bool(verdict.ok)
        entry = load.shards[shard_id].to_dict()
        entry["verdict"] = {
            "clean": bool(verdict.ok),
            "violations": len(verdict.violations),
            "checked_reads": verdict.checked_reads,
            "aborted_reads": verdict.aborted_reads,
        }
        entry["history_ops"] = len(list(client.histories[shard_id]))
        entry["messages"] = server_stats.get(shard_id, {})
        entry["client_timeouts"] = client.shard_timeouts(shard_id)
        per_shard[shard_id] = entry
    return {
        "shards": len(client.topology.shard_ids),
        "mode": mode,
        "offered_ops_per_s": rate if mode == "open" else None,
        "aggregate": load.aggregate.to_dict(),
        "per_shard": per_shard,
        "all_clean": all_clean,
        "client_messages": stats_to_dict(client.stats()),
        "client_timeouts": client.timeouts,
        "topology": client.topology.to_dict(),
    }


async def fabric_scaleout(
    shard_counts: Sequence[int],
    n: int = 6,
    f: int = 1,
    seed: int = 0,
    byzantine: Optional[str] = None,
    proxied: bool = False,
    wire: int = 2,
    mode: str = "process",
    clients_per_shard: int = 2,
    op_timeout: float = 30.0,
    load_mode: str = "open",
    rate_per_shard: float = 150.0,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    keys: int = 256,
    skew: str = "uniform",
    zipf_s: float = 1.1,
) -> dict[str, Any]:
    """Fresh fabric per shard count -> the ``repro-bench-fabric/1`` dict.

    Open-loop points offer ``rate_per_shard * k`` aggregate so the
    per-shard offered load is constant along the curve; closed-loop
    points measure capacity directly. Measured numbers are reported
    as-is, with the container CPU count in ``meta``.
    """
    points = []
    for count in shard_counts:
        supervisor = FabricSupervisor(
            shards=count,
            n=n,
            f=f,
            seed=seed,
            byzantine=byzantine,
            proxied=proxied,
            wire=wire,
            mode=mode,
        )
        async with supervisor as booted:
            client = FabricClient(
                booted.topology,
                clients_per_shard=clients_per_shard,
                seed=seed,
                op_timeout=op_timeout,
            )
            async with client:
                point = await fabric_benchmark(
                    supervisor,
                    client,
                    mode=load_mode,
                    rate=rate_per_shard * count if load_mode == "open" else None,
                    duration=duration,
                    warmup=warmup,
                    read_fraction=read_fraction,
                    keys=keys,
                    skew=skew,
                    zipf_s=zipf_s,
                    seed=seed,
                )
        points.append(point)
    return {
        "format": FABRIC_BENCH_FORMAT,
        "meta": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "mode": mode,
            "wire": get_codec(wire).format,
        },
        "config": {
            "n": n,
            "f": f,
            "seed": seed,
            "byzantine": byzantine,
            "proxied": proxied,
            "clients_per_shard": clients_per_shard,
            "load_mode": load_mode,
            "rate_per_shard": rate_per_shard if load_mode == "open" else None,
            "duration_s": duration,
            "warmup_s": warmup,
            "read_fraction": read_fraction,
            "keys": keys,
            "skew": skew,
            "zipf_s": zipf_s,
        },
        "points": points,
    }
