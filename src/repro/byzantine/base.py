"""Base class for Byzantine server strategies.

A Byzantine server inherits the full correct automaton
(:class:`~repro.core.server.RegisterServer`) so strategies can deviate
*selectively* — the most dangerous adversaries follow the protocol almost
everywhere. Subclasses override individual handlers.

The base also provides the ``factory()`` hook
:class:`~repro.core.register.RegisterSystem` consumes, with keyword
arguments captured per strategy::

    RegisterSystem(config, byzantine={"s5": StaleReplayByzantine.factory()})
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.config import SystemConfig
from repro.core.server import RegisterServer
from repro.labels.base import LabelingScheme

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import SimEnvironment


class ByzantineServer(RegisterServer):
    """A server that may deviate arbitrarily (base: behaves correctly).

    Behaving correctly is itself a valid Byzantine strategy — and a useful
    control in experiments: every claim must hold whether the f "Byzantine"
    servers misbehave or not.
    """

    #: Human-readable strategy name for experiment tables.
    strategy_name = "correct-acting"

    @classmethod
    def factory(cls, **kwargs: Any) -> Callable[..., "ByzantineServer"]:
        """A ``ServerFactory`` building this strategy with ``kwargs``."""

        def build(
            pid: str,
            env: "SimEnvironment",
            config: SystemConfig,
            scheme: LabelingScheme,
        ) -> "ByzantineServer":
            return cls(pid, env, config, scheme, **kwargs)

        return build
