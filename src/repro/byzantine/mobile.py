"""The mobile-Byzantine carrier: the fault that travels.

The mobile-Byzantine model (arXiv:1609.02694, by the source paper's
authors) changes exactly one assumption: the ``f`` Byzantine identities
are not pinned. An adversarial *agent* moves between servers on a round
schedule — at every instant at most ``f`` servers are faulty, but the
cumulative set of servers whose state the agent has touched grows with
every move, a strictly harder regime than the static model the IPPS-2015
proofs assume.

:class:`MobileByzantineCarrier` realizes the agent on a built
:class:`~repro.core.register.RegisterSystem`:

* :meth:`possess` swaps the resident correct server out of the network
  registry and swaps a fresh :data:`~repro.byzantine.strategies.STRATEGY_ZOO`
  instance in under the same pid (:meth:`~repro.sim.network.Network.swap`
  keeps registry order and channel identity). Same pid means the same
  derived RNG stream, so a possession performed at deployment time is
  *bit-identical* to configuring the strategy statically — the
  mobility-rate-0 differential the E15 map anchors on.
* :meth:`depart` restores the stashed correct server and scrambles its
  state through the ordinary ``corrupt_state`` machinery: what the agent
  leaves behind is a transiently corrupted correct server, so every
  departure is a fault instant for the stabilization judge.
* :meth:`relocate` is one round of the mobile model: depart, then
  possess the next itinerary stop.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.errors import SimulationError
from repro.sim.process import Process

__all__ = ["MobileByzantineCarrier"]


class MobileByzantineCarrier:
    """At most one Byzantine *role*, relocatable between servers."""

    def __init__(self, system: Any, strategy: str) -> None:
        if strategy not in STRATEGY_ZOO:
            raise SimulationError(f"unknown strategy: {strategy!r}")
        self.system = system
        self.strategy = strategy
        #: pid currently possessed, or None while the agent is between hosts.
        self.host: Optional[str] = None
        #: every pid the agent has possessed, in first-possession order.
        self.visited: tuple[str, ...] = ()
        #: completed relocations.
        self.moves = 0
        self._original: Optional[Process] = None

    def possess(self, pid: str) -> None:
        """Take over ``pid``: its correct server is stashed, a fresh
        strategy instance answers under its identity."""
        if self.host is not None:
            raise SimulationError(
                f"carrier already possesses {self.host!r}; depart first"
            )
        system = self.system
        original = system.servers[pid]
        if original.crashed:
            raise SimulationError(f"cannot possess departed server {pid!r}")
        if pid not in system.byzantine_ids and (
            len(system.byzantine_ids) >= system.config.f
        ):
            raise SimulationError(
                f"possessing {pid!r} would exceed the f={system.config.f} "
                "bound (static Byzantine servers already present)"
            )
        cls = STRATEGY_ZOO[self.strategy]
        net = system.env.network
        net.swap(
            pid, lambda: cls(pid, system.env, system.config, system.scheme)
        )
        self._original = original
        system.servers[pid] = net.processes[pid]
        system.byzantine_ids.add(pid)
        self.host = pid
        if pid not in self.visited:
            self.visited = self.visited + (pid,)

    def depart(self, rng: random.Random) -> None:
        """Leave the current host: the stashed correct server returns,
        with its state scrambled — the agent's parting gift and the
        model's per-relocation transient fault."""
        if self.host is None:
            raise SimulationError("carrier possesses no server")
        system = self.system
        pid, self.host = self.host, None
        original, self._original = self._original, None
        system.env.network.swap(pid, original)
        system.servers[pid] = original
        system.byzantine_ids.discard(pid)
        original.corrupt_state(rng)

    def relocate(self, pid: str, rng: random.Random) -> None:
        """One round of the mobile model: depart, possess ``pid``."""
        self.depart(rng)
        self.possess(pid)
        self.moves += 1
