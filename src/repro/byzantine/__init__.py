"""Byzantine server strategies.

The correctness proofs (Lemmas 1-2 in particular) enumerate Byzantine
behaviours phase by phase: answer both phases, answer only one, simulate a
crash, vote NACK while adopting nothing, forge values or timestamps,
equivocate between clients. Each enumerated behaviour — plus randomized
arbitrary deviation — exists here as a pluggable server replacement, so
experiments sweep the whole zoo against every claim.

All strategies expose a ``factory()`` classmethod matching the
``ServerFactory`` signature expected by
:class:`~repro.core.register.RegisterSystem`.
"""

from repro.byzantine.base import ByzantineServer
from repro.byzantine.mobile import MobileByzantineCarrier
from repro.byzantine.strategies import (
    SilentByzantine,
    PhaseSilentByzantine,
    StaleReplayByzantine,
    ForgingByzantine,
    InflatingByzantine,
    EquivocatingByzantine,
    NackSpammerByzantine,
    AckWithoutStoringByzantine,
    RandomNoiseByzantine,
    RESPONSIVE_STRATEGIES,
    STRATEGY_ZOO,
)

__all__ = [
    "ByzantineServer",
    "MobileByzantineCarrier",
    "SilentByzantine",
    "PhaseSilentByzantine",
    "StaleReplayByzantine",
    "ForgingByzantine",
    "InflatingByzantine",
    "EquivocatingByzantine",
    "NackSpammerByzantine",
    "AckWithoutStoringByzantine",
    "RandomNoiseByzantine",
    "RESPONSIVE_STRATEGIES",
    "STRATEGY_ZOO",
]
