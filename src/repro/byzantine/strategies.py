"""The Byzantine strategy zoo.

Each class realizes one adversarial behaviour the proofs reason about.
``STRATEGY_ZOO`` maps strategy names to classes for sweep experiments.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any

from repro.byzantine.base import ByzantineServer
from repro.core.config import SystemConfig
from repro.core.messages import (
    Flush,
    FlushAck,
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteNack,
    WriteRequest,
)
from repro.labels.base import LabelingScheme

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import SimEnvironment


def stable_parity(pid: str) -> int:
    """Run-independent parity of a pid string.

    Builtin ``hash()`` on str is salted per interpreter launch (lint rule
    DET004), so an equivocator splitting clients by ``hash(pid) & 1``
    would lie to *different* clients on every run of the same recipe.
    CRC32 is stable across runs, platforms and Python versions.
    """
    return zlib.crc32(pid.encode("utf-8")) & 1


class SilentByzantine(ByzantineServer):
    """Simulates a full crash: never answers anything.

    Proof case 4 of Lemma 2 ("Byzantine nodes simulate crash in both
    phases") and the canonical liveness adversary: quorums of ``n - f``
    must suffice without it.
    """

    strategy_name = "silent"

    def on_message(self, src: str, payload: Any) -> None:
        return


class PhaseSilentByzantine(ByzantineServer):
    """Answers only selected message kinds (Lemma 2's phase cases 2-3).

    Args:
        silent_on: message-type names ignored, e.g. ``{"GetTs"}`` for a
            server silent in the write's first phase only.
    """

    strategy_name = "phase-silent"

    def __init__(
        self,
        pid: str,
        env: "SimEnvironment",
        config: SystemConfig,
        scheme: LabelingScheme,
        silent_on: frozenset[str] = frozenset({"GetTs"}),
    ) -> None:
        super().__init__(pid, env, config, scheme)
        self.silent_on = frozenset(silent_on)

    def on_message(self, src: str, payload: Any) -> None:
        if type(payload).__name__ in self.silent_on:
            return
        super().on_message(src, payload)


class StaleReplayByzantine(ByzantineServer):
    """Processes writes internally but always *reports* a frozen stale pair.

    This is the adversary of the Theorem 1 construction: it keeps
    presenting an old timestamp as current, trying to drag reads back in
    time. The stale pair defaults to a corrupted label from the server's
    own RNG; experiments can pin it.
    """

    strategy_name = "stale-replay"

    def __init__(
        self,
        pid: str,
        env: "SimEnvironment",
        config: SystemConfig,
        scheme: LabelingScheme,
        stale_value: Any = "stale",
        stale_ts: Any = None,
    ) -> None:
        super().__init__(pid, env, config, scheme)
        self.stale_value = stale_value
        self.stale_ts = (
            stale_ts if stale_ts is not None else scheme.random_label(self.rng)
        )

    def on_get_ts(self, src: str) -> None:
        self.send(src, TsReply(ts=self.stale_ts))

    def _reply(self, label: int) -> ReadReply:
        return ReadReply(
            server=self.pid,
            value=self.stale_value,
            ts=self.stale_ts,
            old_vals=((self.stale_value, self.stale_ts),) * 2,
            label=label,
        )


class ForgingByzantine(ByzantineServer):
    """Invents a fresh random value and timestamp for every reply.

    Random forgeries test that ``2f + 1`` witnessing defeats fabrication:
    a forged pair can gather at most ``f`` witnesses.
    """

    strategy_name = "forging"

    def _forged(self) -> tuple[Any, Any]:
        return (
            f"forged-{self.rng.getrandbits(24):06x}",
            self.scheme.random_label(self.rng),
        )

    def on_get_ts(self, src: str) -> None:
        _, ts = self._forged()
        self.send(src, TsReply(ts=ts))

    def _reply(self, label: int) -> ReadReply:
        value, ts = self._forged()
        return ReadReply(
            server=self.pid,
            value=value,
            ts=ts,
            old_vals=tuple(self._forged() for _ in range(2)),
            label=label,
        )


class InflatingByzantine(ByzantineServer):
    """Reports timestamps engineered to dominate everything it has seen.

    It feeds writers artificially "high" labels in phase 1 hoping to steer
    or exhaust the bounded label space, and presents the same inflated
    label as current to readers. The k-SBLS ``next`` must keep dominating
    regardless (Definition 2 holds for arbitrary input sets of size
    <= k).
    """

    strategy_name = "inflating"

    def __init__(
        self,
        pid: str,
        env: "SimEnvironment",
        config: SystemConfig,
        scheme: LabelingScheme,
    ) -> None:
        super().__init__(pid, env, config, scheme)
        self._seen: list[Any] = []

    def _inflated(self) -> Any:
        recent = self._seen[-8:]
        return self.scheme.next_label(recent + [self.ts])

    def on_get_ts(self, src: str) -> None:
        self.send(src, TsReply(ts=self._inflated()))

    def on_write(self, src: str, msg: WriteRequest) -> None:
        if self.scheme.is_label(msg.ts):
            self._seen.append(msg.ts)
            del self._seen[:-32]
        super().on_write(src, msg)

    def _reply(self, label: int) -> ReadReply:
        return ReadReply(
            server=self.pid,
            value="inflated",
            ts=self._inflated(),
            old_vals=tuple(self.old_vals),
            label=label,
        )


class EquivocatingByzantine(ByzantineServer):
    """Tells different clients different stories.

    Clients whose pid hashes even get the true state; the others get a
    frozen stale pair. Split-brain attempts must be defeated by quorum
    intersection, not by any assumption of consistent lying.
    """

    strategy_name = "equivocating"

    def __init__(
        self,
        pid: str,
        env: "SimEnvironment",
        config: SystemConfig,
        scheme: LabelingScheme,
    ) -> None:
        super().__init__(pid, env, config, scheme)
        self.stale_ts = scheme.random_label(self.rng)

    def _lies_to(self, client: str) -> bool:
        return stable_parity(client) == 1

    def on_get_ts(self, src: str) -> None:
        if self._lies_to(src):
            self.send(src, TsReply(ts=self.stale_ts))
        else:
            super().on_get_ts(src)

    def on_read(self, src: str, msg: ReadRequest) -> None:
        if not isinstance(msg.label, int):
            return
        self.running_read[src] = msg.label
        if self._lies_to(src):
            self.send(
                src,
                ReadReply(
                    server=self.pid,
                    value="equivocation",
                    ts=self.stale_ts,
                    old_vals=(),
                    label=msg.label,
                ),
            )
        else:
            self.send(src, self._reply(msg.label))


class NackSpammerByzantine(ByzantineServer):
    """NACKs every write and refuses to adopt anything.

    Attacks write liveness: Lemma 1's counting must still find ``2f + 1``
    ACKs among the correct servers.
    """

    strategy_name = "nack-spammer"

    def on_write(self, src: str, msg: WriteRequest) -> None:
        self.send(src, WriteNack(ts=msg.ts))


class AckWithoutStoringByzantine(ByzantineServer):
    """ACKs every write but never stores anything (replies stay stale).

    Attacks the write-propagation count (Lemma 2): the writer's ACK quorum
    may contain up to ``f`` of these, so ``2f + 1`` ACKs still leave
    ``f + 1`` correct adopters... the lemma's full argument needs
    ``3f + 1`` correct adopters, obtained from unconditional adoption.
    """

    strategy_name = "ack-no-store"

    def on_write(self, src: str, msg: WriteRequest) -> None:
        self.send(src, WriteAck(ts=msg.ts))


class RandomNoiseByzantine(ByzantineServer):
    """Replies to everything with uniformly random protocol messages.

    The fuzzing adversary: correct processes must parse-or-drop anything.
    """

    strategy_name = "random-noise"

    def on_message(self, src: str, payload: Any) -> None:
        roll = self.rng.randrange(8)
        label = self.rng.randrange(self.config.read_label_count)
        ts = self.scheme.random_label(self.rng)
        value = f"noise-{self.rng.getrandbits(16):04x}"
        if roll == 0:
            self.send(src, TsReply(ts=ts))
        elif roll == 1:
            self.send(src, WriteAck(ts=ts))
        elif roll == 2:
            self.send(src, WriteNack(ts=ts))
        elif roll == 3:
            self.send(
                src,
                ReadReply(
                    server=self.pid,
                    value=value,
                    ts=ts,
                    old_vals=((value, ts),),
                    label=label,
                ),
            )
        elif roll == 4:
            self.send(src, FlushAck(label=label, server=self.pid))
        elif roll == 5:
            # Reflect garbage of the same kind it received, twice.
            self.send(src, TsReply(ts=self.rng.getrandbits(32)))
            self.send(src, FlushAck(label=self.rng.getrandbits(8), server=self.pid))
        # rolls 6-7: stay silent this time


#: name -> class, for sweep experiments (E2/E4/E8).
STRATEGY_ZOO: dict[str, type[ByzantineServer]] = {
    cls.strategy_name: cls
    for cls in (
        ByzantineServer,
        SilentByzantine,
        PhaseSilentByzantine,
        StaleReplayByzantine,
        ForgingByzantine,
        InflatingByzantine,
        EquivocatingByzantine,
        NackSpammerByzantine,
        AckWithoutStoringByzantine,
        RandomNoiseByzantine,
    )
}

#: Strategies that answer every protocol phase (possibly with lies).
#: Liveness-sensitive campaigns draw from this subset: under churn a
#: departed server's replies are really gone, so pairing the absence with
#: a *non-responsive* Byzantine server starves the ``n - f`` reply quorum
#: by arithmetic, not by protocol failure. (``random-noise`` is excluded
#: because it goes silent on some rolls.) E15 maps that starvation cliff
#: deliberately; routine churn campaigns should not drown in it.
RESPONSIVE_STRATEGIES: tuple[str, ...] = tuple(
    sorted(set(STRATEGY_ZOO) - {"silent", "phase-silent", "random-noise"})
)
