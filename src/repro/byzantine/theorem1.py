"""The scripted adversary of the Theorem 1 lower-bound construction.

The proof of Theorem 1 builds one specific execution against any protocol
of class ``TM_1R`` on ``n = 5f`` servers. The Byzantine server in that
execution follows a fixed script:

* it answers the writer's timestamp queries with values chosen to steer
  each ``next()`` computation (low stale labels for w0/w1, then exactly
  the value that makes w2 regenerate the corrupted label ``ts2``);
* it acknowledges every write without storing anything;
* it answers the two reads with *opposite* lies — presenting the
  corrupted pair ``(v2, ts2)`` as current to the first read and the stale
  pair ``(v1, ts1)`` to the second — handing both reads the *same
  multiset* of (value, timestamp) pairs while regularity demands
  different answers.

The script is supplied as plain lists so the experiment module
(:mod:`repro.harness.experiments.e1_lower_bound`) stays the single place
describing the whole execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.messages import (
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteRequest,
)
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import SimEnvironment


class ScriptedByzantine(Process):
    """Plays back fixed answers for timestamp queries and reads.

    Args:
        ts_script: timestamps returned to successive ``GET_TS`` queries
            (the last entry repeats once the script is exhausted).
        read_script: ``(value, ts)`` pairs returned to successive ``READ``
            requests (the last entry repeats likewise).
    """

    def __init__(
        self,
        pid: str,
        env: "SimEnvironment",
        ts_script: list[Any],
        read_script: list[tuple[Any, Any]],
    ) -> None:
        super().__init__(pid, env)
        self.ts_script = list(ts_script)
        self.read_script = list(read_script)
        self._ts_cursor = 0
        self._read_cursor = 0

    def _next_ts(self) -> Any:
        idx = min(self._ts_cursor, len(self.ts_script) - 1)
        self._ts_cursor += 1
        return self.ts_script[idx]

    def _next_read(self) -> tuple[Any, Any]:
        idx = min(self._read_cursor, len(self.read_script) - 1)
        self._read_cursor += 1
        return self.read_script[idx]

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GetTs):
            self.send(src, TsReply(ts=self._next_ts()))
        elif isinstance(payload, WriteRequest):
            self.send(src, WriteAck(ts=payload.ts))
        elif isinstance(payload, ReadRequest):
            value, ts = self._next_read()
            self.send(
                src,
                ReadReply(
                    server=self.pid,
                    value=value,
                    ts=ts,
                    old_vals=((value, ts),),
                    label=payload.label,
                ),
            )
        # FLUSH and COMPLETE_READ are ignored: silence there only delays
        # clients, and the TM_1R protocol has no flush phase anyway.
