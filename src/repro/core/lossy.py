"""Register processes over the stabilizing data-link (fair-lossy links).

The paper assumes reliable FIFO channels and points at its reference [8]
for building them from fair-lossy non-FIFO links. These classes compose
the two reproductions: the register protocol runs unchanged, every message
travelling through :class:`~repro.sim.datalink.StabilizingDataLink`.

Used by experiment E10 (substrate overhead) and the data-link integration
tests::

    system = RegisterSystem(
        config,
        channel_factory=lambda: FairLossyChannel(loss=0.2),
        server_cls=LossyRegisterServer,
        client_cls=LossyRegisterClient,
    )
"""

from __future__ import annotations

from repro.core.client import RegisterClient
from repro.core.server import RegisterServer
from repro.sim.datalink import DataLinkMixin


class LossyRegisterServer(DataLinkMixin, RegisterServer):
    """A correct server whose traffic rides the stabilizing data-link."""


class LossyRegisterClient(DataLinkMixin, RegisterClient):
    """A client whose traffic rides the stabilizing data-link."""
