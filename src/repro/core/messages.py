"""Protocol messages (the wire format of Figures 1-3).

All messages are frozen dataclasses: hashable, comparable, and safely
shareable between the network's in-flight registry and the fault injector
(corruption *replaces* payloads rather than mutating them).

Field conventions:

* ``ts`` — a write timestamp: a raw label (SWMR) or an
  :class:`~repro.labels.ordering.MwmrTimestamp` (MWMR);
* ``label`` — a *read* label from the reader's small bounded set (an int
  index into its ``recent_labels`` matrix), unrelated to write timestamps;
* ``old_vals`` — a tuple of ``(value, ts)`` pairs, most recent first.

Receivers validate every field before use (transient corruption and
Byzantine senders can put anything here); malformed messages are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


# ----------------------------------------------------------------------
# write protocol (Figure 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GetTs:
    """Writer -> servers: first phase, request current timestamps."""


@dataclass(frozen=True)
class TsReply:
    """Server -> writer: its current timestamp."""

    ts: Any


@dataclass(frozen=True)
class WriteRequest:
    """Writer -> servers: second phase, the effective write."""

    value: Any
    ts: Any


@dataclass(frozen=True)
class WriteAck:
    """Server -> writer: the write's timestamp followed the local one."""

    ts: Any


@dataclass(frozen=True)
class WriteNack:
    """Server -> writer: the write's timestamp did not follow the local one.

    The server adopts the written pair regardless (Lemma 2 relies on
    unconditional adoption); the NACK only informs the writer's counting.
    """

    ts: Any


# ----------------------------------------------------------------------
# read protocol (Figure 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReadRequest:
    """Reader -> servers: request current value, tagged by a read label."""

    label: int
    reader: str


@dataclass(frozen=True)
class ReadReply:
    """Server -> reader: current pair plus the recent-write history.

    Sent on receipt of a :class:`ReadRequest` and *re-sent* on every write
    applied while the reader appears in the server's ``running_read`` set,
    so readers concurrent with writes observe fresh values.
    """

    server: str
    value: Any
    ts: Any
    old_vals: tuple
    label: int


@dataclass(frozen=True)
class CompleteRead:
    """Reader -> servers: stop forwarding, the read finished."""

    label: int
    reader: str


# ----------------------------------------------------------------------
# find_read_label / FLUSH handshake (Figure 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Flush:
    """Reader -> servers: FIFO flush marker for a read label."""

    label: int


@dataclass(frozen=True)
class FlushAck:
    """Server -> reader: the flush marker reflected back.

    By channel FIFO-ness, once the reflected marker arrives every earlier
    reply carrying the same label has arrived too, so the label is free.
    """

    label: int
    server: str


# ----------------------------------------------------------------------
# membership / state-transfer handshake (continuous-churn extension —
# arXiv:1910.06716 territory, not in the paper's figures)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StateRequest:
    """Joining server -> peers: request a register snapshot after a rejoin.

    ``nonce`` is the joiner's restart counter: replies provoked by an
    earlier join attempt carry a stale nonce and are ignored.
    """

    nonce: int


@dataclass(frozen=True)
class StateReply:
    """Peer server -> joiner: its current ``(value, ts)`` register copy.

    The joiner adopts the ≺-maximal pair reported by at least ``f + 1``
    peers; any smaller multiset could be Byzantine fabrication.
    """

    nonce: int
    server: str
    value: Any
    ts: Any
