"""The register client: writer + reader roles in one process.

The register is multi-writer multi-reader, so every client carries both
protocol sides. The class wires message dispatch to the two mixins and
exposes ``write(value)`` / ``read()`` as coroutine starters returning
:class:`~repro.sim.process.OperationHandle` objects.

Clients are sequential (one operation at a time, as the paper's
pseudo-code assumes); attempting to start an operation while another is in
flight raises :class:`ProtocolViolationError`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.messages import FlushAck, ReadReply, TsReply, WriteAck, WriteNack
from repro.core.reader import ABORT, ReaderMixin
from repro.core.writer import WriterMixin
from repro.errors import ProtocolViolationError
from repro.labels.base import LabelingScheme
from repro.sim.process import OperationHandle, Process
from repro.spec.history import HistoryRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import SimEnvironment

__all__ = ["RegisterClient", "ABORT"]


class RegisterClient(WriterMixin, ReaderMixin, Process):
    """A correct client of the stabilizing register."""

    def __init__(
        self,
        pid: str,
        env: "SimEnvironment",
        config: SystemConfig,
        scheme: LabelingScheme,
        servers: Sequence[str],
        recorder: HistoryRecorder,
    ) -> None:
        super().__init__(pid, env)
        self.config = config
        self.scheme = scheme
        self.servers = list(servers)
        self.recorder = recorder
        self._init_writer()
        self._init_reader()
        self._active_op: Optional[OperationHandle] = None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, TsReply):
            self._on_ts_reply(src, payload)
        elif isinstance(payload, WriteAck):
            self._on_write_ack(src, payload)
        elif isinstance(payload, WriteNack):
            self._on_write_nack(src, payload)
        elif isinstance(payload, ReadReply):
            self._on_read_reply(src, payload)
        elif isinstance(payload, FlushAck):
            self._on_flush_ack(src, payload)
        # anything else (garbage, stale foreign types) is silently dropped

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def write(self, value: Any) -> OperationHandle:
        """Start ``write(value)``; completion via the returned handle."""
        self._claim(f"write({value!r})")
        handle = self.start_operation(
            self.write_operation(value), name=f"{self.pid}:write({value!r})"
        )
        self._release_on_done(handle)
        return handle

    def read(self) -> OperationHandle:
        """Start ``read()``; the handle's result is the value or ABORT."""
        self._claim("read()")
        handle = self.start_operation(
            self.read_operation(), name=f"{self.pid}:read()"
        )
        self._release_on_done(handle)
        return handle

    # ------------------------------------------------------------------
    # sequential-client bookkeeping
    # ------------------------------------------------------------------
    def _claim(self, what: str) -> None:
        if self._active_op is not None and not self._active_op.done:
            raise ProtocolViolationError(
                f"{self.pid}: {what} invoked while "
                f"{self._active_op.name} is still running — clients are "
                f"sequential"
            )

    def _release_on_done(self, handle: OperationHandle) -> None:
        self._active_op = handle
        handle.on_done(lambda h: setattr(self, "_active_op", None))

    @property
    def idle(self) -> bool:
        return self._active_op is None or self._active_op.done

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def crash(self) -> None:
        if self.crashed:
            return
        super().crash()
        self.recorder.crashed(self.pid)

    def restart(self, rng: Optional[random.Random] = None) -> None:
        """Recover from a crash with freshly initialized protocol state.

        The interrupted operation (if any) was settled as ``CRASHED`` in
        the history at crash time; the recovered client starts from the
        protocol's initial state, optionally scrambled by ``rng`` (the
        crash–restart-with-arbitrary-recovered-state fault model). Either
        way the client is immediately able to serve new operations.
        """
        if not self.crashed:
            return
        self._init_writer()
        self._init_reader()
        self._active_op = None
        super().restart(rng)

    def corrupt_state(self, rng: random.Random) -> None:
        """Scramble every cross-operation protocol variable.

        In-operation temporaries are reset at the top of each operation
        (Figures 1-3, lines 01-03), so corrupting the persistent state
        between operations covers the paper's client-corruption model;
        corruption *during* an operation is modelled by crashing instead.
        """
        self._corrupt_writer_state(rng)
        self._corrupt_reader_state(rng)
