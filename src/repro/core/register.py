"""High-level facade: a runnable stabilizing-register deployment.

:class:`RegisterSystem` assembles the simulation environment, the server
replicas (substituting Byzantine strategies where requested), the clients,
and a shared operation history. It offers both asynchronous operation
starts (returning handles) and synchronous conveniences that drive the
scheduler until completion — which is what examples, tests and experiment
harnesses mostly use.

Typical use::

    config = SystemConfig(n=6, f=1)
    system = RegisterSystem(config, seed=42, n_clients=2)
    system.write_sync("c0", "hello")
    assert system.read_sync("c1") == "hello"
    verdict = system.check_regularity()
    assert verdict.ok
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.core.client import ABORT, RegisterClient
from repro.core.config import SystemConfig
from repro.core.server import INITIAL_VALUE, RegisterServer
from repro.errors import ConfigurationError
from repro.labels.alon import AlonLabelingScheme
from repro.labels.base import LabelingScheme
from repro.labels.ordering import MwmrOrdering
from repro.sim.adversary import Adversary
from repro.sim.channels import Channel, FifoChannel
from repro.sim.environment import SimEnvironment
from repro.sim.process import OperationHandle, Process
from repro.spec.history import History, HistoryRecorder
from repro.spec.regularity import RegularityChecker, RegularityVerdict

# A Byzantine server factory: (pid, env, config, scheme) -> Process.
ServerFactory = Callable[
    [str, SimEnvironment, SystemConfig, LabelingScheme], Process
]


class RegisterSystem:
    """One deployed register: servers + clients + history + environment.

    Args:
        config: quorum configuration (validated for ``n >= 5f + 1`` unless
            the config opts out).
        seed: master seed for the run (determinism).
        n_clients: number of register clients (``c0 .. c{m-1}``); every
            client can both read and write.
        adversary: message-delay policy; defaults to unit delays.
        channel_factory: per-pair channel policy; defaults to reliable
            FIFO. Use a fair-lossy factory together with data-link-wrapped
            process classes for the E10 substrate experiments.
        byzantine: maps a server pid to a factory producing its (Byzantine)
            replacement process. At most ``config.f`` entries.
        mwmr: when True (default) timestamps carry writer identities
            (Section IV-D); False gives the plain SWMR protocol — callers
            are then responsible for using a single writer.
        server_cls / client_cls: override the correct-process classes
            (used to wrap them with the data-link mixin).
        max_events: scheduler safety cap.
        env: share an existing simulation environment instead of creating
            one — several register deployments can then coexist on one
            scheduler/network (the key-value store shards this way). The
            ``adversary``/``channel_factory``/``max_events`` arguments are
            ignored when an environment is supplied.
        namespace: prefix for every process id of this deployment, so
            deployments sharing an environment do not collide (e.g.
            ``namespace="cart:"`` gives servers ``cart:s0`` ...).
        trace: observability level forwarded to the environment
            (``off`` | ``stats`` | ``full``); ignored when ``env`` is
            supplied.
    """

    def __init__(
        self,
        config: SystemConfig,
        seed: int = 0,
        n_clients: int = 2,
        adversary: Optional[Adversary] = None,
        channel_factory: Callable[[], Channel] = FifoChannel,
        byzantine: Optional[dict[str, ServerFactory]] = None,
        mwmr: bool = True,
        server_cls: type = RegisterServer,
        client_cls: type = RegisterClient,
        max_events: int = 50_000_000,
        env: Optional[SimEnvironment] = None,
        namespace: str = "",
        trace: str = "stats",
    ) -> None:
        if n_clients < 1:
            raise ConfigurationError("need at least one client")
        byzantine = dict(byzantine or {})
        if len(byzantine) > config.f:
            raise ConfigurationError(
                f"{len(byzantine)} Byzantine servers configured but f={config.f}"
            )
        unknown = set(byzantine) - set(config.server_ids)
        if unknown:
            raise ConfigurationError(f"unknown Byzantine server ids: {unknown}")

        self.config = config
        self.seed = seed
        self.namespace = namespace
        base_scheme = config.scheme or AlonLabelingScheme(k=config.n + 1)
        self.scheme: LabelingScheme = (
            MwmrOrdering(base_scheme) if mwmr else base_scheme
        )
        self.env = env if env is not None else SimEnvironment(
            seed=seed,
            adversary=adversary,
            channel_factory=channel_factory,
            max_events=max_events,
            trace=trace,
        )
        self.history = History()
        self.recorder = HistoryRecorder(self.history, lambda: self.env.now)

        self.server_ids = [namespace + sid for sid in config.server_ids]
        self.servers: dict[str, Process] = {}
        self.byzantine_ids: set[str] = {namespace + sid for sid in byzantine}
        #: servers currently departed under churn: really crashed, so
        #: messages to them are dropped (not delayed) until they rejoin.
        self.departed: set[str] = set()
        #: the mobile-Byzantine carrier, when a mobility nemesis owns one.
        self.mobile_carrier: Optional[Any] = None
        for sid in config.server_ids:
            pid = namespace + sid
            factory = byzantine.get(sid)
            if factory is not None:
                self.servers[pid] = factory(pid, self.env, config, self.scheme)
            else:
                self.servers[pid] = server_cls(pid, self.env, config, self.scheme)

        self.clients: dict[str, RegisterClient] = {}
        for i in range(n_clients):
            cid = f"{namespace}c{i}"
            self.clients[cid] = client_cls(
                cid,
                self.env,
                config,
                self.scheme,
                self.server_ids,
                self.recorder,
            )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def client(self, cid: str) -> RegisterClient:
        return self.clients[cid]

    def server(self, sid: str) -> Process:
        return self.servers[sid]

    def correct_servers(self) -> list[RegisterServer]:
        """The non-Byzantine replicas (for state censuses in experiments)."""
        return [
            proc
            for sid, proc in self.servers.items()
            if sid not in self.byzantine_ids and isinstance(proc, RegisterServer)
        ]

    # ------------------------------------------------------------------
    # asynchronous operations
    # ------------------------------------------------------------------
    def write(self, cid: str, value: Any) -> OperationHandle:
        return self.clients[cid].write(value)

    def read(self, cid: str) -> OperationHandle:
        return self.clients[cid].read()

    # ------------------------------------------------------------------
    # synchronous conveniences
    # ------------------------------------------------------------------
    def write_sync(self, cid: str, value: Any) -> Any:
        """Run the scheduler until ``write(value)`` by ``cid`` completes.

        Advances the clock a hair afterwards so the next synchronous
        operation is strictly later on the fictional global clock.
        """
        handle = self.write(cid, value)
        self.env.run_to_completion(lambda: handle.done)
        self.env.tick()
        return handle.result

    def read_sync(self, cid: str) -> Any:
        """Run the scheduler until ``read()`` by ``cid`` completes.

        Returns the read value, or :data:`ABORT`. Ticks the clock like
        :meth:`write_sync`.
        """
        handle = self.read(cid)
        self.env.run_to_completion(lambda: handle.done)
        self.env.tick()
        return handle.result

    def settle(self) -> int:
        """Drain all in-flight events (between workload phases)."""
        return self.env.run()

    # ------------------------------------------------------------------
    # membership (continuous churn)
    # ------------------------------------------------------------------
    def leave_server(self, sid: str) -> None:
        """Remove ``sid`` from the deployment (continuous-churn model).

        Unlike the crash–restart nemesis — which models a server outage
        as a partition window, so messages are *delayed* — a departed
        server is really gone: the process crashes and the network drops
        every message addressed to it while absent. That is the regime
        of arXiv:1910.06716 and deliberately outside the paper's
        reliable-channel model; experiment E15 charts what it costs.
        No-op for a server already departed.
        """
        self.departed.add(sid)
        self.servers[sid].crash()

    def join_server(self, sid: str, transfer: bool = True) -> None:
        """Re-admit a departed server, with a state-transfer handshake.

        The joiner restarts with scrambled state (a fresh boot knows
        nothing — the crash–recovery-with-arbitrary-memory model), then,
        for a correct server with ``transfer`` on, polls the peers still
        present with a ``StateRequest`` and adopts the best witnessed
        snapshot (:meth:`RegisterServer.begin_join`). No-op for a server
        that never left.
        """
        server = self.servers[sid]
        if not server.crashed:
            return
        rng = self.env.spawn_rng(f"join:{sid}:{server.restarts}")
        server.restart(rng)
        self.departed.discard(sid)
        if (
            transfer
            and sid not in self.byzantine_ids
            and isinstance(server, RegisterServer)
        ):
            peers = [
                pid
                for pid in self.server_ids
                if pid != sid and pid not in self.departed
            ]
            server.begin_join(peers)

    def present_servers(self) -> list[str]:
        """Server pids currently in the deployment (live membership view)."""
        return [sid for sid in self.server_ids if sid not in self.departed]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def corrupt_servers(self, sids: Optional[Sequence[str]] = None) -> list[str]:
        """Scramble the state of the given (default: all correct) servers."""
        rng = self.env.spawn_rng("corrupt-servers")
        targets = (
            [self.servers[s] for s in sids]
            if sids is not None
            else list(self.correct_servers())
        )
        for proc in targets:
            proc.corrupt_state(rng)
        return [p.pid for p in targets]

    def crash_client(self, cid: str) -> None:
        """Crash-stop ``cid``; its in-flight operation fails as CRASHED."""
        self.clients[cid].crash()

    def restart_client(self, cid: str, scramble: bool = True) -> None:
        """Recover a crashed client (no-op if alive).

        With ``scramble`` (the default) the recovered state is arbitrary —
        the crash–restart fault model the chaos layer exercises; the RNG is
        derived from the run seed and the client's restart count, so every
        restart is deterministic and distinct.
        """
        client = self.clients[cid]
        rng = (
            self.env.spawn_rng(f"restart:{cid}:{client.restarts}")
            if scramble
            else None
        )
        client.restart(rng)

    def corrupt_clients(self, cids: Optional[Sequence[str]] = None) -> list[str]:
        """Scramble the persistent state of the given (default: all) clients."""
        rng = self.env.spawn_rng("corrupt-clients")
        targets = (
            [self.clients[c] for c in cids]
            if cids is not None
            else list(self.clients.values())
        )
        for proc in targets:
            proc.corrupt_state(rng)
        return [p.pid for p in targets]

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def checker(self, **overrides: Any) -> RegularityChecker:
        """A regularity checker wired to this system's scheme and initial
        value; keyword overrides pass through to the checker constructor."""
        kwargs: dict[str, Any] = dict(
            scheme=self.scheme, initial_value=INITIAL_VALUE
        )
        kwargs.update(overrides)
        return RegularityChecker(**kwargs)

    def check_regularity(self, **overrides: Any) -> RegularityVerdict:
        """Check the recorded history against the MWMR regular spec."""
        return self.checker(**overrides).check(self.history)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def census(self, value: Any, ts: Any) -> int:
        """How many *correct* servers currently store exactly ``(value, ts)``.

        Lemma 2 predicts at least ``3f + 1`` right after a write completes.
        """
        return sum(
            1
            for server in self.correct_servers()
            if server.snapshot() == (value, ts)
        )

    def read_path_stats(self) -> dict[str, int]:
        """Aggregate read-path counters across clients (local/union/abort)."""
        total = {"local": 0, "union": 0, "abort": 0}
        for client in self.clients.values():
            for key, count in client.read_path_stats.items():
                total[key] += count
        return total

    @property
    def message_stats(self):
        return self.env.network.stats
