"""Write-back reads: an atomic extension of the paper's register.

The paper's reads are deliberately one-phase — that is why Byzantine
*readers* are harmless (Concluding Remarks) — and E11 shows the price:
two sequential reads concurrent with one write can observe new-then-old,
so the register is regular but not atomic.

This module implements the classical remedy as an opt-in client variant:
after selecting its return node, the reader *writes the pair back* and
waits for ``n - f`` responses before returning. Every response certifies
the responding server now stores a pair at least as recent (an ACK means
it adopted the pair; post-stabilization a NACK means its current pair
already dominates), so a subsequent read's quorum must intersect the
written-back pair in at least ``2f + 1 - f`` correct servers — the
new/old inversion dies (E11's extension row demonstrates it on the same
adversarial schedule).

Cost and caveats, measured in E11:

* one extra broadcast round + reply round per read (latency 4 → 6, and
  Θ(n) more messages);
* the Byzantine-reader immunity is narrowed: a Byzantine reader can now
  push *replays of legitimate pairs* at servers. Conditional adoption
  caps the damage (stale pairs are refused; replaying the current pair is
  a no-op), but the one-phase design's "readers cannot modify server
  state, period" guarantee is gone — exactly the trade-off the paper's
  design avoids.
* Aborted reads skip the write-back (there is nothing to install).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.client import RegisterClient
from repro.core.messages import CompleteRead, ReadRequest, WriteRequest
from repro.core.reader import ABORT
from repro.sim.process import Wait
from repro.spec.history import OpKind, OpStatus
from repro.wtsg.analysis import build_local_graph, build_union_graph


class AtomicRegisterClient(RegisterClient):
    """A register client whose reads write back (atomic variant)."""

    def _init_reader(self) -> None:
        super()._init_reader()
        # Write-back phase bookkeeping: responders keyed by server.
        self._wb_responders: set[str] = set()
        self._wb_ts: Any = None

    def _corrupt_reader_state(self, rng) -> None:
        super()._corrupt_reader_state(rng)
        self._wb_responders = set()
        self._wb_ts = self.scheme.random_label(rng) if rng.random() < 0.5 else None

    def _on_write_ack(self, src: str, msg) -> None:
        super()._on_write_ack(src, msg)
        if msg.ts == self._wb_ts and src in self.servers:
            self._wb_responders.add(src)

    def _on_write_nack(self, src: str, msg) -> None:
        super()._on_write_nack(src, msg)
        if msg.ts == self._wb_ts and src in self.servers:
            self._wb_responders.add(src)

    def read_operation(self) -> Generator[Wait, None, Any]:
        """Figure 2a plus a write-back phase before returning."""
        op = self.recorder.invoked(self.pid, OpKind.READ)
        cfg = self.config

        self._replies = []
        self._reply_servers = set()
        label = yield from self.find_read_label()
        self.reading = True
        for s in sorted(self.safe):
            self.send(s, ReadRequest(label=label, reader=self.pid))
            self.recent_labels[s][label] = 1
        yield Wait(
            lambda: len(self._reply_servers) >= cfg.reply_quorum,
            label=f"atomic-read[{label}]: reply quorum",
        )

        graph = build_local_graph(self.scheme, self._replies)
        node = graph.select_maximal_qualified(cfg.witness_threshold)
        path = "local"
        if node is None and cfg.enable_union_graph:
            union = build_union_graph(
                self.scheme, self._replies, self.recent_vals
            )
            node = union.select_maximal_qualified(cfg.witness_threshold)
            path = "union"
        if node is None:
            path = "abort"
        self.read_path_stats[path] += 1

        self.reading = False
        for s in sorted(self.safe):
            self.send(s, CompleteRead(label=label, reader=self.pid))

        if node is None:
            self.recorder.responded(op, OpStatus.ABORT)
            return ABORT

        # --- write-back: install the chosen pair before answering -------
        self._wb_ts = node.timestamp
        self._wb_responders = set()
        self.broadcast(
            self.servers, WriteRequest(value=node.value, ts=node.timestamp)
        )
        yield Wait(
            lambda: len(self._wb_responders) >= cfg.reply_quorum,
            label=f"atomic-read[{label}]: write-back quorum",
        )
        self._wb_ts = None

        self.recorder.responded(
            op, OpStatus.OK, result=node.value, timestamp=node.timestamp
        )
        return node.value
