"""The write protocol, client side (Figure 1a).

Two phases:

1. **Timestamp gathering** — broadcast ``GET_TS``, collect the current
   timestamp of at least ``n - f`` servers (one per server: with FIFO
   channels and a sequential client, at most ``f`` of the collected values
   can be stale — exactly the slow-server budget Lemma 8's accounting
   allows), then compute ``next()`` over the gathered set plus the
   client's own last write timestamp.
2. **Propagation** — broadcast ``WRITE(value, ts)``; wait for at least
   ``n - f`` responses of which at least ``2f + 1`` are ACKs. Lemma 1
   proves the ACK quorum always fills for a *solo* writer; when a
   concurrent writer's race starves it, both phases retry with a fresh
   dominating timestamp (see :meth:`WriterMixin.write_operation` and
   DESIGN.md interpretation #6).

ACK/NACK messages are matched to the operation by their timestamp content
(a fresh timestamp is never in flight for an older operation — bounded
labels may recycle, which Assumption 2's quiescence makes safe).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.messages import GetTs, TsReply, WriteAck, WriteNack, WriteRequest
from repro.labels.ordering import MwmrOrdering
from repro.sim.process import Wait
from repro.spec.history import OpKind, OpStatus


class WriterMixin:
    """Write-side state and handlers, mixed into the register client.

    Expects the host class to provide: ``pid``, ``config``, ``scheme``,
    ``servers``, ``recorder``, ``send``/``broadcast`` and the coroutine
    machinery of :class:`~repro.sim.process.Process`.
    """

    def _init_writer(self) -> None:
        # Last timestamp this client used for a write (survives between
        # operations; transient corruption may scramble it).
        self.write_ts: Any = self.scheme.initial_label()
        # Phase-1 state: current timestamps keyed by server.
        self._wts_by_server: dict[str, Any] = {}
        self._collecting_ts: bool = False
        # Phase-2 state: responders keyed by server, matched on timestamp.
        self._ack_from: set[str] = set()
        self._nack_from: set[str] = set()
        self._pending_write_ts: Any = None

    # ------------------------------------------------------------------
    # handlers (called from the client's on_message dispatch)
    # ------------------------------------------------------------------
    def _on_ts_reply(self, src: str, msg: TsReply) -> None:
        if not self._collecting_ts or src not in self.servers:
            return
        if src in self._wts_by_server:
            return  # keep the first answer of this operation (see module doc)
        self._wts_by_server[src] = msg.ts

    def _on_write_ack(self, src: str, msg: WriteAck) -> None:
        if src in self.servers and msg.ts == self._pending_write_ts:
            self._ack_from.add(src)

    def _on_write_nack(self, src: str, msg: WriteNack) -> None:
        if src in self.servers and msg.ts == self._pending_write_ts:
            self._nack_from.add(src)

    # ------------------------------------------------------------------
    # the operation
    # ------------------------------------------------------------------
    def write_operation(
        self, value: Any
    ) -> Generator[Wait, None, Any]:
        """Generator implementing ``write(value)``; returns the timestamp.

        The two phases of Figure 1, wrapped in a retry loop: when the
        second phase gathers ``n - f`` responses but fewer than ``2f + 1``
        ACKs, a concurrent write with a timestamp not dominated by ours
        beat us to the replicas (conditional adoption refused ours). The
        paper's Lemma 1 proves the ACK quorum always fills for a *solo*
        writer; Section IV-D's multi-writer modification does not revisit
        it, and racing writers genuinely starve it (reproduced in the
        tests). Retrying both phases computes a fresh timestamp that
        dominates whatever the race installed, so under Assumption-2-style
        quiescence (finite bursts) some attempt wins every correct
        replica's ACK. The operation's history record spans all attempts.
        """
        op = self.recorder.invoked(self.pid, OpKind.WRITE, argument=value)
        cfg = self.config

        while True:
            # -- phase 1: gather current timestamps ----------------------
            self._wts_by_server = {}
            self._collecting_ts = True
            self.broadcast(self.servers, GetTs())
            yield Wait(
                lambda: len(self._wts_by_server) >= cfg.reply_quorum,
                label=f"write({value!r}): ts quorum",
            )
            self._collecting_ts = False

            gathered = list(self._wts_by_server.values())
            if self.scheme.is_label(self.write_ts):
                gathered.append(self.write_ts)
            ts = self._make_timestamp(gathered)
            self.write_ts = ts
            self._pending_write_ts = ts

            # -- phase 2: propagate --------------------------------------
            self._ack_from = set()
            self._nack_from = set()
            self.broadcast(self.servers, WriteRequest(value=value, ts=ts))
            yield Wait(
                lambda: (
                    len(self._ack_from) + len(self._nack_from)
                    >= cfg.reply_quorum
                ),
                label=f"write({value!r}): response quorum",
            )
            if len(self._ack_from) >= cfg.ack_quorum:
                break
            # Lost a race against a concurrent write — go again with a
            # timestamp that dominates the winner.

        self._pending_write_ts = None
        self.recorder.responded(op, OpStatus.OK, timestamp=ts)
        return ts

    # ------------------------------------------------------------------
    def _make_timestamp(self, gathered: list[Any]) -> Any:
        """``next()`` over the gathered set, carrying the writer identity
        when the scheme is the MWMR lift (Section IV-D)."""
        if isinstance(self.scheme, MwmrOrdering):
            return self.scheme.next_timestamp(
                self.scheme.valid_labels(gathered), self.pid
            )
        return self.scheme.next_label(gathered)

    # ------------------------------------------------------------------
    # transient faults
    # ------------------------------------------------------------------
    def _corrupt_writer_state(self, rng) -> None:
        self.write_ts = self.scheme.random_label(rng)
        self._wts_by_server = {}
        self._collecting_ts = rng.random() < 0.5
        self._ack_from = set()
        self._nack_from = set()
        self._pending_write_ts = (
            self.scheme.random_label(rng) if rng.random() < 0.5 else None
        )
