"""The paper's contribution: the stabilizing BFT regular register.

This package implements the protocol of Section IV:

* :mod:`repro.core.server` — the server automaton (Figures 1b/2b/3b):
  GET_TS / WRITE(ack-nack, unconditional adoption, old-value window,
  forwarding to running readers) / READ / COMPLETE_READ / FLUSH;
* :mod:`repro.core.writer` — the two-phase write protocol (Figure 1a):
  gather ``n - f`` current timestamps, compute ``next()``, write to all,
  await ``n - f`` responses of which ``2f + 1`` acknowledgements;
* :mod:`repro.core.reader` — the read protocol (Figure 2a) and the
  bounded-label ``find_read_label`` procedure with its FLUSH handshake
  (Figure 3a), local and union weighted timestamp graphs and the ``2f+1``
  witness rule;
* :mod:`repro.core.client` — the client process combining both roles
  (every client may read and write: the register is MWMR);
* :mod:`repro.core.register` — :class:`RegisterSystem`, the high-level
  facade that assembles servers, clients, history recording and fault
  hooks into one runnable system.

The required resilience is ``n >= 5f + 1`` (Theorem 2/3); the
configuration enforces it unless a lower-bound experiment explicitly opts
out.
"""

from repro.core.config import SystemConfig
from repro.core.messages import (
    GetTs,
    TsReply,
    WriteRequest,
    WriteAck,
    WriteNack,
    ReadRequest,
    ReadReply,
    CompleteRead,
    Flush,
    FlushAck,
)
from repro.core.server import RegisterServer
from repro.core.client import RegisterClient, ABORT
from repro.core.register import RegisterSystem

__all__ = [
    "SystemConfig",
    "GetTs",
    "TsReply",
    "WriteRequest",
    "WriteAck",
    "WriteNack",
    "ReadRequest",
    "ReadReply",
    "CompleteRead",
    "Flush",
    "FlushAck",
    "RegisterServer",
    "RegisterClient",
    "ABORT",
    "RegisterSystem",
]
