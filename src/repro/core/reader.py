"""The read protocol, client side (Figures 2a and 3a).

A read proceeds as follows:

1. ``find_read_label`` (Figure 3a) — pick the next label of the bounded
   per-client read-label set (cyclically, never the one just used), send a
   ``FLUSH`` marker to every server, and wait until at most ``f`` servers
   still have a pending reply for that label (the ``recent_labels`` column).
   By channel FIFO-ness, a server's ``FLUSH_ACK`` arriving implies every
   older reply with that label arrived before it (Lemma 5), so servers
   acknowledging the flush are *safe*: no stale reply from them can be
   mistaken for a fresh one. Stuck column entries can only belong to the
   at most ``f`` Byzantine servers, hence the ``<= f`` exit condition
   (the paper's "less than f" would deadlock against exactly ``f``
   silent Byzantine servers; we read it as "at most f").
2. Send ``READ(label)`` to every safe server; servers becoming safe later
   (their flush ack was slow) are folded in on arrival and also get a
   ``READ`` (Figure 3a lines 13-16).
3. Wait for replies from at least ``n - f`` distinct safe servers. Replies
   are accepted only from safe servers and only for the current label.
4. Build the *local* weighted timestamp graph from the replies; if a node
   carries at least ``2f + 1`` witnesses, return its value. Otherwise
   build the *union* graph folding in every server's reported history
   (``recent_vals``, which persists across this client's reads); if a node
   qualifies there, return it; otherwise the servers are in a transitory
   phase and the read *aborts*.
5. Either way, send ``COMPLETE_READ`` so servers stop forwarding writes.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.messages import (
    CompleteRead,
    Flush,
    FlushAck,
    ReadReply,
    ReadRequest,
)
from repro.sim.process import Wait
from repro.spec.history import OpKind, OpStatus
from repro.wtsg.analysis import build_local_graph, build_union_graph

#: Sentinel returned by aborted reads (servers in a transitory phase).
ABORT = object()


class ReaderMixin:
    """Read-side state and handlers, mixed into the register client.

    Expects the host class to provide: ``pid``, ``config``, ``scheme``,
    ``servers``, ``recorder``, ``send``/``broadcast`` and the coroutine
    machinery of :class:`~repro.sim.process.Process`.
    """

    def _init_reader(self) -> None:
        cfg = self.config
        # recent_labels[server][label] == 1 while a reply tagged `label` may
        # still arrive from `server` (an n x k matrix in the paper).
        self.recent_labels: dict[str, list[int]] = {
            s: [0] * cfg.read_label_count for s in self.servers
        }
        # Per-server last reported history window (persists across reads).
        self.recent_vals: dict[str, tuple] = {}
        self.last_label: int = cfg.read_label_count - 1
        self.r_label: int = 0
        self.reading: bool = False
        self.safe: set[str] = set()
        self.slow: set[str] = set()
        self._replies: list[tuple[str, Any, Any]] = []
        self._reply_servers: set[str] = set()
        # Which mechanism answered each read (observability for E7/E9):
        # the local graph, the union-graph fallback, or an abort.
        self.read_path_stats = {"local": 0, "union": 0, "abort": 0}

    # ------------------------------------------------------------------
    # handlers (called from the client's on_message dispatch)
    # ------------------------------------------------------------------
    def _valid_read_label(self, label: Any) -> bool:
        return (
            isinstance(label, int)
            and not isinstance(label, bool)
            and 0 <= label < self.config.read_label_count
        )

    def _on_read_reply(self, src: str, msg: ReadReply) -> None:
        if src not in self.servers or not self._valid_read_label(msg.label):
            return
        if self.reading and msg.label == self.r_label and src in self.safe:
            self._replies.append((src, msg.value, msg.ts))
            self._reply_servers.add(src)
            self._store_recent_vals(src, msg.old_vals)
        # Line 27 (Figure 2a): whatever the label, the pending flag clears.
        self.recent_labels[src][msg.label] = 0

    def _store_recent_vals(self, src: str, old_vals: Any) -> None:
        """Validate and bound the reported history before keeping it."""
        if not isinstance(old_vals, tuple):
            return
        bounded = tuple(
            entry
            for entry in old_vals[: self.config.old_vals_window]
            if isinstance(entry, tuple) and len(entry) == 2
        )
        self.recent_vals[src] = bounded

    def _on_flush_ack(self, src: str, msg: FlushAck) -> None:
        if src not in self.servers or not self._valid_read_label(msg.label):
            return
        # Line 12 (Figure 3a): the label is no longer pending at src.
        self.recent_labels[src][msg.label] = 0
        if msg.label != self.r_label:
            return  # an ack for some older flush
        # Lines 13-16: src becomes safe for the current operation; if the
        # read already started, fold it in with its own READ request.
        self.safe.add(src)
        self.slow.discard(src)
        if self.reading:
            self.send(src, ReadRequest(label=self.r_label, reader=self.pid))
            self.recent_labels[src][self.r_label] = 1

    # ------------------------------------------------------------------
    # find_read_label (Figure 3a)
    # ------------------------------------------------------------------
    def find_read_label(self) -> Generator[Wait, None, int]:
        cfg = self.config
        label = (self.last_label + 1) % cfg.read_label_count  # never the last
        self.last_label = label
        self.r_label = label
        if not cfg.enable_flush:
            # Ablation E9: skip the handshake; optimistically trust everyone.
            self.safe = set(self.servers)
            self.slow = set()
            return label
        self.safe = set()
        self.slow = {
            s for s in self.servers if self.recent_labels[s][label] == 1
        }
        self.broadcast(self.servers, Flush(label=label))
        yield Wait(
            lambda: sum(
                self.recent_labels[s][label] for s in self.servers
            )
            <= cfg.f,
            label=f"find_read_label({label}): column flush",
        )
        return label

    # ------------------------------------------------------------------
    # the operation (Figure 2a)
    # ------------------------------------------------------------------
    def read_operation(self) -> Generator[Wait, None, Any]:
        """Generator implementing ``read()``.

        Returns the read value, or :data:`ABORT` when the servers are in a
        transitory phase (pre-stabilization only, per Lemma 7).
        """
        op = self.recorder.invoked(self.pid, OpKind.READ)
        cfg = self.config

        self._replies = []
        self._reply_servers = set()
        label = yield from self.find_read_label()
        self.reading = True
        for s in sorted(self.safe):
            self.send(s, ReadRequest(label=label, reader=self.pid))
            self.recent_labels[s][label] = 1
        yield Wait(
            lambda: len(self._reply_servers) >= cfg.reply_quorum,
            label=f"read[{label}]: reply quorum",
        )

        # Local graph first (line 09); union graph as the fallback (15).
        graph = build_local_graph(self.scheme, self._replies)
        node = graph.select_maximal_qualified(cfg.witness_threshold)
        path = "local"
        if node is None and cfg.enable_union_graph:
            union = build_union_graph(
                self.scheme, self._replies, self.recent_vals
            )
            node = union.select_maximal_qualified(cfg.witness_threshold)
            path = "union"
        if node is None:
            path = "abort"
        self.read_path_stats[path] += 1

        self.reading = False
        for s in sorted(self.safe):
            self.send(s, CompleteRead(label=label, reader=self.pid))

        if node is None:
            self.recorder.responded(op, OpStatus.ABORT)
            return ABORT
        self.recorder.responded(
            op, OpStatus.OK, result=node.value, timestamp=node.timestamp
        )
        return node.value

    # ------------------------------------------------------------------
    # transient faults
    # ------------------------------------------------------------------
    def _corrupt_reader_state(self, rng) -> None:
        cfg = self.config
        self.recent_labels = {
            s: [rng.randrange(2) for _ in range(cfg.read_label_count)]
            for s in self.servers
        }
        self.last_label = rng.randrange(cfg.read_label_count)
        self.r_label = rng.randrange(cfg.read_label_count)
        self.reading = rng.random() < 0.5
        # Reply buffers: emptied rather than filled with forgeries — every
        # operation rebuilds them from scratch at invocation (lines 01-03),
        # so junk here could only be observed by an operation the fault
        # interrupted, which the model treats as a crash.
        self._replies = []
        self._reply_servers = set()
        self.recent_vals = {
            s: tuple(
                (
                    f"corrupt-{rng.getrandbits(24):06x}",
                    self.scheme.random_label(rng),
                )
                for _ in range(rng.randrange(cfg.old_vals_window + 1))
            )
            for s in rng.sample(self.servers, rng.randrange(len(self.servers) + 1))
        }
        self.safe = set()
        self.slow = set()
