"""The register server automaton (server side of Figures 1-3).

State (Section IV-B):

* ``value`` / ``ts`` — the current register copy and its timestamp;
* ``old_vals`` — sliding window of the last ``window`` written pairs,
  most recent first;
* ``running_read`` — readers currently reading (reader pid -> read label),
  to whom every applied write is forwarded.

Handlers:

* ``GET_TS``  -> reply with the current timestamp;
* ``WRITE``   -> ACK when the new timestamp follows the local one under
  ``≺``, NACK otherwise; *in either case* adopt the pair, shift the old
  pair into the window, and forward a fresh ``ReadReply`` to every running
  reader (the unconditional adoption is what Lemma 2's case analysis
  counts on);
* ``READ``    -> register the reader and reply with value, timestamp and
  the history window;
* ``COMPLETE_READ`` -> deregister the reader;
* ``FLUSH``   -> reflect a ``FLUSH_ACK`` (the FIFO flush of Figure 3).

Every handler validates its input: garbage from corrupted channels or
Byzantine peers is dropped, never raises. Transient corruption of the
server itself is modelled by :meth:`corrupt_state`, which randomizes every
variable above within its type domain.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.messages import (
    CompleteRead,
    Flush,
    FlushAck,
    GetTs,
    ReadReply,
    ReadRequest,
    StateReply,
    StateRequest,
    TsReply,
    WriteAck,
    WriteNack,
    WriteRequest,
)
from repro.labels.base import LabelingScheme

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import SimEnvironment

from repro.sim.process import Process

#: The register's conceptual initial value (never written by a client).
INITIAL_VALUE = None


def adopt_snapshot(
    replies: dict[str, tuple[Any, Any]],
    scheme: LabelingScheme,
    f: int,
) -> Optional[tuple[Any, Any]]:
    """The joiner's adoption rule over collected ``(value, ts)`` snapshots.

    A pair needs at least ``f + 1`` reporters to rule out Byzantine
    fabrication (up to ``f`` peers may lie in concert); among the
    witnessed pairs, the ≺-maximal one wins. Returns ``None`` when no
    pair reaches the witness threshold — the joiner then keeps whatever
    state it booted with, which the stabilization story already covers.

    Shared by the simulator's peer-to-peer handshake
    (:meth:`RegisterServer._finalize_join`) and the live cluster's
    mediated transfer (:meth:`~repro.net.cluster.LiveRegisterCluster.respawn_server`).
    """
    votes: dict[tuple[Any, Any], int] = {}
    for peer in sorted(replies):
        pair = replies[peer]
        try:
            votes[pair] = votes.get(pair, 0) + 1
        except TypeError:
            # Unhashable fabricated value: cannot be witnessed by count.
            continue
    winner: Optional[tuple[Any, Any]] = None
    for pair, count in votes.items():
        if count < f + 1:
            continue
        if winner is None or scheme.precedes(winner[1], pair[1]):
            winner = pair
    return winner


class RegisterServer(Process):
    """A correct server replica."""

    def __init__(
        self,
        pid: str,
        env: "SimEnvironment",
        config: SystemConfig,
        scheme: LabelingScheme,
    ) -> None:
        super().__init__(pid, env)
        self.config = config
        self.scheme = scheme
        self.value: Any = INITIAL_VALUE
        self.ts: Any = scheme.initial_label()
        self.old_vals: list[tuple[Any, Any]] = []
        self.running_read: dict[str, int] = {}
        # Churn state-transfer handshake (populated by begin_join).
        self._join_nonce: Any = None
        self._join_replies: dict[str, tuple[Any, Any]] = {}
        self._join_quorum: Any = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GetTs):
            self.on_get_ts(src)
        elif isinstance(payload, WriteRequest):
            self.on_write(src, payload)
        elif isinstance(payload, ReadRequest):
            self.on_read(src, payload)
        elif isinstance(payload, CompleteRead):
            self.on_complete_read(src, payload)
        elif isinstance(payload, Flush):
            self.on_flush(src, payload)
        elif isinstance(payload, StateRequest):
            self.on_state_request(src, payload)
        elif isinstance(payload, StateReply):
            self.on_state_reply(src, payload)
        # anything else (garbage, stale foreign types) is silently dropped

    # ------------------------------------------------------------------
    # write protocol
    # ------------------------------------------------------------------
    def on_get_ts(self, src: str) -> None:
        self.send(src, TsReply(ts=self.ts))

    def on_write(self, src: str, msg: WriteRequest) -> None:
        if not self.scheme.is_label(msg.ts):
            # A structurally invalid timestamp cannot be adopted — storing
            # it would make this correct server indistinguishable from a
            # corrupted one. Refuse (NACK carries the offending ts back).
            self.send(src, WriteNack(ts=msg.ts))
            return
        if not self.scheme.precedes(self.ts, msg.ts):
            # Conditional adoption. The paper's Lemma 2 narration has
            # NACKing servers adopt anyway — under which any stale WRITE
            # relic (corrupted channel contents, or a replayed legitimate
            # pair: writers are not authenticated) rolls the replica
            # *backwards* to an overwritten value, and a few replayed
            # copies let a quorum read return it after a newer write
            # completed (reproduced in tests/core/test_design_deviations).
            # Refusing non-following timestamps makes relics inert and
            # keeps every replica ≺-monotone; the writer side compensates
            # for refused racing writes with dominating-timestamp retries.
            self.send(src, WriteNack(ts=msg.ts))
            return
        self.send(src, WriteAck(ts=msg.ts))
        self._shift_in(self.value, self.ts)
        self.value = msg.value
        self.ts = msg.ts
        # Forward the fresh pair to every running reader (Figure 1b).
        for reader, label in list(self.running_read.items()):
            self.send(reader, self._reply(label))

    def _shift_in(self, value: Any, ts: Any) -> None:
        self.old_vals.insert(0, (value, ts))
        del self.old_vals[self.config.old_vals_window:]

    # ------------------------------------------------------------------
    # read protocol
    # ------------------------------------------------------------------
    def on_read(self, src: str, msg: ReadRequest) -> None:
        if not isinstance(msg.label, int):
            return
        # One running read per reader: a fresh READ supersedes the old one.
        self.running_read[src] = msg.label
        self.send(src, self._reply(msg.label))

    def on_complete_read(self, src: str, msg: CompleteRead) -> None:
        if self.running_read.get(src) == msg.label:
            del self.running_read[src]

    def _reply(self, label: int) -> ReadReply:
        return ReadReply(
            server=self.pid,
            value=self.value,
            ts=self.ts,
            old_vals=tuple(self.old_vals),
            label=label,
        )

    # ------------------------------------------------------------------
    # FLUSH handshake
    # ------------------------------------------------------------------
    def on_flush(self, src: str, msg: Flush) -> None:
        if not isinstance(msg.label, int):
            return
        self.send(src, FlushAck(label=msg.label, server=self.pid))

    # ------------------------------------------------------------------
    # churn state transfer (membership extension, not in the paper)
    # ------------------------------------------------------------------
    def begin_join(self, peers: Sequence[str]) -> None:
        """Start the joiner's state-transfer handshake after a rejoin.

        The joiner keeps serving the protocol while it collects peer
        snapshots — there is deliberately *no* "joining" gate on
        :meth:`on_message`. A gate active while ``_join_nonce`` is set
        would be a state-triggered crash-stop: transient corruption of
        the handshake fields could then permanently silence a correct
        server, exceeding the ``f`` bound. Ungated, corrupted handshake
        state is harmless — the worst a forged flood of replies can do
        is trigger an adoption, and adoption is guarded (see
        :meth:`_finalize_join`).
        """
        self._join_nonce = self.restarts
        self._join_replies = {}
        # Enough replies that f liars cannot stall the handshake, yet at
        # least f+1 so some pair *can* reach the witness threshold.
        self._join_quorum = max(
            self.config.f + 1, len(peers) - self.config.f
        )
        self.broadcast(peers, StateRequest(nonce=self._join_nonce))

    def on_state_request(self, src: str, msg: StateRequest) -> None:
        if not isinstance(msg.nonce, int):
            return
        self.send(
            src,
            StateReply(
                nonce=msg.nonce, server=self.pid, value=self.value, ts=self.ts
            ),
        )

    def on_state_reply(self, src: str, msg: StateReply) -> None:
        if self._join_nonce is None or msg.nonce != self._join_nonce:
            return  # no handshake running, or a stale/forged one
        if not self.scheme.is_label(msg.ts):
            return  # structurally invalid snapshot: not adoptable
        self._join_replies[src] = (msg.value, msg.ts)
        quorum = self._join_quorum
        if not isinstance(quorum, int) or quorum < 1:
            quorum = self.config.f + 1  # corrupted threshold: re-derive
        if len(self._join_replies) < quorum:
            return
        self._finalize_join()

    def _finalize_join(self) -> None:
        """Adopt the best witnessed peer snapshot; end the handshake.

        Adoption obeys the same ≺-monotonicity rule as WRITE: the winner
        is taken only if it strictly follows the current timestamp. A
        write adopted *during* the handshake must not be rolled back by
        the snapshot — otherwise a single rejoined server plus ``f``
        stale-but-honest reporters could resurrect an overwritten value
        (the replay-rollback hazard of tests/core/test_design_deviations).
        When the current state is corrupted garbage the guard sometimes
        refuses a genuine snapshot too; that leaves the joiner exactly as
        corrupted as a corruption-wave victim, which stabilization
        already absorbs.
        """
        winner = adopt_snapshot(self._join_replies, self.scheme, self.config.f)
        self._join_nonce = None
        self._join_replies = {}
        self._join_quorum = 0
        if winner is None:
            return
        if not self.scheme.precedes(self.ts, winner[1]):
            return
        self.value, self.ts = winner
        # A fresh boot has no verified history window; replies built from
        # a scrambled window would vouch for values no write produced.
        self.old_vals = []

    # ------------------------------------------------------------------
    # transient faults
    # ------------------------------------------------------------------
    def corrupt_state(self, rng: random.Random) -> None:
        """Arbitrary (type-respecting) corruption of every local variable."""
        self.value = f"corrupt-{rng.getrandbits(24):06x}"
        self.ts = self.scheme.random_label(rng)
        window = rng.randrange(self.config.old_vals_window + 1)
        self.old_vals = [
            (
                f"corrupt-{rng.getrandbits(24):06x}",
                self.scheme.random_label(rng),
            )
            for _ in range(window)
        ]
        self.running_read = {}
        if rng.random() < 0.5:
            # Sometimes the corrupted bookkeeping names phantom readers.
            for _ in range(rng.randrange(3)):
                self.running_read[f"ghost{rng.randrange(8)}"] = rng.randrange(
                    self.config.read_label_count
                )
        # The churn handshake fields corrupt like any other state: the
        # server may wake believing it is mid-transfer, with arbitrary
        # collected snapshots and a nonsense threshold. The handlers
        # tolerate every shape (no gate to wedge, adoption is guarded).
        self._join_nonce = rng.randrange(8) if rng.random() < 0.3 else None
        self._join_quorum = rng.randrange(self.config.n + 2)
        self._join_replies = {}
        for _ in range(rng.randrange(3)):
            self._join_replies[f"ghost{rng.randrange(8)}"] = (
                f"corrupt-{rng.getrandbits(24):06x}",
                self.scheme.random_label(rng),
            )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[Any, Any]:
        """Current (value, ts) pair — used by the write-propagation census."""
        return (self.value, self.ts)
