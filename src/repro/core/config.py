"""System configuration and derived quorum arithmetic.

All protocol thresholds live here so every module quotes the same numbers:

* ``reply_quorum = n - f`` — both operations proceed on ``n - f`` answers;
* ``ack_quorum = 2f + 1`` — acknowledgements a write needs (Figure 1);
* ``witness_threshold = 2f + 1`` — WTsG node weight a read needs;
* the resilience requirement ``n >= 5f + 1`` (Theorem 2), with an explicit
  opt-out used only by the Theorem 1 lower-bound experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.labels.base import LabelingScheme


@dataclass
class SystemConfig:
    """Static parameters of one register deployment.

    Attributes:
        n: number of servers.
        f: upper bound on Byzantine servers.
        scheme: the labeling scheme timestamping writes. ``None`` lets
            :class:`~repro.core.register.RegisterSystem` build the default
            Alon et al. scheme with ``k = n + 1`` (the writer computes
            ``next`` over at most ``n`` gathered timestamps plus its own
            last one).
        read_label_count: size of each reader's bounded read-label set
            (the ``k`` columns of ``recent_labels``); 3 suffices (current,
            previous, spare) and larger values only speed up label search.
        old_vals_window: length of each server's sliding ``old_vals``
            history. The paper stores the last ``n`` writes; Assumption 2
            (write quiescence) requires bursts no longer than this window.
        enforce_resilience: when True (default), reject ``n <= 5f``.
            Lower-bound and sweep experiments set False deliberately.
        enable_union_graph: ablation toggle (E9). When False the reader
            skips the union-WTsG fallback and aborts whenever the local
            graph has no qualified node — isolating how much the
            ``old_vals`` histories rescue reads concurrent with writes.
        enable_flush: ablation toggle (E9). When False ``find_read_label``
            returns immediately without the FLUSH handshake (every server
            is optimistically safe) — exposing the stale-reply confusions
            the handshake exists to prevent.
    """

    n: int
    f: int
    scheme: Optional[LabelingScheme] = None
    read_label_count: int = 3
    old_vals_window: Optional[int] = None
    enforce_resilience: bool = True
    enable_union_graph: bool = True
    enable_flush: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"need at least one server, got n={self.n}")
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if self.enforce_resilience and self.n < 5 * self.f + 1:
            raise ConfigurationError(
                f"stabilizing BFT regular register requires n >= 5f + 1 "
                f"(Theorem 2); got n={self.n}, f={self.f}. Pass "
                f"enforce_resilience=False only for lower-bound experiments."
            )
        if self.read_label_count < 2:
            raise ConfigurationError(
                f"readers need at least two labels to alternate, got "
                f"{self.read_label_count}"
            )
        if self.old_vals_window is None:
            self.old_vals_window = self.n
        if self.old_vals_window < 1:
            raise ConfigurationError(
                f"old_vals window must be >= 1, got {self.old_vals_window}"
            )

    # ------------------------------------------------------------------
    # derived quorums
    # ------------------------------------------------------------------
    @property
    def reply_quorum(self) -> int:
        """Answers awaited by both phases of both operations: ``n - f``."""
        return self.n - self.f

    @property
    def ack_quorum(self) -> int:
        """Acknowledgements a write needs: ``2f + 1``."""
        return 2 * self.f + 1

    @property
    def witness_threshold(self) -> int:
        """WTsG node weight a read needs: ``2f + 1``."""
        return 2 * self.f + 1

    @property
    def server_ids(self) -> list[str]:
        """Canonical server pids: ``s0 .. s{n-1}``."""
        return [f"s{i}" for i in range(self.n)]

    def describe(self) -> str:
        return (
            f"n={self.n}, f={self.f}, reply_quorum={self.reply_quorum}, "
            f"ack_quorum={self.ack_quorum}, witnesses={self.witness_threshold}, "
            f"window={self.old_vals_window}, read_labels={self.read_label_count}"
        )
