"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments``                 — list the experiment catalogue;
* ``run E3 [E7 ...] [--jobs N]``  — regenerate chosen experiment tables;
* ``reproduce-all [--jobs N]``    — regenerate every table (E1-E13);
* ``demo``                        — the quickstart scenario, narrated;
* ``profile E2 [--out p.pstats]`` — cProfile an experiment, optionally
  dumping raw pstats for flamegraph tooling;
* ``fuzz [--jobs N]``             — random hostile schedules, Jepsen-style;
* ``check --seed N --ops K``      — run a random concurrent workload under
  full corruption and print the pseudo-stabilization verdict (a one-shot
  confidence check on any machine);
* ``lint [--format json]``        — the determinism & stabilization-
  soundness static analysis (see :mod:`repro.analysis` and
  ``docs/ANALYSIS.md``); exits 1 on any non-baselined finding.

``--jobs`` fans independent trials over a process pool; every sweep's
output is byte-identical to the serial run (see
:mod:`repro.harness.parallel`).

``--trace {off,stats,full}`` (demo, check, fuzz) sets the observability
level: ``off`` drops all message accounting for maximum throughput,
``stats`` (default) keeps the per-type/per-process counters, ``full``
additionally records every network event (``demo --trace full`` prints a
sequence chart). Verdicts are identical at every level.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence


def _cmd_experiments(_: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS

    for name in sorted(ALL_EXPERIMENTS, key=lambda s: int(s[1:])):
        mod = ALL_EXPERIMENTS[name]
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"{name:4s} {doc}")
    return 0


def _run_experiment(mod, jobs: int):
    """Invoke ``mod.run``, forwarding ``jobs`` when the sweep supports it.

    Sweeps that fan trials out (E3, E9, E10) accept a ``jobs`` kwarg;
    the rest run serially regardless, so ``--jobs`` is always safe.
    """
    import inspect

    if jobs > 1 and "jobs" in inspect.signature(mod.run).parameters:
        return mod.run(jobs=jobs)
    return mod.run()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS

    from repro.harness.profiling import wall_clock

    status = 0
    for name in args.experiment:
        key = name.upper()
        mod = ALL_EXPERIMENTS.get(key)
        if mod is None:
            print(f"unknown experiment {name!r}; try `experiments`", file=sys.stderr)
            status = 2
            continue
        start = wall_clock()
        report = _run_experiment(mod, args.jobs)
        if args.csv:
            print(report.to_csv(), end="")
        else:
            print(report.table())
            print(f"  [{key} regenerated in {wall_clock() - start:.1f}s]\n")
    return status


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS

    from repro.harness.profiling import wall_clock

    total = wall_clock()
    for name in sorted(ALL_EXPERIMENTS, key=lambda s: int(s[1:])):
        start = wall_clock()
        report = _run_experiment(ALL_EXPERIMENTS[name], args.jobs)
        print(report.table())
        print(f"  [{name} regenerated in {wall_clock() - start:.1f}s]\n")
    print(f"all experiments regenerated in {wall_clock() - total:.1f}s")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import RegisterSystem, SystemConfig
    from repro.spec import evaluate_stabilization

    config = SystemConfig(n=6, f=1)
    system = RegisterSystem(config, seed=2026, n_clients=3, trace=args.trace)
    print(f"deployed: {config.describe()}")
    system.write_sync("c0", "hello world")
    print("c1 reads:", system.read_sync("c1"))
    print("corrupting every replica and client...")
    system.corrupt_servers()
    system.corrupt_clients()
    fault_time = system.env.now
    print("post-fault read:", system.read_sync("c2"))
    system.write_sync("c0", "recovered!")
    print("c1 reads:", system.read_sync("c1"))
    report = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=fault_time
    )
    print(report.summary())
    if args.trace == "full":
        from repro.sim.visualize import render_sequence_chart

        print()
        print(render_sequence_chart(system.env.network.trace, limit=30))
    return 0 if report.stabilized else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.profiling import profile_callable, profile_to_file

    mod = ALL_EXPERIMENTS.get(args.experiment.upper())
    if mod is None:
        print(
            f"unknown experiment {args.experiment!r}; try `experiments`",
            file=sys.stderr,
        )
        return 2
    if args.out:
        result = profile_to_file(mod.run, args.out, top=args.top)
        print(result.table(limit=args.top))
        print(f"raw pstats written to {args.out}")
    else:
        result = profile_callable(mod.run)
        print(result.table(limit=args.top))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.harness.fuzz import fuzz

    report = fuzz(
        trials=args.trials,
        n=args.n,
        f=args.f,
        master_seed=args.seed,
        stop_at_first=args.stop_at_first,
        jobs=args.jobs,
        trace=args.trace,
    )
    print(report.summary())
    for witness in report.witnesses[: args.show]:
        print(f"\n{witness.kind}: {witness.detail}")
        print(f"  recipe: {witness.recipe}")
    at_bound = args.n >= 5 * args.f + 1
    if at_bound and not report.clean:
        print(
            "\nWITNESS AT n >= 5f+1: this is a bug — the recipe above "
            "replays it deterministically.",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core import RegisterSystem, SystemConfig
    from repro.spec import evaluate_stabilization
    from repro.workloads import mixed_scripts, run_scripts

    system = RegisterSystem(
        SystemConfig(n=5 * args.f + 1, f=args.f),
        seed=args.seed,
        n_clients=args.clients,
        trace=args.trace,
    )
    system.corrupt_servers()
    system.corrupt_clients()
    scripts = mixed_scripts(
        list(system.clients),
        random.Random(args.seed),
        ops_per_client=args.ops,
    )
    run_scripts(system, scripts)
    report = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=0.0
    )
    print(
        f"seed={args.seed} f={args.f} clients={args.clients} "
        f"ops/client={args.ops}: {report.summary()}"
    )
    return 0 if report.stabilized else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        analyze_paths,
        apply_baseline,
        default_target,
        load_baseline,
        render_json,
        render_rule_list,
        render_text,
        write_baseline,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    targets = [Path(p) for p in args.paths] or [default_target()]
    findings = analyze_paths(targets)

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        if baseline_path is None:
            print("--write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        write_baseline(findings, baseline_path)
        print(f"baseline of {len(findings)} finding(s) written to {baseline_path}")
        return 0

    baselined = 0
    if baseline_path is not None:
        findings, matched = apply_baseline(findings, load_baseline(baseline_path))
        baselined = len(matched)

    render = render_json if args.format == "json" else render_text
    print(render(findings, baselined=baselined))
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stabilizing BFT storage — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list the experiment catalogue")

    jobs_help = (
        "worker processes for trial fan-out (default 1 = serial; "
        "0 = all CPUs). Results are identical for every value."
    )

    run = sub.add_parser("run", help="regenerate chosen experiment tables")
    run.add_argument("experiment", nargs="+", help="e.g. E1 E3 E8")
    run.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    run.add_argument("--jobs", type=int, default=1, help=jobs_help)

    trace_help = (
        "observability level: off (fastest), stats (message counters; "
        "default), full (counters + per-event trace records)"
    )

    rall = sub.add_parser("reproduce-all", help="regenerate every table")
    rall.add_argument("--jobs", type=int, default=1, help=jobs_help)
    demo = sub.add_parser("demo", help="narrated quickstart scenario")
    demo.add_argument(
        "--trace", choices=("off", "stats", "full"), default="stats",
        help=trace_help,
    )

    profile = sub.add_parser(
        "profile", help="profile one experiment (cProfile, top hot spots)"
    )
    profile.add_argument("experiment", help="e.g. E2")
    profile.add_argument("--top", type=int, default=15)
    profile.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also dump raw pstats for flamegraph tools (snakeviz, flameprof)",
    )

    check = sub.add_parser(
        "check", help="random corrupted workload + stabilization verdict"
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--f", type=int, default=1)
    check.add_argument("--clients", type=int, default=3)
    check.add_argument("--ops", type=int, default=6)
    check.add_argument(
        "--trace", choices=("off", "stats", "full"), default="stats",
        help=trace_help,
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="hunt for violations with random hostile schedules (Jepsen-style)",
    )
    fuzz.add_argument("--trials", type=int, default=100)
    fuzz.add_argument("--n", type=int, default=6)
    fuzz.add_argument("--f", type=int, default=1)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--show", type=int, default=3, help="witnesses to print")
    fuzz.add_argument("--stop-at-first", action="store_true")
    fuzz.add_argument("--jobs", type=int, default=1, help=jobs_help)
    fuzz.add_argument(
        "--trace", choices=("off", "stats", "full"), default="stats",
        help=trace_help,
    )

    lint = sub.add_parser(
        "lint",
        help="determinism & stabilization-soundness static analysis",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of grandfathered findings to subtract",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "reproduce-all": _cmd_reproduce_all,
        "demo": _cmd_demo,
        "profile": _cmd_profile,
        "check": _cmd_check,
        "fuzz": _cmd_fuzz,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
