"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments``                 — list the experiment catalogue;
* ``run E3 [E7 ...] [--jobs N]``  — regenerate chosen experiment tables;
* ``reproduce-all [--jobs N]``    — regenerate every table (E1-E13);
* ``demo``                        — the quickstart scenario, narrated;
* ``profile E2 [--out p.pstats]`` — cProfile an experiment, optionally
  dumping raw pstats for flamegraph tooling;
* ``fuzz [--jobs N]``             — random hostile schedules, Jepsen-style;
  ``--shrink`` delta-debugs every witness to a locally minimal
  reproducer, ``--witness-out p.json`` archives the (shrunk) witnesses;
* ``chaos [--preset smoke]``      — nemesis campaigns: composable
  partition / crash–restart / corruption-wave / storm / surge plans with
  an online invariant monitor and watchdog forensics (``docs/CHAOS.md``);
* ``shrink WITNESS.json``         — shrink an archived fuzz witness or
  chaos plan to a locally minimal failing reproducer;
* ``check --seed N --ops K``      — run a random concurrent workload under
  full corruption and print the pseudo-stabilization verdict (a one-shot
  confidence check on any machine);
* ``lint [--format json]``        — the determinism & stabilization-
  soundness static analysis (see :mod:`repro.analysis` and
  ``docs/ANALYSIS.md``); exits 1 on any non-baselined finding;
* ``serve SID``                   — host one register server (correct or
  ``--byzantine STRATEGY``) on a real socket until interrupted;
* ``loadgen``                     — boot a live loopback cluster (or dial
  ``--servers``), drive a closed-loop mixed workload, judge the captured
  history with the regularity checker, write ``BENCH_live.json``
  (``docs/LIVE.md``);
* ``fabric``                      — the sharded KV fabric
  (``docs/FABRIC.md``): ``fabric loadgen`` scales register groups out
  across OS processes behind the consistent-hash router and writes
  ``BENCH_fabric.json``; ``fabric chaos`` aims a nemesis at one shard
  and gates on blast-radius containment; ``fabric serve`` hosts a
  fabric and prints its topology until interrupted.

``--jobs`` fans independent trials over a process pool; every sweep's
output is byte-identical to the serial run (see
:mod:`repro.harness.parallel`).

``--trace {off,stats,full}`` (demo, check, fuzz) sets the observability
level: ``off`` drops all message accounting for maximum throughput,
``stats`` (default) keeps the per-type/per-process counters, ``full``
additionally records every network event (``demo --trace full`` prints a
sequence chart). Verdicts are identical at every level.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence


def _cmd_experiments(_: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS

    for name in sorted(ALL_EXPERIMENTS, key=lambda s: int(s[1:])):
        mod = ALL_EXPERIMENTS[name]
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"{name:4s} {doc}")
    return 0


def _run_experiment(mod, jobs: int):
    """Invoke ``mod.run``, forwarding ``jobs`` when the sweep supports it.

    Sweeps that fan trials out (E3, E9, E10) accept a ``jobs`` kwarg;
    the rest run serially regardless, so ``--jobs`` is always safe.
    """
    import inspect

    if jobs > 1 and "jobs" in inspect.signature(mod.run).parameters:
        return mod.run(jobs=jobs)
    return mod.run()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS

    from repro.harness.profiling import wall_clock

    status = 0
    for name in args.experiment:
        key = name.upper()
        mod = ALL_EXPERIMENTS.get(key)
        if mod is None:
            print(f"unknown experiment {name!r}; try `experiments`", file=sys.stderr)
            status = 2
            continue
        start = wall_clock()
        report = _run_experiment(mod, args.jobs)
        if args.csv:
            print(report.to_csv(), end="")
        else:
            print(report.table())
            print(f"  [{key} regenerated in {wall_clock() - start:.1f}s]\n")
    return status


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS

    from repro.harness.profiling import wall_clock

    total = wall_clock()
    for name in sorted(ALL_EXPERIMENTS, key=lambda s: int(s[1:])):
        start = wall_clock()
        report = _run_experiment(ALL_EXPERIMENTS[name], args.jobs)
        print(report.table())
        print(f"  [{name} regenerated in {wall_clock() - start:.1f}s]\n")
    print(f"all experiments regenerated in {wall_clock() - total:.1f}s")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import RegisterSystem, SystemConfig
    from repro.spec import evaluate_stabilization

    config = SystemConfig(n=6, f=1)
    system = RegisterSystem(config, seed=2026, n_clients=3, trace=args.trace)
    print(f"deployed: {config.describe()}")
    system.write_sync("c0", "hello world")
    print("c1 reads:", system.read_sync("c1"))
    print("corrupting every replica and client...")
    system.corrupt_servers()
    system.corrupt_clients()
    fault_time = system.env.now
    print("post-fault read:", system.read_sync("c2"))
    system.write_sync("c0", "recovered!")
    print("c1 reads:", system.read_sync("c1"))
    report = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=fault_time
    )
    print(report.summary())
    if args.trace == "full":
        from repro.sim.visualize import render_sequence_chart

        print()
        print(render_sequence_chart(system.env.network.trace, limit=30))
    return 0 if report.stabilized else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.profiling import profile_callable, profile_to_file

    mod = ALL_EXPERIMENTS.get(args.experiment.upper())
    if mod is None:
        print(
            f"unknown experiment {args.experiment!r}; try `experiments`",
            file=sys.stderr,
        )
        return 2
    if args.out:
        result = profile_to_file(mod.run, args.out, top=args.top)
        print(result.table(limit=args.top))
        print(f"raw pstats written to {args.out}")
    else:
        result = profile_callable(mod.run)
        print(result.table(limit=args.top))
    return 0


def _write_json(path: str, payload) -> None:
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.harness.fuzz import fuzz, witness_to_dict

    report = fuzz(
        trials=args.trials,
        n=args.n,
        f=args.f,
        master_seed=args.seed,
        stop_at_first=args.stop_at_first,
        jobs=args.jobs,
        trace=args.trace,
    )
    print(report.summary())
    witnesses = report.witnesses
    if args.shrink and witnesses:
        from repro.chaos.shrink import shrink_witness

        shrunk = []
        for witness in witnesses:
            result = shrink_witness(witness, budget=args.shrink_budget)
            print(f"  {witness.kind}: {result.summary()}")
            shrunk.append(
                replace(
                    witness,
                    recipe=result.shrunk,
                    kind=result.kind,
                    detail=result.detail,
                )
            )
        witnesses = shrunk
    for witness in witnesses[: args.show]:
        print(f"\n{witness.kind}: {witness.detail}")
        print(f"  recipe: {witness.recipe}")
    if args.witness_out and witnesses:
        _write_json(args.witness_out, [witness_to_dict(w) for w in witnesses])
        print(f"\n{len(witnesses)} witness(es) written to {args.witness_out}")
    at_bound = args.n >= 5 * args.f + 1
    if at_bound and not report.clean:
        print(
            "\nWITNESS AT n >= 5f+1: this is a bug — the recipe above "
            "replays it deterministically.",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import PRESETS, chaos_campaign

    settings = dict(PRESETS[args.preset]) if args.preset else {}
    for key in ("trials", "n", "f"):
        value = getattr(args, key)
        if value is not None:
            settings[key] = value
    settings.setdefault("trials", 50)
    settings.setdefault("n", 6)
    settings.setdefault("f", 1)
    report = chaos_campaign(
        master_seed=args.seed,
        jobs=args.jobs,
        trace=args.trace,
        max_nemeses=args.max_nemeses,
        stop_at_first=args.stop_at_first,
        **settings,
    )
    print(report.summary())
    for outcome in report.witnesses[: args.show]:
        print(f"\n{outcome.kind}: {outcome.detail}")
        print(f"  plan: {outcome.plan}")
    if args.witness_out and report.witnesses:
        _write_json(
            args.witness_out, [w.to_dict() for w in report.witnesses]
        )
        print(
            f"\n{len(report.witnesses)} witness(es) written to "
            f"{args.witness_out}"
        )
    status = 0
    at_bound = settings["n"] >= 5 * settings["f"] + 1
    # Churn/mobility campaigns deliberately leave the paper's model
    # (fixed membership, pinned Byzantine identities), where `stuck` at
    # the bound is the charted boundary, not a bug: an operation
    # straddling a churn-window edge loses both the departed and the
    # not-yet-rejoined server, and one straddling a relocation sees a
    # per-lifetime union of Byzantine hosts larger than f. Safety kinds
    # (violation, not-stabilized) still gate — those are bugs anywhere.
    beyond_model = any(
        fam in ("churn", "mobile") for fam in settings.get("families", ())
    )
    gating = [
        w
        for w in report.witnesses
        if not (beyond_model and w.kind == "stuck")
    ]
    if at_bound and report.witnesses and not gating:
        print(
            "\nstuck witnesses at n >= 5f+1 under churn/mobility are the "
            "resilience boundary this campaign charts (see E15), not a "
            "bug; a safety witness would still fail the run."
        )
    if at_bound and gating:
        print(
            "\nWITNESS AT n >= 5f+1: this is a bug — the plan above "
            "replays it deterministically.",
            file=sys.stderr,
        )
        status = 1
    if args.map_out:
        from repro.harness.experiments.e15_resilience_map import (
            render_map,
            resilience_map,
        )

        map_data = resilience_map(
            seed=args.seed, small=True, jobs=args.jobs
        )
        _write_json(args.map_out, map_data)
        print(f"\nresilience map written to {args.map_out}")
        print(render_map(map_data).table())
        surprises = [
            c for c in map_data["cells"] if not c["matches_expectation"]
        ]
        if surprises:
            print(
                f"\n{len(surprises)} cell(s) off the expected boundary — "
                "see the map JSON for the witnesses.",
                file=sys.stderr,
            )
            status = 1
    return status


def _cmd_shrink(args: argparse.Namespace) -> int:
    """Shrink an archived witness: dispatch on its ``format`` tag."""
    import json
    from pathlib import Path

    from repro.chaos.engine import WITNESS_FORMAT as CHAOS_WITNESS_FORMAT
    from repro.chaos.plan import PLAN_FORMAT, plan_from_dict, plan_to_dict
    from repro.chaos.shrink import shrink_plan, shrink_witness
    from repro.harness.fuzz import (
        RECIPE_FORMAT,
        WITNESS_FORMAT,
        Witness,
        recipe_from_dict,
        recipe_to_dict,
        run_trial,
        witness_from_dict,
        witness_to_dict,
    )

    data = json.loads(Path(args.witness).read_text())
    if isinstance(data, list):
        if not data:
            print("empty witness file", file=sys.stderr)
            return 2
        if len(data) > 1:
            print(f"note: file holds {len(data)} witnesses; shrinking the first")
        data = data[0]
    fmt = data.get("format")
    match_kind = not args.any_kind

    if fmt == WITNESS_FORMAT:
        result = shrink_witness(
            witness_from_dict(data),
            budget=args.budget,
            match_kind=match_kind,
        )
        out = witness_to_dict(
            Witness(recipe=result.shrunk, kind=result.kind, detail=result.detail)
        )
    elif fmt and fmt.startswith(RECIPE_FORMAT.rsplit("/", 1)[0]):
        recipe = recipe_from_dict(data)
        witness = run_trial(recipe, trace="off")
        if witness is None:
            print("recipe does not fail — nothing to shrink", file=sys.stderr)
            return 1
        result = shrink_witness(
            witness, budget=args.budget, match_kind=match_kind
        )
        out = recipe_to_dict(result.shrunk)
    elif fmt == CHAOS_WITNESS_FORMAT or fmt == PLAN_FORMAT:
        plan = plan_from_dict(data["plan"] if fmt == CHAOS_WITNESS_FORMAT else data)
        try:
            result = shrink_plan(
                plan, budget=args.budget, match_kind=match_kind
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        out = {
            "format": CHAOS_WITNESS_FORMAT,
            "kind": result.kind,
            "detail": result.detail,
            "forensics": None,
            "plan": plan_to_dict(result.shrunk),
        }
    else:
        print(f"unknown witness format: {fmt!r}", file=sys.stderr)
        return 2

    print(result.summary())
    print(f"{result.kind}: {result.detail}")
    print(f"  reproducer: {result.shrunk}")
    if args.out:
        _write_json(args.out, out)
        print(f"shrunk witness written to {args.out}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core import RegisterSystem, SystemConfig
    from repro.spec import evaluate_stabilization
    from repro.workloads import mixed_scripts, run_scripts

    system = RegisterSystem(
        SystemConfig(n=5 * args.f + 1, f=args.f),
        seed=args.seed,
        n_clients=args.clients,
        trace=args.trace,
    )
    system.corrupt_servers()
    system.corrupt_clients()
    scripts = mixed_scripts(
        list(system.clients),
        random.Random(args.seed),
        ops_per_client=args.ops,
    )
    run_scripts(system, scripts)
    report = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=0.0
    )
    print(
        f"seed={args.seed} f={args.f} clients={args.clients} "
        f"ops/client={args.ops}: {report.summary()}"
    )
    return 0 if report.stabilized else 1


def _changed_python_files() -> Optional[list]:
    """Repo-relative ``.py`` files touched vs HEAD (plus untracked ones),
    or None when git is unavailable — ``repro lint --changed``."""
    import subprocess
    from pathlib import Path

    def _git(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True
        ).stdout

    try:
        top = Path(_git("rev-parse", "--show-toplevel").strip())
        changed = _git(
            "diff", "--name-only", "-z", "--diff-filter=d", "HEAD", "--", "*.py"
        )
        untracked = _git(
            "ls-files", "--others", "--exclude-standard", "-z", "--", "*.py"
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names = set(changed.split("\0")) | set(untracked.split("\0"))
    return sorted(
        top / name
        for name in names
        if name.endswith(".py") and (top / name).is_file()
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        analyze_modules,
        apply_baseline,
        build_model,
        default_target,
        load_baseline,
        load_model_cache,
        load_modules,
        model_cache_key,
        render_github,
        render_json,
        render_rule_list,
        render_text,
        save_model_cache,
        write_baseline,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    if args.changed:
        changed = _changed_python_files()
        if changed is None:
            print("--changed requires a git checkout", file=sys.stderr)
            return 2
        if args.paths:  # optional scope filter on top of the diff
            scopes = [Path(p).resolve() for p in args.paths]
            changed = [
                path
                for path in changed
                if any(
                    path.resolve().is_relative_to(scope) for scope in scopes
                )
            ]
        targets = changed
        if not targets:
            print("clean: no changed python files")
            return 0
    else:
        targets = [Path(p) for p in args.paths] or [default_target()]

    modules = load_modules(targets)
    model = None
    if args.model_cache:
        # Phase-1 artifact cache: keyed on a hash of every analyzed
        # source, so any edit (or a different file set) rebuilds.
        cache_path = Path(args.model_cache)
        key = model_cache_key(modules)
        model = load_model_cache(cache_path, key)
        if model is None:
            model = build_model(modules)
            save_model_cache(cache_path, key, model)
    findings = analyze_modules(modules, model=model)

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        if baseline_path is None:
            print("--write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        write_baseline(findings, baseline_path)
        print(f"baseline of {len(findings)} finding(s) written to {baseline_path}")
        return 0

    baselined = 0
    if baseline_path is not None:
        findings, matched = apply_baseline(findings, load_baseline(baseline_path))
        baselined = len(matched)

    if args.format == "github":
        cwd = Path.cwd()
        pathmap = {}
        for module in modules:
            if module.srcpath is None:
                continue
            try:
                display = module.srcpath.resolve().relative_to(cwd)
            except ValueError:
                display = module.srcpath
            pathmap[module.relpath] = display.as_posix()
        print(render_github(findings, baselined=baselined, pathmap=pathmap))
    else:
        render = render_json if args.format == "json" else render_text
        print(render(findings, baselined=baselined))
    return 1 if findings else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.byzantine.strategies import STRATEGY_ZOO
    from repro.core.config import SystemConfig
    from repro.net import ServerDaemon

    config = SystemConfig(n=args.n, f=args.f)
    if args.sid not in config.server_ids:
        print(
            f"unknown server id {args.sid!r} for n={args.n} "
            f"(expected one of {config.server_ids})",
            file=sys.stderr,
        )
        return 2
    factory = None
    if args.byzantine:
        cls = STRATEGY_ZOO.get(args.byzantine)
        if cls is None:
            print(
                f"unknown strategy {args.byzantine!r}; "
                f"known: {sorted(STRATEGY_ZOO)}",
                file=sys.stderr,
            )
            return 2
        factory = cls

    async def serve() -> None:
        daemon = ServerDaemon(
            args.sid,
            config,
            address=args.address,
            factory=factory,
            seed=args.seed,
            wire=args.wire,
        )
        address = await daemon.start()
        role = args.byzantine or "correct"
        print(f"{args.sid} ({role}) listening on {address}", flush=True)
        try:
            await asyncio.Event().wait()  # until interrupted
        finally:
            await daemon.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted; shut down cleanly")
    return 0


#: Offered-rate ladder used by bare ``--sweep`` (ops/s). Geometric, wide
#: enough to bracket the saturation knee on anything from a laptop to CI.
DEFAULT_SWEEP_RATES = (250.0, 500.0, 1000.0, 2000.0, 4000.0)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.byzantine.strategies import STRATEGY_ZOO
    from repro.core.config import SystemConfig
    from repro.net import (
        FaultPolicy,
        LiveRegisterCluster,
        benchmark,
        install_event_loop,
        saturation_sweep,
    )

    config = SystemConfig(n=args.n, f=args.f)
    if args.open_loop and args.rate is None and not args.sweep:
        print("--open-loop needs --rate (or --sweep)", file=sys.stderr)
        return 2

    sweep_rates = None
    if args.sweep:
        if args.sweep == "auto":
            sweep_rates = list(DEFAULT_SWEEP_RATES)
        else:
            try:
                sweep_rates = [float(r) for r in args.sweep.split(",") if r]
            except ValueError:
                print(f"bad --sweep {args.sweep!r} (want R1,R2,...)", file=sys.stderr)
                return 2
        if len(sweep_rates) < 2:
            print("--sweep needs at least two rates", file=sys.stderr)
            return 2

    byzantine = None
    if args.byzantine:
        cls = STRATEGY_ZOO.get(args.byzantine)
        if cls is None:
            print(
                f"unknown strategy {args.byzantine!r}; "
                f"known: {sorted(STRATEGY_ZOO)}",
                file=sys.stderr,
            )
            return 2
        sid = args.byzantine_server or config.server_ids[-1]
        byzantine = {sid: cls}

    external = None
    if args.servers:
        external = {}
        for item in args.servers.split(","):
            sid, sep, address = item.partition("=")
            if not sep:
                print(f"bad --servers entry {item!r} (want SID=ADDR)", file=sys.stderr)
                return 2
            external[sid] = address

    policy = None
    if args.proxy_loss or args.proxy_delay or args.proxy_jitter or args.proxy_duplication:
        policy = FaultPolicy(
            loss=args.proxy_loss,
            duplication=args.proxy_duplication,
            delay=args.proxy_delay,
            jitter=args.proxy_jitter,
        )

    from repro.net.transport import DEFAULT_FLUSH_WATERMARK

    watermark = (
        args.flush_watermark
        if args.flush_watermark is not None
        else DEFAULT_FLUSH_WATERMARK
    )

    def make_cluster() -> "LiveRegisterCluster":
        return LiveRegisterCluster(
            config,
            n_clients=args.clients,
            seed=args.seed,
            byzantine=byzantine,
            family=args.family,
            socket_dir=args.socket_dir,
            proxy_policy=policy,
            op_timeout=args.op_timeout,
            external_servers=external,
            wire=args.wire,
            flush_watermark=watermark,
        )

    mode = "open" if (args.open_loop and args.rate is not None) else "closed"

    async def run() -> dict:
        sweep = None
        if sweep_rates is not None:
            sweep = saturation_sweep(
                make_cluster,
                sweep_rates,
                duration=args.sweep_duration,
                warmup=min(args.warmup, 0.5),
                read_fraction=args.read_fraction,
                seed=args.seed,
            )
        cluster = make_cluster()
        async with cluster:
            return await benchmark(
                cluster,
                duration=args.duration,
                warmup=args.warmup,
                read_fraction=args.read_fraction,
                seed=args.seed,
                mode=mode,
                rate=args.rate,
                sweep=sweep,
            )

    try:
        runtime = install_event_loop(args.loop)
    except ImportError:
        print(
            "uvloop requested but not installed (pip install 'repro[perf]')",
            file=sys.stderr,
        )
        return 2
    bench = asyncio.run(run())
    bench["runtime"] = runtime
    load, verdict = bench["load"], bench["verdict"]
    print(
        f"n={args.n} f={args.f} clients={args.clients} "
        f"byzantine={sorted(bench['config']['byzantine']) or 'none'} "
        f"proxied={bench['config']['proxied']} "
        f"wire={bench['wire']} loop={runtime} mode={mode}"
    )
    print(
        f"  {load['ops_per_s']:.1f} ops/s over {load['duration_s']:.2f}s "
        f"({load['reads']} reads, {load['writes']} writes, "
        f"{load['aborts']} aborts, {load['timeouts']} timeouts)"
    )
    for kind in ("read", "write"):
        lat = load[f"{kind}_latency_s"]
        if lat["count"]:
            print(
                f"  {kind:5s} p50={lat['p50'] * 1e3:.2f}ms "
                f"p95={lat['p95'] * 1e3:.2f}ms p99={lat['p99'] * 1e3:.2f}ms "
                f"max={lat['max'] * 1e3:.2f}ms"
            )
    print(
        f"  regularity: {'CLEAN' if verdict['clean'] else 'VIOLATIONS'} "
        f"({verdict['checked_reads']} reads checked, "
        f"{verdict['violations']} violations)"
    )
    if bench.get("sweep"):
        print("  saturation sweep (open loop, fresh cluster per point):")
        print(
            "    offered    achieved   read p50/p99 ms    "
            "write p50/p99 ms   verdict"
        )
        for pt in bench["sweep"]:
            print(
                f"    {pt['offered_ops_per_s']:8.0f} "
                f"{pt['ops_per_s']:10.1f} "
                f"{pt['read_p50_s'] * 1e3:8.2f}/{pt['read_p99_s'] * 1e3:<8.2f} "
                f"{pt['write_p50_s'] * 1e3:8.2f}/{pt['write_p99_s'] * 1e3:<8.2f} "
                f"{'CLEAN' if pt['clean'] else 'VIOLATIONS'}"
            )
    if args.out:
        _write_json(args.out, bench)
        print(f"  benchmark written to {args.out}")
    if not verdict["clean"]:
        return 1
    if args.min_ops_per_s and load["ops_per_s"] < args.min_ops_per_s:
        print(
            f"throughput {load['ops_per_s']:.1f} ops/s below floor "
            f"{args.min_ops_per_s}",
            file=sys.stderr,
        )
        return 1
    return 0


def _shard_ladder(shards: int) -> list[int]:
    """The --sweep shard counts: powers of two up to ``shards``, plus
    ``shards`` itself (1, 2, 4, ... k)."""
    ladder = []
    k = 1
    while k < shards:
        ladder.append(k)
        k *= 2
    ladder.append(shards)
    return ladder


def _cmd_fabric(args: argparse.Namespace) -> int:
    import asyncio

    from repro.fabric import (
        FabricClient,
        FabricSupervisor,
        ShardNemesis,
        fabric_scaleout,
        run_targeted_chaos,
    )
    from repro.net import install_event_loop

    try:
        runtime = install_event_loop(args.loop)
    except ImportError:
        print(
            "uvloop requested but not installed (pip install 'repro[perf]')",
            file=sys.stderr,
        )
        return 2
    mode = "inline" if args.inline else "process"

    if args.fabric_command == "serve":
        import json

        async def serve() -> None:
            async with FabricSupervisor(
                shards=args.shards,
                n=args.n,
                f=args.f,
                seed=args.seed,
                byzantine=args.byzantine,
                proxied=args.proxied,
                wire=args.wire,
                mode=mode,
            ) as sup:
                print(json.dumps(sup.topology.to_dict(), indent=2, sort_keys=True))
                sys.stdout.flush()
                while True:
                    await asyncio.sleep(3600)

        try:
            asyncio.run(serve())
        except KeyboardInterrupt:
            pass
        return 0

    if args.fabric_command == "chaos":
        nemesis = ShardNemesis(
            target=args.target,
            kind=args.nemesis,
            start=args.start,
            length=args.length,
        )
        proxied = args.proxied or nemesis.kind == "partition"

        async def chaos() -> dict:
            async with FabricSupervisor(
                shards=args.shards,
                n=args.n,
                f=args.f,
                seed=args.seed,
                byzantine=args.byzantine,
                proxied=proxied,
                wire=args.wire,
                mode=mode,
            ) as sup:
                async with FabricClient(
                    sup.topology,
                    clients_per_shard=args.clients,
                    seed=args.seed,
                    op_timeout=args.op_timeout,
                ) as client:
                    return await run_targeted_chaos(
                        sup,
                        client,
                        nemesis,
                        rate_per_shard=args.rate_per_shard,
                        duration=args.duration,
                        warmup=args.warmup,
                        read_fraction=args.read_fraction,
                        keys=args.keys,
                        skew=args.skew,
                        zipf_s=args.zipf_s,
                        seed=args.seed,
                    )

        report = asyncio.run(chaos())
        report["runtime"] = runtime
        blast = report["blast_radius"]
        print(
            f"fabric chaos: {nemesis.kind} on {nemesis.target} "
            f"({args.shards} shards, mode={mode})"
        )
        for shard_id in sorted(report["per_shard"]):
            entry = report["per_shard"][shard_id]
            health = (
                f"stabilized={entry['stabilized']}"
                if entry["role"] == "target"
                else f"clean={entry['clean']}"
            )
            print(
                f"  {shard_id:8s} {entry['role']:9s} "
                f"{entry['reads'] + entry['writes']:5d} ops "
                f"{entry['timeouts']} timeouts  {health}"
            )
        print(
            f"  blast radius: "
            f"{'CONTAINED' if blast['contained'] else 'ESCAPED'} "
            f"(degraded: {', '.join(blast['degraded']) or 'none'})"
        )
        if args.out:
            _write_json(args.out, report)
            print(f"  report written to {args.out}")
        return 0 if blast["contained"] and blast["target_stabilized"] else 1

    # fabric loadgen
    counts = _shard_ladder(args.shards) if args.sweep else [args.shards]
    artifact = asyncio.run(
        fabric_scaleout(
            counts,
            n=args.n,
            f=args.f,
            seed=args.seed,
            byzantine=args.byzantine,
            proxied=args.proxied,
            wire=args.wire,
            mode=mode,
            clients_per_shard=args.clients,
            op_timeout=args.op_timeout,
            load_mode="closed" if args.closed else "open",
            rate_per_shard=args.rate_per_shard,
            duration=args.duration,
            warmup=args.warmup,
            read_fraction=args.read_fraction,
            keys=args.keys,
            skew=args.skew,
            zipf_s=args.zipf_s,
        )
    )
    artifact["meta"]["runtime"] = runtime
    print(
        f"fabric loadgen: n={args.n} f={args.f} per shard, mode={mode}, "
        f"skew={args.skew}, "
        f"{'closed loop' if args.closed else 'open loop'}"
    )
    print(
        "    shards    offered    achieved   read p50/p99 ms    "
        "write p50/p99 ms   verdict"
    )
    exit_code = 0
    for point in artifact["points"]:
        agg = point["aggregate"]
        read_lat = agg["read_latency_s"]
        write_lat = agg["write_latency_s"]
        print(
            f"    {point['shards']:6d} "
            f"{point['offered_ops_per_s']:10.0f} "
            f"{agg['ops_per_s']:10.1f} "
            f"{read_lat['p50'] * 1e3:8.2f}/{read_lat['p99'] * 1e3:<8.2f} "
            f"{write_lat['p50'] * 1e3:8.2f}/{write_lat['p99'] * 1e3:<8.2f} "
            f"{'CLEAN' if point['all_clean'] else 'VIOLATIONS'}"
        )
        if not point["all_clean"]:
            exit_code = 1
    top = artifact["points"][-1]["aggregate"]
    if args.min_ops_per_s and top["ops_per_s"] < args.min_ops_per_s:
        print(
            f"throughput {top['ops_per_s']:.1f} ops/s below floor "
            f"{args.min_ops_per_s}",
            file=sys.stderr,
        )
        exit_code = 1
    if args.out:
        _write_json(args.out, artifact)
        print(f"  benchmark written to {args.out}")
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stabilizing BFT storage — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list the experiment catalogue")

    jobs_help = (
        "worker processes for trial fan-out (default 1 = serial; "
        "0 = all CPUs). Results are identical for every value."
    )

    run = sub.add_parser("run", help="regenerate chosen experiment tables")
    run.add_argument("experiment", nargs="+", help="e.g. E1 E3 E8")
    run.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    run.add_argument("--jobs", type=int, default=1, help=jobs_help)

    trace_help = (
        "observability level: off (fastest), stats (message counters; "
        "default), full (counters + per-event trace records)"
    )

    rall = sub.add_parser("reproduce-all", help="regenerate every table")
    rall.add_argument("--jobs", type=int, default=1, help=jobs_help)
    demo = sub.add_parser("demo", help="narrated quickstart scenario")
    demo.add_argument(
        "--trace", choices=("off", "stats", "full"), default="stats",
        help=trace_help,
    )

    profile = sub.add_parser(
        "profile", help="profile one experiment (cProfile, top hot spots)"
    )
    profile.add_argument("experiment", help="e.g. E2")
    profile.add_argument("--top", type=int, default=15)
    profile.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also dump raw pstats for flamegraph tools (snakeviz, flameprof)",
    )

    check = sub.add_parser(
        "check", help="random corrupted workload + stabilization verdict"
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--f", type=int, default=1)
    check.add_argument("--clients", type=int, default=3)
    check.add_argument("--ops", type=int, default=6)
    check.add_argument(
        "--trace", choices=("off", "stats", "full"), default="stats",
        help=trace_help,
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="hunt for violations with random hostile schedules (Jepsen-style)",
    )
    fuzz.add_argument("--trials", type=int, default=100)
    fuzz.add_argument("--n", type=int, default=6)
    fuzz.add_argument("--f", type=int, default=1)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--show", type=int, default=3, help="witnesses to print")
    fuzz.add_argument("--stop-at-first", action="store_true")
    fuzz.add_argument("--jobs", type=int, default=1, help=jobs_help)
    fuzz.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug each witness to a locally minimal reproducer",
    )
    fuzz.add_argument(
        "--shrink-budget",
        type=int,
        default=250,
        metavar="N",
        help="validation runs allowed per witness shrink (default 250)",
    )
    fuzz.add_argument(
        "--witness-out",
        default=None,
        metavar="PATH",
        help="write the (shrunk) witnesses to PATH as a JSON array",
    )
    fuzz.add_argument(
        "--trace", choices=("off", "stats", "full"), default="stats",
        help=trace_help,
    )

    chaos = sub.add_parser(
        "chaos",
        help="nemesis campaigns with watchdog forensics (docs/CHAOS.md)",
    )
    chaos.add_argument(
        "--preset",
        choices=("smoke", "nightly", "boundary", "churn", "mobility"),
        default=None,
        help="named campaign configuration (explicit flags override it)",
    )
    chaos.add_argument("--trials", type=int, default=None)
    chaos.add_argument("--n", type=int, default=None)
    chaos.add_argument("--f", type=int, default=None)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--max-nemeses",
        type=int,
        default=3,
        help="most nemeses sampled into one plan (default 3)",
    )
    chaos.add_argument("--show", type=int, default=3, help="witnesses to print")
    chaos.add_argument("--stop-at-first", action="store_true")
    chaos.add_argument("--jobs", type=int, default=1, help=jobs_help)
    chaos.add_argument(
        "--witness-out",
        default=None,
        metavar="PATH",
        help="write witness plans + forensics to PATH as a JSON array",
    )
    chaos.add_argument(
        "--map-out",
        default=None,
        metavar="PATH",
        help="also run the E15 resilience-boundary grid (small, seeded) "
        "and write the map JSON to PATH",
    )
    chaos.add_argument(
        "--trace", choices=("off", "stats", "full"), default="stats",
        help=trace_help,
    )

    shrink = sub.add_parser(
        "shrink",
        help="shrink an archived fuzz witness / chaos plan to a minimal "
        "failing reproducer",
    )
    shrink.add_argument(
        "witness",
        help="JSON file: fuzz witness/recipe or chaos witness/plan "
        "(format tag dispatches)",
    )
    shrink.add_argument(
        "--budget",
        type=int,
        default=250,
        metavar="N",
        help="validation runs allowed (default 250)",
    )
    shrink.add_argument(
        "--any-kind",
        action="store_true",
        help="accept candidates that fail with a different kind "
        "(permits ddmin slippage; default requires the same kind)",
    )
    shrink.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the shrunk witness JSON to PATH",
    )

    serve = sub.add_parser(
        "serve", help="host one live register server on a real socket"
    )
    serve.add_argument("sid", help="server id, e.g. s0")
    serve.add_argument("--n", type=int, default=6)
    serve.add_argument("--f", type=int, default=1)
    serve.add_argument(
        "--address",
        default="tcp:127.0.0.1:0",
        help="listen address: tcp:HOST:PORT (port 0 = ephemeral) or unix:PATH",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--byzantine",
        default=None,
        metavar="STRATEGY",
        help="host a Byzantine zoo strategy instead of a correct server",
    )
    serve.add_argument(
        "--wire",
        type=int,
        choices=(1, 2),
        default=2,
        help="wire codec version spoken on every connection (default 2, "
        "the repro-wire/2 binary codec; 1 = JSON)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="live loopback cluster + closed/open-loop load + regularity "
        "verdict (+ saturation sweep)",
    )
    loadgen.add_argument("--n", type=int, default=6)
    loadgen.add_argument("--f", type=int, default=1)
    loadgen.add_argument("--clients", type=int, default=3)
    loadgen.add_argument("--duration", type=float, default=5.0)
    loadgen.add_argument(
        "--wire",
        type=int,
        choices=(1, 2),
        default=2,
        help="wire codec version (default 2 = repro-wire/2 binary; 1 = JSON)",
    )
    loadgen.add_argument(
        "--flush-watermark",
        type=int,
        default=None,
        metavar="BYTES",
        help="outbound coalescing threshold per connection "
        "(default 65536; 0 = eager per-frame writes)",
    )
    loadgen.add_argument(
        "--open-loop",
        action="store_true",
        help="headline load uses Poisson arrivals at --rate instead of the "
        "closed loop (latency then includes queueing delay)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="OPS_PER_S",
        help="aggregate offered rate for --open-loop",
    )
    loadgen.add_argument(
        "--sweep",
        nargs="?",
        const="auto",
        default=None,
        metavar="R1,R2,...",
        help="also trace an open-loop saturation curve at these offered "
        "rates (bare --sweep picks a default geometric ladder); one fresh "
        "cluster and one regularity verdict per point",
    )
    loadgen.add_argument(
        "--sweep-duration",
        type=float,
        default=3.0,
        help="measured seconds per sweep point (default 3)",
    )
    loadgen.add_argument(
        "--loop",
        choices=("auto", "uvloop", "asyncio"),
        default="auto",
        help="event-loop runtime: auto = uvloop when installed, stdlib "
        "otherwise (the [perf] extra installs uvloop)",
    )
    loadgen.add_argument(
        "--warmup",
        type=float,
        default=1.0,
        help="seconds of samples to discard before measuring",
    )
    loadgen.add_argument(
        "--read-fraction",
        type=float,
        default=0.5,
        help="probability each operation is a read (default 0.5)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--byzantine",
        default=None,
        metavar="STRATEGY",
        help="substitute one server with this zoo strategy",
    )
    loadgen.add_argument(
        "--byzantine-server",
        default=None,
        metavar="SID",
        help="which server --byzantine replaces (default: the last)",
    )
    loadgen.add_argument(
        "--servers",
        default=None,
        metavar="SID=ADDR,...",
        help="dial externally served daemons instead of booting local ones",
    )
    loadgen.add_argument("--family", choices=("tcp", "unix"), default="tcp")
    loadgen.add_argument("--socket-dir", default=None)
    loadgen.add_argument("--op-timeout", type=float, default=30.0)
    loadgen.add_argument("--proxy-loss", type=float, default=0.0)
    loadgen.add_argument("--proxy-duplication", type=float, default=0.0)
    loadgen.add_argument("--proxy-delay", type=float, default=0.0)
    loadgen.add_argument("--proxy-jitter", type=float, default=0.0)
    loadgen.add_argument(
        "--min-ops-per-s",
        type=float,
        default=0.0,
        help="exit 1 if measured throughput falls below this floor",
    )
    loadgen.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the benchmark JSON (BENCH_live.json) here",
    )

    fabric = sub.add_parser(
        "fabric",
        help="sharded KV fabric: scale-out loadgen, targeted chaos, serve "
        "(docs/FABRIC.md)",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    def _fabric_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--shards", type=int, default=2, help="register groups (default 2)"
        )
        p.add_argument("--n", type=int, default=6, help="servers per shard")
        p.add_argument("--f", type=int, default=1, help="fault budget per shard")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--byzantine",
            default=None,
            metavar="STRATEGY",
            help="every shard hosts one server of this zoo strategy",
        )
        p.add_argument(
            "--proxied",
            action="store_true",
            help="front every server with a fault proxy (partition verbs "
            "need this; fabric chaos --nemesis partition implies it)",
        )
        p.add_argument(
            "--inline",
            action="store_true",
            help="host shards on this process's loop instead of one OS "
            "process per shard (fast, for tests and smoke runs)",
        )
        p.add_argument(
            "--wire",
            type=int,
            choices=(1, 2),
            default=2,
            help="wire codec version (default 2 = repro-wire/2 binary)",
        )
        p.add_argument(
            "--loop",
            choices=("auto", "uvloop", "asyncio"),
            default="auto",
            help="event-loop runtime (parent process only)",
        )

    def _fabric_load_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--clients", type=int, default=2, help="worker endpoints per shard"
        )
        p.add_argument("--op-timeout", type=float, default=30.0)
        p.add_argument(
            "--rate-per-shard",
            type=float,
            default=150.0,
            help="offered open-loop ops/s per shard (aggregate scales with "
            "the shard count; default 150)",
        )
        p.add_argument("--duration", type=float, default=5.0)
        p.add_argument("--warmup", type=float, default=1.0)
        p.add_argument("--read-fraction", type=float, default=0.5)
        p.add_argument(
            "--keys", type=int, default=256, help="keyspace size (default 256)"
        )
        p.add_argument(
            "--skew",
            choices=("uniform", "zipf"),
            default="uniform",
            help="key popularity: uniform or zipf (1/rank^s)",
        )
        p.add_argument(
            "--zipf-s",
            type=float,
            default=1.1,
            help="zipf exponent (default 1.1; only with --skew zipf)",
        )
        p.add_argument(
            "--out",
            default=None,
            metavar="PATH",
            help="write the JSON artifact here",
        )

    fab_load = fabric_sub.add_parser(
        "loadgen",
        help="scale-out load over 1..K shards + per-shard regularity "
        "verdicts (repro-bench-fabric/1)",
    )
    _fabric_common(fab_load)
    _fabric_load_common(fab_load)
    fab_load.add_argument(
        "--sweep",
        action="store_true",
        help="run the shard ladder 1, 2, 4, ... up to --shards (fresh "
        "fabric per point) instead of --shards only",
    )
    fab_load.add_argument(
        "--closed",
        action="store_true",
        help="closed-loop workers (capacity) instead of open-loop Poisson "
        "arrivals at --rate-per-shard",
    )
    fab_load.add_argument(
        "--min-ops-per-s",
        type=float,
        default=0.0,
        help="exit 1 if the largest point's throughput is below this floor",
    )

    fab_chaos = fabric_sub.add_parser(
        "chaos",
        help="aim one nemesis at one shard under load; exit 0 only if the "
        "blast radius is contained and the target stabilizes",
    )
    _fabric_common(fab_chaos)
    _fabric_load_common(fab_chaos)
    fab_chaos.add_argument(
        "--target", default="shard0", help="shard to attack (default shard0)"
    )
    fab_chaos.add_argument(
        "--nemesis",
        choices=("partition", "corrupt", "crash"),
        default="partition",
        help="fault kind aimed at --target",
    )
    fab_chaos.add_argument(
        "--start",
        type=float,
        default=1.0,
        help="seconds into the measured window the fault lands",
    )
    fab_chaos.add_argument(
        "--length",
        type=float,
        default=2.0,
        help="seconds the fault holds before heal/respawn",
    )

    fab_serve = fabric_sub.add_parser(
        "serve",
        help="boot a fabric, print its topology JSON, serve until ^C",
    )
    _fabric_common(fab_serve)

    lint = sub.add_parser(
        "lint",
        help="determinism & stabilization-soundness static analysis",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "github"), default="text"
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only .py files changed vs HEAD (plus untracked ones); "
        "positional paths become a scope filter",
    )
    lint.add_argument(
        "--model-cache",
        default=None,
        metavar="PATH",
        help="cache the phase-1 program model here, keyed on a source hash",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of grandfathered findings to subtract",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "reproduce-all": _cmd_reproduce_all,
        "demo": _cmd_demo,
        "profile": _cmd_profile,
        "check": _cmd_check,
        "fuzz": _cmd_fuzz,
        "chaos": _cmd_chaos,
        "shrink": _cmd_shrink,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "fabric": _cmd_fabric,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
