"""Abstract interface of a labeling (timestamping) system.

Following Israeli & Li, a labeling system is a set of labels with a total
antisymmetric comparison relation and a function computing a fresh label
from existing ones. The k-stabilizing bounded variant (Definition 2 of the
paper) guarantees domination of any input set of size at most ``k``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Sequence

Label = Hashable


class LabelingScheme(ABC):
    """A labeling system ``(L, ≺, next())``.

    Concrete schemes must be *defensive*: ``is_label`` recognizes
    well-formed labels, and ``next_label`` must return a valid label even
    when fed garbage (malformed inputs are ignored) — a requirement imposed
    by transient corruption of server state, which can place arbitrary
    bytes where a label is expected.
    """

    #: Maximum input-set size for which ``next_label`` guarantees domination
    #: (the ``k`` of a k-SBLS). ``None`` means unlimited (unbounded schemes).
    k: int | None = None

    # ------------------------------------------------------------------
    # relation
    # ------------------------------------------------------------------
    @abstractmethod
    def precedes(self, a: Label, b: Label) -> bool:
        """The ``a ≺ b`` relation. Must be antisymmetric and irreflexive.

        Malformed operands must compare ``False`` rather than raise.
        """

    def comparable(self, a: Label, b: Label) -> bool:
        """True when ``a ≺ b`` or ``b ≺ a`` (the relation may be partial)."""
        return self.precedes(a, b) or self.precedes(b, a)

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    @abstractmethod
    def next_label(self, labels: Iterable[Label]) -> Label:
        """A label dominating every *valid* label in ``labels``.

        For bounded stabilizing schemes the guarantee holds whenever the
        number of valid input labels is at most ``k``; invalid entries are
        skipped. Unbounded schemes dominate any finite input.
        """

    @abstractmethod
    def initial_label(self) -> Label:
        """The canonical label a freshly-initialized process holds."""

    # ------------------------------------------------------------------
    # validation / utilities
    # ------------------------------------------------------------------
    @abstractmethod
    def is_label(self, x: Any) -> bool:
        """Structural validity check (used for defensive parsing)."""

    @abstractmethod
    def random_label(self, rng: random.Random) -> Label:
        """A uniformly random well-formed label (for transient corruption)."""

    @abstractmethod
    def sort_key(self, label: Label) -> Sequence[Any]:
        """A deterministic total tiebreak key (NOT the semantic order).

        Used only to make "pick one of several maximal candidates"
        deterministic across runs; never consulted for temporal precedence.
        """

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def valid_labels(self, labels: Iterable[Any]) -> list[Label]:
        """Filter ``labels`` down to structurally valid ones."""
        return [x for x in labels if self.is_label(x)]

    def dominates_all(self, candidate: Label, labels: Iterable[Label]) -> bool:
        """True when every valid label in ``labels`` precedes ``candidate``."""
        return all(
            self.precedes(x, candidate) for x in self.valid_labels(labels)
        )

    def maximal(self, labels: Iterable[Label]) -> list[Label]:
        """Labels not preceded by any other label of the (valid) input set."""
        valid = self.valid_labels(labels)
        out = []
        for a in valid:
            if not any(self.precedes(a, b) for b in valid if b != a):
                out.append(a)
        return out
