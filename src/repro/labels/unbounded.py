"""Unbounded integer timestamps.

The classical scheme: labels are natural numbers, ``a ≺ b`` iff ``a < b``,
``next`` is ``max + 1``. Totally ordered, trivially dominating — but the
label space grows without bound, which is exactly the drawback the paper's
bounded construction removes. Used by the baseline protocols
(:mod:`repro.baselines`) and as a reference implementation in tests.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from repro.labels.base import Label, LabelingScheme


class UnboundedLabelingScheme(LabelingScheme):
    """Natural-number labels with the usual order."""

    k = None  # dominates any finite input set

    def precedes(self, a: Label, b: Label) -> bool:
        if not (self.is_label(a) and self.is_label(b)):
            return False
        return a < b  # type: ignore[operator]

    def next_label(self, labels: Iterable[Label]) -> Label:
        valid = self.valid_labels(labels)
        return (max(valid) + 1) if valid else 1

    def initial_label(self) -> Label:
        return 0

    def is_label(self, x: Any) -> bool:
        return isinstance(x, int) and not isinstance(x, bool) and x >= 0

    def random_label(self, rng: random.Random) -> Label:
        # A "corrupted" integer timestamp can be arbitrarily large; sample a
        # heavy-ish tail so corruption experiments exercise huge stale values.
        return rng.randrange(0, 1 << rng.randrange(1, 48))

    def sort_key(self, label: Label) -> Sequence[Any]:
        return (label,)
