"""The Alon et al. k-stabilizing bounded labeling system.

Construction (Alon, Attiya, Dolev, Dubois, Potop-Butucaru, Tixeuil,
DISC 2010 brief announcement / SSS 2011): fix ``k >= 2`` and a finite
domain ``D = {0, .., m-1}`` with ``m = k^2 + k + 1``. A label is a pair

    ``ℓ = (sting, antistings)``  with  ``sting ∈ D``,
    ``antistings ⊆ D``, ``|antistings| = k``.

The precedence relation is

    ``ℓi ≺ ℓj  ⇔  sting(ℓi) ∈ antistings(ℓj)  ∧  sting(ℓj) ∉ antistings(ℓi)``

which is irreflexive and antisymmetric by inspection (it is *not*
transitive — the relation is a partial, non-transitive order, which is why
the protocol reasons over weighted timestamp graphs rather than simple
maxima).

``next(L')`` for ``|L'| <= k``:

* antistings ``A`` := the stings of ``L'``, padded to exactly ``k`` domain
  elements;
* sting ``s`` := any domain element outside every input label's antistings
  set, outside ``A`` and distinct from all input stings. Since the inputs
  rule out at most ``k·k + k + k... <= k^2 + k < m`` elements, such an ``s``
  always exists.

Then for every ``ℓ ∈ L'``: ``sting(ℓ) ∈ A`` and ``s ∉ antistings(ℓ)``,
hence ``ℓ ≺ next(L')`` — Definition 2 (k-SBLS) holds *regardless of how the
input labels came to be*, including arbitrary transient corruption. That
"no bad reachable configuration" property is what the earlier bounded
schemes (Israeli-Li, Dolev-Shavit) lack; see
:mod:`repro.labels.modular` for a baseline that fails exactly there.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError, LabelSpaceExhaustedError
from repro.labels.base import Label, LabelingScheme


@dataclass(frozen=True)
class AlonLabel:
    """A bounded label: a sting plus an antistings set of fixed size k.

    Frozen/hashable so labels can key WTsG nodes and live in sets.
    """

    sting: int
    antistings: frozenset[int]

    def __repr__(self) -> str:
        inner = ",".join(str(x) for x in sorted(self.antistings))
        return f"⟨{self.sting}|{{{inner}}}⟩"


class AlonLabelingScheme(LabelingScheme):
    """k-stabilizing bounded labeling system over ``k² + k + 1`` elements.

    Args:
        k: maximum input-set size ``next_label`` must dominate. The register
            protocol needs ``k >= n + 1`` (the writer computes ``next`` over
            up to ``n`` gathered timestamps plus its own previous one).
    """

    #: Cap on the per-scheme memo structures. Labels are tiny, so even the
    #: cap is generous; it only matters for adversarial fuzz campaigns that
    #: mint millions of random labels through one scheme instance.
    _CACHE_LIMIT = 65536

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ConfigurationError(f"k-SBLS requires k >= 2, got {k}")
        self.k = k
        self.domain_size = k * k + k + 1
        # Memo of labels this scheme has already validated. AlonLabel is
        # frozen/hashable, so a label that validated once validates forever
        # *for this scheme's (k, domain)* — the set is per-instance, never
        # shared across schemes with different k. Only positive verdicts
        # are cached: corrupted lookalikes (wrong-size antistings, floats,
        # out-of-domain stings) always take the full structural check.
        self._validated: set[AlonLabel] = set()
        self._sort_keys: dict[AlonLabel, tuple] = {}

    # ------------------------------------------------------------------
    # relation
    # ------------------------------------------------------------------
    def precedes(self, a: Label, b: Label) -> bool:
        if not (self.is_label(a) and self.is_label(b)):
            return False
        assert isinstance(a, AlonLabel) and isinstance(b, AlonLabel)
        return a.sting in b.antistings and b.sting not in a.antistings

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def next_label(self, labels: Iterable[Label]) -> Label:
        valid: list[AlonLabel] = [
            x for x in labels if self.is_label(x)
        ]  # type: ignore[misc]
        if len(valid) > self.k:
            # Domination is only promised for <= k inputs; the protocol is
            # configured so this never happens with well-formed use. Keep a
            # deterministic salvage path for corrupted oversized inputs:
            # dominate the k labels with the greatest tiebreak keys.
            valid = sorted(valid, key=self.sort_key)[-self.k:]

        stings = {lab.sting for lab in valid}
        blocked: set[int] = set(stings)
        for lab in valid:
            blocked |= lab.antistings

        # antistings := stings of the inputs, padded to exactly k elements
        # with the smallest free domain elements (deterministic padding).
        antistings = set(stings)
        cursor = 0
        while len(antistings) < self.k:
            if cursor >= self.domain_size:  # pragma: no cover - sizing proof
                raise LabelSpaceExhaustedError(
                    "domain exhausted while padding antistings"
                )
            if cursor not in antistings:
                antistings.add(cursor)
            cursor += 1

        # sting := smallest domain element outside every blocked set and
        # outside the new antistings set. |blocked ∪ antistings| <= k² + k,
        # the domain has k² + k + 1 elements, so one always remains.
        forbidden = blocked | antistings
        sting = -1
        for candidate in range(self.domain_size):
            if candidate not in forbidden:
                sting = candidate
                break
        if sting < 0:  # pragma: no cover - impossible by the counting above
            raise LabelSpaceExhaustedError("no admissible sting remains")
        return AlonLabel(sting=sting, antistings=frozenset(antistings))

    def initial_label(self) -> Label:
        """Canonical start label: sting k², antistings {0..k-1}."""
        return AlonLabel(
            sting=self.domain_size - 1,
            antistings=frozenset(range(self.k)),
        )

    # ------------------------------------------------------------------
    # validation / utilities
    # ------------------------------------------------------------------
    def is_label(self, x: Any) -> bool:
        try:
            if x in self._validated:
                return True
        except TypeError:
            # Corrupted lookalike with an unhashable field — a frozen
            # dataclass hash dies on e.g. a list where the frozenset
            # belongs. Fall through to the structural check (which
            # rejects it) without caching anything.
            pass
        ok = self._is_label_uncached(x)
        if ok:
            if len(self._validated) >= self._CACHE_LIMIT:
                self._validated.clear()
            self._validated.add(x)
        return ok

    def _is_label_uncached(self, x: Any) -> bool:
        """The full structural check (no memo); ground truth for the cache."""
        return (
            isinstance(x, AlonLabel)
            and isinstance(x.sting, int)
            and 0 <= x.sting < self.domain_size
            and isinstance(x.antistings, frozenset)
            and len(x.antistings) == self.k
            and all(
                isinstance(e, int) and 0 <= e < self.domain_size
                for e in x.antistings
            )
        )

    def random_label(self, rng: random.Random) -> Label:
        sting = rng.randrange(self.domain_size)
        antistings = frozenset(rng.sample(range(self.domain_size), self.k))
        return AlonLabel(sting=sting, antistings=antistings)

    def sort_key(self, label: Label) -> Sequence[Any]:
        assert isinstance(label, AlonLabel)
        key = self._sort_keys.get(label)
        if key is None:
            key = (label.sting, tuple(sorted(label.antistings)))
            if len(self._sort_keys) >= self._CACHE_LIMIT:
                self._sort_keys.clear()
            self._sort_keys[label] = key
        return key
