"""MWMR timestamps: ``(label, writer_id)`` pairs (Section IV-D).

The multi-writer extension tags every written value with the writer's
identity alongside the bounded label. Ordering (Lemma 8):

* when the labels are comparable under the scheme's ``≺``, the label order
  decides;
* when the labels are equal or incomparable (concurrent writes whose
  ``next`` computations did not see each other), the writer identity breaks
  the tie, giving the total order on concurrent/consecutive writes the
  lemma requires.

The resulting relation is antisymmetric and irreflexive, and — restricted
to timestamps actually produced by the protocol — totally orders any two
distinct operations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.labels.base import Label, LabelingScheme


@dataclass(frozen=True)
class MwmrTimestamp:
    """A write timestamp in the multi-writer protocol."""

    label: Any
    writer_id: str

    def __repr__(self) -> str:
        return f"{self.label!r}@{self.writer_id}"


class MwmrOrdering(LabelingScheme):
    """Lift a label scheme to ``(label, writer_id)`` timestamps.

    This adapter is itself a :class:`LabelingScheme` so the weighted
    timestamp graph and the reader logic work identically in SWMR and MWMR
    mode; ``next_label`` requires the caller to say *who* is writing, so the
    adapter exposes :meth:`next_timestamp` and ``next_label`` defaults the
    writer id (only tests use that path).
    """

    def __init__(self, base: LabelingScheme, default_writer: str = "?") -> None:
        self.base = base
        self.k = base.k
        self.default_writer = default_writer

    # ------------------------------------------------------------------
    # relation
    # ------------------------------------------------------------------
    def precedes(self, a: Label, b: Label) -> bool:
        if not (self.is_label(a) and self.is_label(b)):
            return False
        assert isinstance(a, MwmrTimestamp) and isinstance(b, MwmrTimestamp)
        if a == b:
            return False
        if self.base.precedes(a.label, b.label):
            return True
        if self.base.precedes(b.label, a.label):
            return False
        # Equal or incomparable labels: writer identity decides. Equal
        # labels with equal writers are the same timestamp (handled above).
        if a.writer_id == b.writer_id:
            # Same writer, incomparable distinct labels: a corrupted relic
            # (a correct writer chains its labels through next()). Use the
            # deterministic structural key so the relation stays total.
            return self.base.sort_key(a.label) < self.base.sort_key(b.label)
        return a.writer_id < b.writer_id

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def next_timestamp(
        self, timestamps: Iterable[Label], writer_id: str
    ) -> MwmrTimestamp:
        """Timestamp for a new write by ``writer_id`` dominating the inputs."""
        labels = [
            ts.label for ts in timestamps if isinstance(ts, MwmrTimestamp)
        ]
        return MwmrTimestamp(
            label=self.base.next_label(labels), writer_id=writer_id
        )

    def next_label(self, labels: Iterable[Label]) -> Label:
        return self.next_timestamp(labels, self.default_writer)

    def initial_label(self) -> Label:
        return MwmrTimestamp(
            label=self.base.initial_label(), writer_id=self.default_writer
        )

    # ------------------------------------------------------------------
    # validation / utilities
    # ------------------------------------------------------------------
    def is_label(self, x: Any) -> bool:
        return (
            isinstance(x, MwmrTimestamp)
            and isinstance(x.writer_id, str)
            and self.base.is_label(x.label)
        )

    def random_label(self, rng: random.Random) -> Label:
        return MwmrTimestamp(
            label=self.base.random_label(rng),
            writer_id=f"w{rng.randrange(16)}",
        )

    def sort_key(self, label: Label) -> Sequence[Any]:
        assert isinstance(label, MwmrTimestamp)
        return (tuple(self.base.sort_key(label.label)), label.writer_id)
