"""Timestamping / labeling systems.

The protocol timestamps write operations with labels from a *k-stabilizing
bounded labeling system* (Definition 2 of the paper, construction from Alon
et al. [18]): a finite label set ``L`` with an antisymmetric relation ``≺``
and a function ``next(L')`` producing, for any subset ``L'`` of at most
``k`` labels, a label dominating every element of ``L'``.

Provided schemes:

* :class:`~repro.labels.alon.AlonLabelingScheme` — the paper's scheme:
  labels are (sting, antistings) pairs over a finite domain; *stabilizing*
  (``next`` works from any, even corrupted, label set).
* :class:`~repro.labels.unbounded.UnboundedLabelingScheme` — plain integers;
  the classical unbounded baseline (used by the non-stabilizing comparison
  protocols).
* :class:`~repro.labels.modular.ModularLabelingScheme` — a bounded but
  NON-stabilizing wraparound scheme in the spirit of pre-stabilizing bounded
  timestamp systems (Israeli-Li lineage): from certain corrupted
  configurations no dominating label exists. Experiment E7 demonstrates
  exactly this failure, motivating the Alon et al. construction.

:mod:`repro.labels.ordering` lifts any scheme to the MWMR timestamp domain
``(label, writer_id)`` used by the multi-writer extension (Section IV-D).
"""

from repro.labels.base import LabelingScheme
from repro.labels.unbounded import UnboundedLabelingScheme
from repro.labels.alon import AlonLabel, AlonLabelingScheme
from repro.labels.modular import ModularLabelingScheme
from repro.labels.ordering import MwmrTimestamp, MwmrOrdering

__all__ = [
    "LabelingScheme",
    "UnboundedLabelingScheme",
    "AlonLabel",
    "AlonLabelingScheme",
    "ModularLabelingScheme",
    "MwmrTimestamp",
    "MwmrOrdering",
]
