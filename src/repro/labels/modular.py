"""A bounded but NON-stabilizing labeling baseline (wraparound counters).

This scheme represents the pre-Alon bounded timestamp lineage (Israeli-Li
style sequential bounded timestamps realized as a wraparound counter with a
half-window comparison):

* labels are integers modulo ``modulus``;
* ``a ≺ b`` iff ``(b - a) mod modulus`` lies in ``[1, modulus // 2]`` — the
  standard "serial number arithmetic" window order;
* ``next(L')`` returns ``(max element of the dominated chain) + 1``.

Under *correct* operation (labels only ever produced by ``next`` and at
most ``modulus // 2`` of them live simultaneously) this behaves like
unbounded integers. But it is **not** a k-stabilizing bounded labeling
system: from corrupted configurations where live labels are spread around
the circle (e.g. ``{0, m/2}`` with ``m`` the modulus), *no* label dominates
all of them — ``next`` cannot satisfy Definition 2 and the register built
on it can stall or order writes inconsistently forever. Experiment E7
constructs such configurations mechanically and contrasts them with the
Alon scheme, which recovers by construction.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.labels.base import Label, LabelingScheme


class ModularLabelingScheme(LabelingScheme):
    """Wraparound (serial-number-arithmetic) bounded labels.

    Args:
        modulus: size of the label circle. The half-window comparison means
            at most ``modulus // 2`` consecutive labels can coexist before
            the order becomes ambiguous.
    """

    def __init__(self, modulus: int = 64) -> None:
        if modulus < 4:
            raise ConfigurationError(f"modulus must be >= 4, got {modulus}")
        self.modulus = modulus
        # A "k" exists only in the benign-operation sense; advertise the
        # largest window for which domination *can* hold from good configs.
        self.k = modulus // 2 - 1

    def precedes(self, a: Label, b: Label) -> bool:
        if not (self.is_label(a) and self.is_label(b)):
            return False
        delta = (b - a) % self.modulus  # type: ignore[operator]
        return 1 <= delta <= self.modulus // 2

    def next_label(self, labels: Iterable[Label]) -> Label:
        valid = self.valid_labels(labels)
        if not valid:
            return 1
        # Pick the maximal element of the input under the window order (if
        # the input is a coherent recent window there is exactly one chain),
        # then step past it. From incoherent (corrupted) inputs there may be
        # several maximal elements; stepping past an arbitrary one CANNOT
        # dominate the others — that is precisely the non-stabilizing flaw.
        maximal = self.maximal(valid)
        if not maximal:
            # Corrupted label sets can be cyclic under the window order
            # (e.g. {0, m/4+1, m/2+2}); no maximum exists — another face of
            # the same non-stabilizing flaw. Step past an arbitrary element
            # so the protocol at least keeps producing labels.
            maximal = valid
        top = max(maximal)  # deterministic pick
        return (top + 1) % self.modulus  # type: ignore[operator]

    def initial_label(self) -> Label:
        return 0

    def is_label(self, x: Any) -> bool:
        return (
            isinstance(x, int)
            and not isinstance(x, bool)
            and 0 <= x < self.modulus
        )

    def random_label(self, rng: random.Random) -> Label:
        return rng.randrange(self.modulus)

    def sort_key(self, label: Label) -> Sequence[Any]:
        return (label,)

    # ------------------------------------------------------------------
    # diagnostics used by experiment E7
    # ------------------------------------------------------------------
    def antipodal_pair(self) -> tuple[int, int]:
        """A corrupted configuration no label can dominate.

        ``(0, modulus // 2)``: any candidate ``c`` has ``0 ≺ c`` only when
        ``c ∈ [1, m/2]`` and ``m/2 ≺ c`` only when ``c ∈ [m/2+1, 0]`` — the
        windows are disjoint, so no ``c`` dominates both.
        """
        return (0, self.modulus // 2)
