"""Write-quiescence analysis (Assumption 2 made measurable).

Assumption 2 requires that "after a burst of write() operations ... there
exist a sufficiently long period where the writer does not take any
operation", and ties the servers' memory (the ``old_vals`` window) to the
burst length. This module analyses recorded histories in those terms:

* :func:`write_bursts` — maximal groups of writes separated by gaps below
  a threshold;
* :func:`quiescent_windows` — the write-free intervals between bursts;
* :func:`check_assumption2` — does the history respect a given window
  length (no burst longer than the servers' ``old_vals`` capacity) and
  minimum quiescence?

Experiments and users can thus *verify* that a workload lies inside the
regime the correctness proof covers, instead of hoping it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.spec.history import History, Operation, OpStatus


@dataclass(frozen=True)
class Burst:
    """A maximal run of writes with inter-write gaps below the threshold."""

    writes: tuple[Operation, ...]
    start: float
    end: float

    def __len__(self) -> int:
        return len(self.writes)


@dataclass(frozen=True)
class QuiescentWindow:
    """A write-free interval between bursts (or after the last one)."""

    start: float
    end: Optional[float]  # None = open-ended (history tail)

    @property
    def duration(self) -> float:
        return float("inf") if self.end is None else self.end - self.start


@dataclass
class Assumption2Report:
    """Verdict of :func:`check_assumption2`."""

    ok: bool
    longest_burst: int
    shortest_quiescence: float
    bursts: list[Burst] = field(default_factory=list)
    windows: list[QuiescentWindow] = field(default_factory=list)

    def summary(self) -> str:
        status = "WITHIN" if self.ok else "OUTSIDE"
        return (
            f"{status} Assumption 2: longest burst {self.longest_burst}, "
            f"shortest quiescence {self.shortest_quiescence:.2f}"
        )


def write_bursts(history: History, max_gap: float = 1.0) -> list[Burst]:
    """Group completed writes into bursts.

    Two consecutive writes belong to one burst when the second is invoked
    within ``max_gap`` of the first's response (back-to-back traffic).
    Writes overlapping in time (concurrent writers) always share a burst.
    """
    writes = sorted(
        (
            w
            for w in history.writes()
            if w.status is OpStatus.OK and w.responded_at is not None
        ),
        key=lambda w: (w.invoked_at, w.op_id),
    )
    bursts: list[Burst] = []
    current: list[Operation] = []
    burst_end = 0.0
    for w in writes:
        if current and w.invoked_at - burst_end > max_gap:
            bursts.append(
                Burst(
                    writes=tuple(current),
                    start=current[0].invoked_at,
                    end=burst_end,
                )
            )
            current = []
        current.append(w)
        burst_end = max(burst_end, w.responded_at)
    if current:
        bursts.append(
            Burst(
                writes=tuple(current),
                start=current[0].invoked_at,
                end=burst_end,
            )
        )
    return bursts


def quiescent_windows(
    history: History, max_gap: float = 1.0
) -> list[QuiescentWindow]:
    """The write-free intervals between (and after) the bursts."""
    bursts = write_bursts(history, max_gap=max_gap)
    windows: list[QuiescentWindow] = []
    for earlier, later in zip(bursts, bursts[1:]):
        windows.append(QuiescentWindow(start=earlier.end, end=later.start))
    if bursts:
        windows.append(QuiescentWindow(start=bursts[-1].end, end=None))
    return windows


def check_assumption2(
    history: History,
    window_capacity: int,
    min_quiescence: float,
    max_gap: float = 1.0,
) -> Assumption2Report:
    """Decide whether the workload stays inside the proof's regime.

    Args:
        window_capacity: the servers' ``old_vals`` length — no burst may
            exceed it.
        min_quiescence: minimum write-free time demanded between bursts.
        max_gap: burst-grouping threshold.
    """
    bursts = write_bursts(history, max_gap=max_gap)
    windows = quiescent_windows(history, max_gap=max_gap)
    longest = max((len(b) for b in bursts), default=0)
    inner = [w.duration for w in windows if w.end is not None]
    shortest = min(inner, default=float("inf"))
    ok = longest <= window_capacity and (
        not inner or shortest >= min_quiescence
    )
    return Assumption2Report(
        ok=ok,
        longest_burst=longest,
        shortest_quiescence=shortest,
        bursts=bursts,
        windows=windows,
    )
