"""History serialization (JSON-friendly dicts).

Lets a run's operation history be exported for offline analysis or
archived next to EXPERIMENTS.md, and re-imported for checking — the
checkers are pure functions of the history, so a serialized history is a
complete, re-judgeable artifact.

Only JSON-representable views of values are stored: arguments/results are
kept verbatim when they are JSON scalars and stringified otherwise
(protocol timestamps are always stringified — bounded labels are rich
objects whose identity the checkers do not need).
"""

from __future__ import annotations

import json
from typing import Any

from repro.spec.history import History, Operation, OpKind, OpStatus

_SCALARS = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else repr(value)


def operation_to_dict(op: Operation) -> dict[str, Any]:
    """One operation as a plain dict."""
    return {
        "op_id": op.op_id,
        "client": op.client,
        "kind": op.kind.value,
        "argument": _jsonable(op.argument),
        "result": _jsonable(op.result),
        "invoked_at": op.invoked_at,
        "responded_at": op.responded_at,
        "status": op.status.value,
        "timestamp": None if op.timestamp is None else repr(op.timestamp),
    }


def history_to_dict(history: History) -> dict[str, Any]:
    """The whole history as a plain dict."""
    return {
        "format": "repro-history/1",
        "operations": [operation_to_dict(op) for op in history],
    }


def history_to_json(history: History, indent: int | None = 2) -> str:
    return json.dumps(history_to_dict(history), indent=indent)


def history_from_dict(data: dict[str, Any]) -> History:
    """Rebuild a history from :func:`history_to_dict` output.

    The rebuilt operations carry the serialized (possibly stringified)
    values; checker verdicts are preserved as long as write arguments were
    JSON scalars (the workload generators only emit strings).
    """
    if data.get("format") != "repro-history/1":
        raise ValueError(f"unknown history format: {data.get('format')!r}")
    history = History()
    for entry in data["operations"]:
        op = Operation(
            op_id=int(entry["op_id"]),
            client=str(entry["client"]),
            kind=OpKind(entry["kind"]),
            argument=entry["argument"],
            result=entry["result"],
            invoked_at=float(entry["invoked_at"]),
            responded_at=(
                None
                if entry["responded_at"] is None
                else float(entry["responded_at"])
            ),
            status=OpStatus(entry["status"]),
            timestamp=entry["timestamp"],
        )
        history.operations.append(op)
    return history


def history_from_json(text: str) -> History:
    return history_from_dict(json.loads(text))
