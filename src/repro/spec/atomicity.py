"""Linearizability (atomicity) checking for small histories.

Atomicity is strictly stronger than regularity; the experiments use this
checker in two directions:

* positively, to validate the crash-only ABD baseline (which implements an
  atomic register) on fault-free runs;
* negatively, to exhibit runs of the paper's protocol that are regular but
  *not* atomic (new/old inversions between *concurrent* reads are allowed
  by regularity), separating the two specifications mechanically.

The checker is the classical Wing-Gong style depth-first search over
linearization prefixes with memoization on (linearized-set, register
value). Exponential in the worst case — fine for the short histories the
experiments feed it, and guarded by a configurable node budget.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, FrozenSet, Optional

from repro.spec.history import History, Operation, OpStatus
from repro.spec.regularity import INITIAL


def check_linearizable(
    history: History,
    initial_value: Any = INITIAL,
    max_nodes: int = 2_000_000,
) -> bool:
    """True iff the completed operations admit a legal linearization.

    Incomplete writes may be linearized or dropped (both options are
    explored); incomplete/aborted reads are ignored. Raises
    :class:`RuntimeError` when the search exceeds ``max_nodes`` — callers
    should keep histories small.
    """
    ops = [
        op
        for op in history
        if (op.status is OpStatus.OK)
        or (op.is_write and not op.complete)
    ]
    n = len(ops)
    if n == 0:
        return True
    ids = {op.op_id: i for i, op in enumerate(ops)}

    # Precompute real-time predecessors as bitmasks: op cannot linearize
    # before all its completed predecessors have. Real time is an interval
    # order, so an op's predecessors are a response-sorted prefix of the
    # completed ops — prefix OR-masks plus one bisect per op replace the
    # quadratic pairwise scan (an op never precedes itself: resp >= inv).
    completed = sorted(
        (
            (b.responded_at, 1 << j)
            for j, b in enumerate(ops)
            if b.complete and b.responded_at is not None
        ),
        key=lambda pair: pair[0],
    )
    resp_times = [t for t, _bit in completed]
    prefix_masks = [0]
    acc = 0
    for _t, bit in completed:
        acc |= bit
        prefix_masks.append(acc)
    preds = [
        prefix_masks[bisect_left(resp_times, a.invoked_at)] for a in ops
    ]

    full_mask = (1 << n) - 1
    seen: set[tuple[int, int]] = set()
    # Register values are arbitrary hashables; intern them to small ints so
    # the memo key stays compact.
    value_ids: dict[Any, int] = {}

    def intern(v: Any) -> int:
        if v not in value_ids:
            value_ids[v] = len(value_ids)
        return value_ids[v]

    nodes = 0

    def dfs(done_mask: int, value: Any) -> bool:
        nonlocal nodes
        if done_mask == full_mask:
            return True
        key = (done_mask, intern(value))
        if key in seen:
            return False
        seen.add(key)
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("linearizability search budget exhausted")
        for i, op in enumerate(ops):
            bit = 1 << i
            if done_mask & bit:
                continue
            if (preds[i] & done_mask) != preds[i]:
                continue  # a predecessor is not linearized yet
            if op.is_write:
                # Option A: the write takes effect here.
                if dfs(done_mask | bit, op.argument):
                    return True
                # Option B: an incomplete write never takes effect.
                if not op.complete and dfs(done_mask | bit, value):
                    return True
            else:
                if op.result == value and dfs(done_mask | bit, value):
                    return True
        return False

    return dfs(0, initial_value)
