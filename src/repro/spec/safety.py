"""Safe-register checking (the weakest of Lamport's three semantics).

A *safe* register only constrains reads that are **not** concurrent with
any write: they must return the last written value. Reads overlapping a
write may return anything at all.

Used to judge the Malkhi-Reiter baseline on its own terms (it promises
safety, not regularity) and to demonstrate the semantics lattice

    safe  <  regular  <  atomic

mechanically: every regular history is safe, every atomic history is
regular, and the separations are witnessed by concrete protocol runs
(E11 separates regular from atomic; the masking-quorum register under
concurrency separates safe from regular).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.spec.history import History, Operation
from repro.spec.regularity import INITIAL, Violation, _topological
from repro.spec.relations import concurrent, precedes


@dataclass
class SafetyVerdict:
    """Outcome of a safe-register check."""

    ok: bool
    violations: list[Violation] = field(default_factory=list)
    checked_reads: int = 0  # non-concurrent reads actually constrained
    unconstrained_reads: int = 0  # reads concurrent with some write

    def summary(self) -> str:
        status = "SAFE" if self.ok else "VIOLATED"
        return (
            f"{status}: {self.checked_reads} constrained reads, "
            f"{self.unconstrained_reads} unconstrained, "
            f"{len(self.violations)} violations"
        )


class SafetyChecker:
    """Decides the safe-register specification.

    The write order follows the same existential principle as the
    regularity checker: a constrained read returning write ``w`` demands
    every other write preceding it be ordered before ``w``; safety holds
    iff the constraint graph (real-time + these) is acyclic and no
    constrained read returns an unwritten/initial-when-overwritten value.
    """

    def __init__(self, initial_value: Any = INITIAL) -> None:
        self.initial_value = initial_value

    def check(self, history: History) -> SafetyVerdict:
        verdict = SafetyVerdict(ok=True)
        writes = history.writes()
        edges: dict[int, set[int]] = {w.op_id: set() for w in writes}
        for a in writes:
            for b in writes:
                if a is not b and precedes(a, b):
                    edges[a.op_id].add(b.op_id)

        by_value: dict[Any, list[Operation]] = {}
        for w in writes:
            try:
                by_value.setdefault(w.argument, []).append(w)
            except TypeError:
                pass

        for r in history.completed_reads():
            if any(concurrent(w, r) for w in writes) or any(
                not w.complete and w.invoked_at <= (r.responded_at or 0)
                for w in writes
            ):
                verdict.unconstrained_reads += 1
                continue  # concurrent with a write: anything goes
            verdict.checked_reads += 1
            self._check_constrained_read(r, writes, by_value, edges, verdict)

        if _topological(writes, edges) is None:
            verdict.ok = False
            verdict.violations.append(
                Violation(
                    clause="write-order",
                    detail="no write order satisfies the safe-read constraints",
                )
            )
        return verdict

    def _check_constrained_read(
        self,
        r: Operation,
        writes: list[Operation],
        by_value: dict[Any, list[Operation]],
        edges: dict[int, set[int]],
        verdict: SafetyVerdict,
    ) -> None:
        preceding = [w for w in writes if precedes(w, r)]
        if r.result == self.initial_value and not by_value.get(r.result):
            if preceding:
                verdict.ok = False
                verdict.violations.append(
                    Violation(
                        clause="safety",
                        detail=f"{r!r} returned the initial value after writes",
                        read=r,
                    )
                )
            return
        try:
            candidates = by_value.get(r.result, [])
        except TypeError:
            candidates = []
        w = next((c for c in candidates if precedes(c, r)), None)
        if w is None:
            verdict.ok = False
            verdict.violations.append(
                Violation(
                    clause="safety",
                    detail=(
                        f"{r!r} returned {r.result!r}, not the value of any "
                        f"preceding write"
                    ),
                    read=r,
                )
            )
            return
        for x in preceding:
            if x is not w:
                if precedes(w, x):
                    verdict.ok = False
                    verdict.violations.append(
                        Violation(
                            clause="safety",
                            detail=f"{r!r} returned {w!r} but {x!r} came later",
                            read=r,
                            other=x,
                        )
                    )
                    return
                edges[x.op_id].add(w.op_id)
