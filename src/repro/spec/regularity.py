"""MWMR regular-register checking.

The specification (Section II-A of the paper) is *existential*: a history
is regular iff **some** total order of the writes, consistent with
real-time precedence, validates every read. Fixing one candidate order up
front (e.g. by protocol timestamps) is unsound as a checker — the bounded
labeling relation is not transitive, so pairwise timestamp comparisons of
three mutually-concurrent writes can cycle even in perfectly regular
histories.

Fortunately the existential check reduces exactly to graph acyclicity.
Collect constraint edges over the writes:

* **real-time**: complete write ``a`` responds before write ``b`` is
  invoked ⇒ ``a`` before ``b``;
* **validity**: a completed read ``r`` returning the value of a write
  ``w`` that *precedes* ``r`` asserts that ``w`` is the **last** preceding
  write ⇒ every other write ``x`` preceding ``r`` orders before ``w``.
  (A read returning a write *concurrent* with it constrains nothing.)

A total order validating all reads exists iff this digraph is acyclic
(any topological order works). Cross-read consistency for settled returns
is subsumed: if ``r1 ≺ r2`` both return settled writes in inverted order,
the validity edges of the two reads already form a cycle. Inversions
involving *concurrent* writes are permitted — exactly the new/old
inversion a regular (non-atomic) register allows; the atomicity checker
(:mod:`repro.spec.atomicity`) is the stricter tool.

Per-read violations that need no order reasoning are reported directly:
returning a value nobody wrote, returning a write invoked only after the
read responded, returning the initial value although some write completed
before the read, or returning a preceding write that is not real-time
maximal among the preceding writes.

Two edge-collection strategies implement the same decision procedure:

* ``algorithm="sweep"`` (default) — a sweep-line construction in the
  spirit of the just-in-time linearizability checkers (Lowe;
  Horn–Kroening): writes are sorted once by response instant, real-time
  precedence becomes a prefix of that order (it is an interval order), and
  each prefix is represented by one *frontier chain* node instead of
  O(W) pairwise edges. Per-read "every other preceding write orders
  before ``w``" constraints cover the two contiguous response-order
  ranges around ``w`` with O(log W) segment-tree edges. Total
  O(W log W + E) edges instead of the naive O(W²) pairwise scan, with
  bit-identical verdicts (clauses, details, diagnostic order).
* ``algorithm="naive"`` — the original quadratic pairwise scan, retained
  as the differential-testing oracle
  (``tests/spec/test_differential_checker.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Iterable, Optional, Sequence

from repro.labels.base import LabelingScheme
from repro.spec.history import History, Operation, OpStatus
from repro.spec.relations import concurrent, precedes

#: Sentinel distinguishing "register's initial value" from any written value.
INITIAL = object()

_NEG_INF = float("-inf")


@dataclass
class Violation:
    """One specification violation with forensic context."""

    clause: str  # "validity" | "consistency" | "termination" | "write-order"
    detail: str
    read: Optional[Operation] = None
    other: Optional[Operation] = None

    def __repr__(self) -> str:
        return f"Violation({self.clause}: {self.detail})"


@dataclass
class RegularityVerdict:
    """Outcome of a regularity check."""

    ok: bool
    violations: list[Violation] = field(default_factory=list)
    checked_reads: int = 0
    aborted_reads: int = 0
    write_order: list[Operation] = field(default_factory=list)
    ambiguous_values: bool = False

    def summary(self) -> str:
        status = "REGULAR" if self.ok else "VIOLATED"
        return (
            f"{status}: {self.checked_reads} reads checked, "
            f"{self.aborted_reads} aborted, {len(self.violations)} violations"
        )


class WriteOrderCycleError(Exception):
    """The combined constraint relation over writes is cyclic."""


def _safe_get(mapping: dict[Any, Any], key: Any, default: Any = None) -> Any:
    """Dict lookup that treats unhashable garbage keys as missing."""
    try:
        return mapping.get(key, default)
    except TypeError:
        return default


def infer_write_order(
    history: History, scheme: Optional[LabelingScheme] = None
) -> list[Operation]:
    """A diagnostic total order on writes (real-time + timestamp hints).

    Used by experiment reports, *not* by the regularity decision (which is
    existential; see module docstring). Timestamp edges are added only
    where they do not contradict real time; cycles raise
    :class:`WriteOrderCycleError`.
    """
    writes = history.writes()
    edges: dict[int, set[int]] = {op.op_id: set() for op in writes}
    for a in writes:
        for b in writes:
            if a is b:
                continue
            if precedes(a, b):
                edges[a.op_id].add(b.op_id)
            elif (
                scheme is not None
                and not precedes(b, a)
                and a.timestamp is not None
                and b.timestamp is not None
                and scheme.precedes(a.timestamp, b.timestamp)
            ):
                edges[a.op_id].add(b.op_id)
    order = _topological(writes, edges)
    if order is None:
        raise WriteOrderCycleError(
            "real-time and timestamp edges over writes form a cycle"
        )
    return order


def _topological(
    writes: Sequence[Operation], edges: dict[int, set[int]]
) -> Optional[list[Operation]]:
    """Deterministic Kahn sort; ``None`` when the edges are cyclic."""
    index = {op.op_id: op for op in writes}
    indeg = {op.op_id: 0 for op in writes}
    for src, dsts in edges.items():
        for dst in dsts:
            indeg[dst] += 1
    ready = sorted(
        (op for op in writes if indeg[op.op_id] == 0),
        key=lambda op: (op.invoked_at, op.op_id),
    )
    order: list[Operation] = []
    while ready:
        op = ready.pop(0)
        order.append(op)
        fresh = []
        for dst in edges[op.op_id]:
            indeg[dst] -= 1
            if indeg[dst] == 0:
                fresh.append(index[dst])
        if fresh:
            ready.extend(fresh)
            ready.sort(key=lambda op: (op.invoked_at, op.op_id))
    if len(order) != len(writes):
        return None
    return order


class WriteSweepIndex:
    """Sweep-line constraint graph over a history's writes.

    Completed writes are sorted once by response instant; because real
    time over operations is an interval order, the real-time predecessors
    of any operation form a *prefix* of that order. The index materializes

    * a **frontier chain** ``L_1 … L_k``: ``L_i`` is an auxiliary node
      reachable from exactly the first ``i`` responses, so "everything
      that responded before instant t orders before b" is one edge
      ``L_j → b`` instead of ``j`` pairwise edges;
    * a lazily-built **segment tree** over response positions, so a
      read's validity constraint ("the preceding writes other than ``w``
      order before ``w``", two contiguous response-order ranges around
      ``w``'s position) costs O(log W) edges.

    Write-to-write reachability through the auxiliary nodes equals the
    naive dense relation exactly, so acyclicity — the regularity decision
    — is unchanged; and because the topological sort processes auxiliary
    nodes eagerly, the emitted diagnostic write order matches the naive
    checker's tie-breaking (min ``(invoked_at, op_id)``) node for node.

    The index depends only on the write set, never on the reads, which is
    what lets :class:`~repro.spec.stabilization.StabilizationAnalyzer`
    build it once and re-judge arbitrary suffixes cheaply.
    """

    __slots__ = (
        "writes",
        "comp",
        "resp_times",
        "pos",
        "_prefix_max_inv",
        "base_edges",
        "_chain_base",
        "_seg_base",
        "_seg_size",
        "n_nodes",
    )

    def __init__(self, writes: Sequence[Operation]) -> None:
        self.writes = list(writes)
        n_writes = len(self.writes)
        comp = [
            w
            for w in self.writes
            if w.responded_at is not None and w.complete
        ]
        comp.sort(key=lambda w: (w.responded_at, w.op_id))
        self.comp = comp
        self.resp_times: list[float] = [w.responded_at for w in comp]
        # 1-based position of each completed write in response order.
        self.pos: dict[int, int] = {
            w.op_id: p for p, w in enumerate(comp, start=1)
        }
        best = _NEG_INF
        prefix_max: list[float] = []
        for w in comp:
            if w.invoked_at > best:
                best = w.invoked_at
            prefix_max.append(best)
        self._prefix_max_inv = prefix_max

        node_of = {w.op_id: n for n, w in enumerate(self.writes)}
        self._chain_base = n_writes  # L_i lives at node chain_base + i - 1
        self._seg_base = n_writes + len(comp)
        self._seg_size = 0  # segment tree built lazily on first range query
        self.n_nodes = self._seg_base

        edges: list[tuple[int, int]] = []
        # Frontier chain: comp[i-1] -> L_i and L_{i-1} -> L_i.
        for i in range(1, len(comp) + 1):
            chain_node = self._chain_base + i - 1
            edges.append((node_of[comp[i - 1].op_id], chain_node))
            if i >= 2:
                edges.append((chain_node - 1, chain_node))
        # Real-time edges: every write hangs off the frontier of responses
        # that strictly precede its invocation (one edge per write).
        resp_times = self.resp_times
        for n, b in enumerate(self.writes):
            j = bisect_left(resp_times, b.invoked_at)
            if j:
                edges.append((self._chain_base + j - 1, n))
        self.base_edges = edges

    # ------------------------------------------------------------------
    def node_of_write(self, w: Operation) -> int:
        return self.writes.index(w)  # pragma: no cover - debugging aid

    def preceding_count(self, t: float) -> int:
        """Number of completed writes responding strictly before ``t``."""
        return bisect_left(self.resp_times, t)

    def max_invocation_before(self, j: int) -> float:
        """Latest invocation among the first ``j`` responses (-inf if none)."""
        return self._prefix_max_inv[j - 1] if j else _NEG_INF

    def first_following_write(
        self, w: Operation, r: Operation
    ) -> Optional[Operation]:
        """First write (history order) preceding ``r`` that ``w`` precedes.

        Slow-path forensic lookup used only once a real-time-maximality
        violation is already known to exist; mirrors the naive scan so
        the reported ``other`` operation is identical.
        """
        w_resp = w.responded_at
        r_inv = r.invoked_at
        for x in self.writes:
            if (
                x is not w
                and x.responded_at is not None
                and x.complete
                and x.responded_at < r_inv
                and w_resp < x.invoked_at
            ):
                return x
        return None

    # ------------------------------------------------------------------
    def _ensure_segment_tree(self) -> None:
        if self._seg_size:
            return
        k = len(self.comp)
        size = 1
        while size < k:
            size <<= 1
        self._seg_size = size
        base = self._seg_base
        self.n_nodes = base + 2 * size
        edges = self.base_edges
        # Internal structure: child -> parent, leaves fed by their writes.
        for t in range(2, 2 * size):
            edges.append((base + t, base + (t >> 1)))
        node_index = {w.op_id: n for n, w in enumerate(self.writes)}
        for p, w in enumerate(self.comp, start=1):
            edges.append((node_index[w.op_id], base + size + p - 1))

    def _cover_nodes(self, a: int, b: int) -> list[int]:
        """Canonical segment-tree nodes covering response positions [a, b]."""
        self._ensure_segment_tree()
        base, size = self._seg_base, self._seg_size
        lo = a - 1 + size
        hi = b + size
        out: list[int] = []
        while lo < hi:
            if lo & 1:
                out.append(base + lo)
                lo += 1
            if hi & 1:
                hi -= 1
                out.append(base + hi)
            lo >>= 1
            hi >>= 1
        return out

    def read_validity_edges(
        self, w: Operation, w_node: int, r_invoked_at: float
    ) -> list[tuple[int, int]]:
        """Edges asserting ``w`` is the last write preceding the read.

        Covers "every *other* completed write responding before the read
        orders before ``w``": response positions ``[1, i-1]`` via the
        frontier chain and ``[i+1, j]`` via the segment tree, where ``i``
        is ``w``'s response position and ``j`` the read's preceding count.
        """
        j = bisect_left(self.resp_times, r_invoked_at)
        i = self.pos[w.op_id]
        edges: list[tuple[int, int]] = []
        if i >= 2:
            edges.append((self._chain_base + i - 2, w_node))
        if j > i:
            edges.extend((c, w_node) for c in self._cover_nodes(i + 1, j))
        return edges

    # ------------------------------------------------------------------
    def order_with(
        self, extra_edges: Iterable[tuple[int, int]]
    ) -> Optional[list[Operation]]:
        """Kahn sort of base + extra edges; ``None`` iff cyclic.

        Auxiliary (chain / segment-tree) nodes are drained eagerly, so a
        write enters the ready heap exactly when all its *dense* precursor
        writes have been emitted — reproducing the naive checker's
        deterministic ``(invoked_at, op_id)`` tie-breaking.
        """
        n = self.n_nodes
        writes = self.writes
        n_writes = len(writes)
        indeg = [0] * n
        adj: list[list[int]] = [[] for _ in range(n)]
        for u, v in self.base_edges:
            adj[u].append(v)
            indeg[v] += 1
        for u, v in extra_edges:
            adj[u].append(v)
            indeg[v] += 1

        heap: list[tuple[float, int, int]] = []
        stack: list[int] = []
        for node in range(n_writes):
            if indeg[node] == 0:
                w = writes[node]
                heappush(heap, (w.invoked_at, w.op_id, node))
        for node in range(n_writes, n):
            if indeg[node] == 0:
                stack.append(node)

        order: list[Operation] = []
        while stack or heap:
            if stack:
                u = stack.pop()
            else:
                u = heappop(heap)[2]
                order.append(writes[u])
            for v in adj[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    if v < n_writes:
                        w = writes[v]
                        heappush(heap, (w.invoked_at, w.op_id, v))
                    else:
                        stack.append(v)
        if len(order) != n_writes:
            return None  # any cycle necessarily passes through a write
        return order


@dataclass
class ReadJudgement:
    """One completed read's verdict contribution (sweep strategy).

    Independent of which *other* reads share the history — the per-read
    clauses reference only the write set — which is what lets suffix
    checkers reuse judgements instead of re-running the checker.
    """

    read: Operation
    violations: list[Violation]
    resolved: Optional[Operation]  # write whose value the read returned
    resolved_known: bool  # False when the value matched no write
    edges: list[tuple[int, int]]  # validity constraints, index node ids


def inversion_pairs(
    settled: Sequence[Operation], resolved: dict[int, Optional[Operation]]
) -> list[tuple[int, int]]:
    """Index pairs ``(i, j)`` of settled reads with a new/old inversion.

    ``settled`` must be sorted by ``(invoked_at, op_id)``. A pair violates
    when ``settled[i] ≺ settled[j]`` but ``resolved[j] ≺ resolved[i]``.
    Sweep over response/invocation events: at each read's invocation, any
    earlier-responding read whose write was invoked after this read's
    write responded is an inversion partner. The running maximum makes the
    clean case O(R log R); partners are enumerated only on a hit.
    """
    events: list[tuple[float, int, int]] = []
    for idx, r in enumerate(settled):
        events.append((r.invoked_at, 0, idx))  # query before same-time insert
        events.append((r.responded_at, 1, idx))
    events.sort()
    inserted: list[int] = []
    max_w_invocation = _NEG_INF
    pairs: list[tuple[int, int]] = []
    for _time, kind, idx in events:
        w = resolved[settled[idx].op_id]
        if kind == 1:
            inserted.append(idx)
            if w.invoked_at > max_w_invocation:
                max_w_invocation = w.invoked_at
        elif max_w_invocation > w.responded_at:
            w_resp = w.responded_at
            for prior in inserted:
                if resolved[settled[prior].op_id].invoked_at > w_resp:
                    pairs.append((prior, idx))
    pairs.sort()
    return pairs


class RegularityChecker:
    """Decides MWMR regularity of histories (existential write order).

    Args:
        scheme: labeling scheme, used only for the diagnostic write order
            attached to verdicts (never for the regularity decision).
        initial_value: the register's conceptual initial value; reads
            preceding every write may return it.
        check_consistency: additionally report *explicit* new/old
            inversions between sequential reads whose returned writes both
            precede them — redundant with the cycle test but yields much
            clearer diagnostics, so it is on by default.
        check_termination: flag pending operations of non-crashed clients.
        algorithm: ``"sweep"`` (default, O(W log W + E) edge collection)
            or ``"naive"`` (the original O(W²) pairwise scan, kept as the
            differential-testing oracle). Verdicts are identical.
    """

    def __init__(
        self,
        scheme: Optional[LabelingScheme] = None,
        initial_value: Any = INITIAL,
        check_consistency: bool = True,
        check_termination: bool = True,
        algorithm: str = "sweep",
    ) -> None:
        if algorithm not in ("sweep", "naive"):
            raise ValueError(f"unknown checker algorithm: {algorithm!r}")
        self.scheme = scheme
        self.initial_value = initial_value
        self.check_consistency = check_consistency
        self.check_termination = check_termination
        self.algorithm = algorithm

    # ------------------------------------------------------------------
    def check(self, history: History) -> RegularityVerdict:
        if self.algorithm == "naive":
            return self._check_naive(history)
        return self._check_sweep(history)

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def values_written(
        self, writes: Sequence[Operation]
    ) -> tuple[dict[Any, list[Operation]], bool]:
        """Value → writes map plus the ambiguity flag (shared by suffixes)."""
        by_value: dict[Any, list[Operation]] = {}
        ambiguous = False
        for w in writes:
            try:
                by_value.setdefault(w.argument, []).append(w)
            except TypeError:
                ambiguous = True
        ambiguous |= any(len(v) > 1 for v in by_value.values())
        return by_value, ambiguous

    @staticmethod
    def termination_violation(op: Operation) -> Violation:
        return Violation(
            clause="termination",
            detail=f"{op!r} never completed",
            read=op if op.is_read else None,
        )

    @staticmethod
    def write_order_violation() -> Violation:
        return Violation(
            clause="write-order",
            detail=(
                "no total write order satisfies real-time precedence "
                "and all read validity constraints (constraint cycle)"
            ),
        )

    @staticmethod
    def inversion_violation(r1: Operation, r2: Operation) -> Violation:
        return Violation(
            clause="consistency",
            detail=(
                f"new/old inversion on settled writes: "
                f"{r1!r} then {r2!r}"
            ),
            read=r2,
            other=r1,
        )

    # ------------------------------------------------------------------
    # sweep strategy (default)
    # ------------------------------------------------------------------
    def _check_sweep(self, history: History) -> RegularityVerdict:
        verdict = RegularityVerdict(ok=True)
        writes = history.writes()
        ok_reads = history.completed_reads()
        verdict.checked_reads = len(ok_reads)
        verdict.aborted_reads = len(history.aborted_reads())

        by_value, verdict.ambiguous_values = self.values_written(writes)

        if self.check_termination:
            for op in history.pending():
                verdict.ok = False
                verdict.violations.append(self.termination_violation(op))

        index = WriteSweepIndex(writes)
        node_of = {w.op_id: n for n, w in enumerate(writes)}

        resolved: dict[int, Optional[Operation]] = {}
        extra_edges: list[tuple[int, int]] = []
        for r in ok_reads:
            judgement = self.judge_read(r, index, node_of, by_value)
            if judgement.violations:
                verdict.ok = False
                verdict.violations.extend(judgement.violations)
            if judgement.resolved_known:
                resolved[r.op_id] = judgement.resolved
            extra_edges.extend(judgement.edges)

        order = index.order_with(extra_edges)
        if order is None:
            verdict.ok = False
            verdict.violations.append(self.write_order_violation())
            verdict.write_order = []
        else:
            verdict.write_order = order

        if self.check_consistency and order is not None:
            settled = [
                r
                for r in ok_reads
                if resolved.get(r.op_id) is not None
                and precedes(resolved[r.op_id], r)
            ]
            settled.sort(key=lambda r: (r.invoked_at, r.op_id))
            for i, j in inversion_pairs(settled, resolved):
                verdict.ok = False
                verdict.violations.append(
                    self.inversion_violation(settled[i], settled[j])
                )
        return verdict

    def judge_read(
        self,
        r: Operation,
        index: WriteSweepIndex,
        node_of: dict[int, int],
        by_value: dict[Any, list[Operation]],
    ) -> ReadJudgement:
        """Judge one completed read against the write index (sweep path).

        Pure with respect to the other reads: violations, the resolved
        write and the validity edges depend only on the write set, so the
        result can be cached and reused across suffix checks.
        """
        judgement = ReadJudgement(
            read=r, violations=[], resolved=None, resolved_known=False, edges=[]
        )
        preceding_count = index.preceding_count(r.invoked_at)

        # Initial value?
        if r.result == self.initial_value and not _safe_get(by_value, r.result):
            judgement.resolved = None
            judgement.resolved_known = True
            if preceding_count:
                judgement.violations.append(
                    Violation(
                        clause="validity",
                        detail=(
                            f"{r!r} returned the initial value although "
                            f"{preceding_count} writes completed before it"
                        ),
                        read=r,
                    )
                )
            return judgement

        candidates = _safe_get(by_value, r.result, [])
        if not candidates:
            judgement.violations.append(
                Violation(
                    clause="validity",
                    detail=f"{r!r} returned {r.result!r}, which no write wrote",
                    read=r,
                )
            )
            return judgement
        if len(candidates) > 1:
            # Ambiguous duplicate values: pick the interpretation most
            # favourable to the protocol (a concurrent write if any, else a
            # real-time-maximal preceding one) — reported via the flag.
            for w in candidates:
                if concurrent(w, r):
                    judgement.resolved = w
                    judgement.resolved_known = True
                    return judgement
            candidates = [w for w in candidates if precedes(w, r)] or candidates
        w = candidates[-1]
        judgement.resolved = w
        judgement.resolved_known = True

        if concurrent(w, r):
            return judgement  # concurrently-written values always acceptable
        if not precedes(w, r):
            judgement.violations.append(
                Violation(
                    clause="validity",
                    detail=f"{r!r} returned {w!r}, which started only after the read ended",
                    read=r,
                    other=w,
                )
            )
            return judgement
        # w precedes r: it must be *the last* preceding write. The frontier
        # answers "does any preceding write start after w responded?" in
        # O(1); the forensic scan runs only when the answer is yes.
        if index.max_invocation_before(preceding_count) > w.responded_at:
            x = index.first_following_write(w, r)
            judgement.violations.append(
                Violation(
                    clause="validity",
                    detail=(
                        f"{r!r} returned {w!r}, but {x!r} completed "
                        f"entirely after it and before the read"
                    ),
                    read=r,
                    other=x,
                )
            )
            return judgement
        # ...and as ordering constraints for everything concurrent with w.
        judgement.edges = index.read_validity_edges(
            w, node_of[w.op_id], r.invoked_at
        )
        return judgement

    # ------------------------------------------------------------------
    # naive strategy (differential-testing oracle)
    # ------------------------------------------------------------------
    def _check_naive(self, history: History) -> RegularityVerdict:
        verdict = RegularityVerdict(ok=True)
        writes = history.writes()
        ok_reads = history.completed_reads()
        verdict.checked_reads = len(ok_reads)
        verdict.aborted_reads = len(history.aborted_reads())

        by_value, verdict.ambiguous_values = self.values_written(writes)

        if self.check_termination:
            for op in history.pending():
                verdict.ok = False
                verdict.violations.append(self.termination_violation(op))

        # -- constraint edges over writes (quadratic pairwise scan) --------
        edges: dict[int, set[int]] = {w.op_id: set() for w in writes}
        for a in writes:
            for b in writes:
                if a is not b and precedes(a, b):
                    edges[a.op_id].add(b.op_id)

        resolved: dict[int, Optional[Operation]] = {}
        for r in ok_reads:
            self._check_read_naive(r, writes, by_value, edges, resolved, verdict)

        # -- a consistent total order must exist ---------------------------
        order = _topological(writes, edges)
        if order is None:
            verdict.ok = False
            verdict.violations.append(self.write_order_violation())
            verdict.write_order = []
        else:
            verdict.write_order = order

        # -- explicit inversion diagnostics (subsumed by the cycle test) ----
        if self.check_consistency and order is not None:
            self._report_inversions_naive(ok_reads, resolved, verdict)

        return verdict

    def _check_read_naive(
        self,
        r: Operation,
        writes: list[Operation],
        by_value: dict[Any, list[Operation]],
        edges: dict[int, set[int]],
        resolved: dict[int, Optional[Operation]],
        verdict: RegularityVerdict,
    ) -> None:
        preceding = [w for w in writes if precedes(w, r)]

        # Initial value?
        if r.result == self.initial_value and not _safe_get(by_value, r.result):
            resolved[r.op_id] = None
            if preceding:
                verdict.ok = False
                verdict.violations.append(
                    Violation(
                        clause="validity",
                        detail=(
                            f"{r!r} returned the initial value although "
                            f"{len(preceding)} writes completed before it"
                        ),
                        read=r,
                    )
                )
            return

        candidates = _safe_get(by_value, r.result, [])
        if not candidates:
            verdict.ok = False
            verdict.violations.append(
                Violation(
                    clause="validity",
                    detail=f"{r!r} returned {r.result!r}, which no write wrote",
                    read=r,
                )
            )
            return
        if len(candidates) > 1:
            for w in candidates:
                if concurrent(w, r):
                    resolved[r.op_id] = w
                    return
            candidates = [w for w in candidates if precedes(w, r)] or candidates
        w = candidates[-1]
        resolved[r.op_id] = w

        if concurrent(w, r):
            return  # concurrently-written values are always acceptable
        if not precedes(w, r):
            verdict.ok = False
            verdict.violations.append(
                Violation(
                    clause="validity",
                    detail=f"{r!r} returned {w!r}, which started only after the read ended",
                    read=r,
                    other=w,
                )
            )
            return
        # w precedes r: it must be *the last* preceding write. Direct check
        # against real time for a clear message...
        for x in preceding:
            if x is not w and precedes(w, x):
                verdict.ok = False
                verdict.violations.append(
                    Violation(
                        clause="validity",
                        detail=(
                            f"{r!r} returned {w!r}, but {x!r} completed "
                            f"entirely after it and before the read"
                        ),
                        read=r,
                        other=x,
                    )
                )
                return
        # ...and as ordering constraints for everything concurrent with w.
        for x in preceding:
            if x is not w:
                edges[x.op_id].add(w.op_id)

    def _report_inversions_naive(
        self,
        reads: list[Operation],
        resolved: dict[int, Optional[Operation]],
        verdict: RegularityVerdict,
    ) -> None:
        """Explicit new/old inversion diagnostics among settled returns."""
        settled = [
            r
            for r in reads
            if resolved.get(r.op_id) is not None
            and precedes(resolved[r.op_id], r)
        ]
        settled.sort(key=lambda r: (r.invoked_at, r.op_id))
        for i, r1 in enumerate(settled):
            w1 = resolved[r1.op_id]
            for r2 in settled[i + 1:]:
                if not precedes(r1, r2):
                    continue
                w2 = resolved[r2.op_id]
                if precedes(w2, w1):
                    verdict.ok = False
                    verdict.violations.append(self.inversion_violation(r1, r2))
