"""MWMR regular-register checking.

The specification (Section II-A of the paper) is *existential*: a history
is regular iff **some** total order of the writes, consistent with
real-time precedence, validates every read. Fixing one candidate order up
front (e.g. by protocol timestamps) is unsound as a checker — the bounded
labeling relation is not transitive, so pairwise timestamp comparisons of
three mutually-concurrent writes can cycle even in perfectly regular
histories.

Fortunately the existential check reduces exactly to graph acyclicity.
Collect constraint edges over the writes:

* **real-time**: complete write ``a`` responds before write ``b`` is
  invoked ⇒ ``a`` before ``b``;
* **validity**: a completed read ``r`` returning the value of a write
  ``w`` that *precedes* ``r`` asserts that ``w`` is the **last** preceding
  write ⇒ every other write ``x`` preceding ``r`` orders before ``w``.
  (A read returning a write *concurrent* with it constrains nothing.)

A total order validating all reads exists iff this digraph is acyclic
(any topological order works). Cross-read consistency for settled returns
is subsumed: if ``r1 ≺ r2`` both return settled writes in inverted order,
the validity edges of the two reads already form a cycle. Inversions
involving *concurrent* writes are permitted — exactly the new/old
inversion a regular (non-atomic) register allows; the atomicity checker
(:mod:`repro.spec.atomicity`) is the stricter tool.

Per-read violations that need no order reasoning are reported directly:
returning a value nobody wrote, returning a write invoked only after the
read responded, returning the initial value although some write completed
before the read, or returning a preceding write that is not real-time
maximal among the preceding writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.labels.base import LabelingScheme
from repro.spec.history import History, Operation, OpStatus
from repro.spec.relations import concurrent, precedes

#: Sentinel distinguishing "register's initial value" from any written value.
INITIAL = object()


@dataclass
class Violation:
    """One specification violation with forensic context."""

    clause: str  # "validity" | "consistency" | "termination" | "write-order"
    detail: str
    read: Optional[Operation] = None
    other: Optional[Operation] = None

    def __repr__(self) -> str:
        return f"Violation({self.clause}: {self.detail})"


@dataclass
class RegularityVerdict:
    """Outcome of a regularity check."""

    ok: bool
    violations: list[Violation] = field(default_factory=list)
    checked_reads: int = 0
    aborted_reads: int = 0
    write_order: list[Operation] = field(default_factory=list)
    ambiguous_values: bool = False

    def summary(self) -> str:
        status = "REGULAR" if self.ok else "VIOLATED"
        return (
            f"{status}: {self.checked_reads} reads checked, "
            f"{self.aborted_reads} aborted, {len(self.violations)} violations"
        )


class WriteOrderCycleError(Exception):
    """The combined constraint relation over writes is cyclic."""


def _safe_get(mapping: dict[Any, Any], key: Any, default: Any = None) -> Any:
    """Dict lookup that treats unhashable garbage keys as missing."""
    try:
        return mapping.get(key, default)
    except TypeError:
        return default


def infer_write_order(
    history: History, scheme: Optional[LabelingScheme] = None
) -> list[Operation]:
    """A diagnostic total order on writes (real-time + timestamp hints).

    Used by experiment reports, *not* by the regularity decision (which is
    existential; see module docstring). Timestamp edges are added only
    where they do not contradict real time; cycles raise
    :class:`WriteOrderCycleError`.
    """
    writes = history.writes()
    edges: dict[int, set[int]] = {op.op_id: set() for op in writes}
    for a in writes:
        for b in writes:
            if a is b:
                continue
            if precedes(a, b):
                edges[a.op_id].add(b.op_id)
            elif (
                scheme is not None
                and not precedes(b, a)
                and a.timestamp is not None
                and b.timestamp is not None
                and scheme.precedes(a.timestamp, b.timestamp)
            ):
                edges[a.op_id].add(b.op_id)
    order = _topological(writes, edges)
    if order is None:
        raise WriteOrderCycleError(
            "real-time and timestamp edges over writes form a cycle"
        )
    return order


def _topological(
    writes: Sequence[Operation], edges: dict[int, set[int]]
) -> Optional[list[Operation]]:
    """Deterministic Kahn sort; ``None`` when the edges are cyclic."""
    index = {op.op_id: op for op in writes}
    indeg = {op.op_id: 0 for op in writes}
    for src, dsts in edges.items():
        for dst in dsts:
            indeg[dst] += 1
    ready = sorted(
        (op for op in writes if indeg[op.op_id] == 0),
        key=lambda op: (op.invoked_at, op.op_id),
    )
    order: list[Operation] = []
    while ready:
        op = ready.pop(0)
        order.append(op)
        fresh = []
        for dst in edges[op.op_id]:
            indeg[dst] -= 1
            if indeg[dst] == 0:
                fresh.append(index[dst])
        if fresh:
            ready.extend(fresh)
            ready.sort(key=lambda op: (op.invoked_at, op.op_id))
    if len(order) != len(writes):
        return None
    return order


class RegularityChecker:
    """Decides MWMR regularity of histories (existential write order).

    Args:
        scheme: labeling scheme, used only for the diagnostic write order
            attached to verdicts (never for the regularity decision).
        initial_value: the register's conceptual initial value; reads
            preceding every write may return it.
        check_consistency: additionally report *explicit* new/old
            inversions between sequential reads whose returned writes both
            precede them — redundant with the cycle test but yields much
            clearer diagnostics, so it is on by default.
        check_termination: flag pending operations of non-crashed clients.
    """

    def __init__(
        self,
        scheme: Optional[LabelingScheme] = None,
        initial_value: Any = INITIAL,
        check_consistency: bool = True,
        check_termination: bool = True,
    ) -> None:
        self.scheme = scheme
        self.initial_value = initial_value
        self.check_consistency = check_consistency
        self.check_termination = check_termination

    # ------------------------------------------------------------------
    def check(self, history: History) -> RegularityVerdict:
        verdict = RegularityVerdict(ok=True)
        writes = history.writes()
        ok_reads = history.completed_reads()
        verdict.checked_reads = len(ok_reads)
        verdict.aborted_reads = len(history.aborted_reads())

        # -- value -> write mapping ---------------------------------------
        by_value: dict[Any, list[Operation]] = {}
        for w in writes:
            try:
                by_value.setdefault(w.argument, []).append(w)
            except TypeError:
                verdict.ambiguous_values = True
        verdict.ambiguous_values |= any(len(v) > 1 for v in by_value.values())

        # -- termination ---------------------------------------------------
        if self.check_termination:
            for op in history.pending():
                verdict.ok = False
                verdict.violations.append(
                    Violation(
                        clause="termination",
                        detail=f"{op!r} never completed",
                        read=op if op.is_read else None,
                    )
                )

        # -- constraint edges over writes ----------------------------------
        edges: dict[int, set[int]] = {w.op_id: set() for w in writes}
        for a in writes:
            for b in writes:
                if a is not b and precedes(a, b):
                    edges[a.op_id].add(b.op_id)

        resolved: dict[int, Optional[Operation]] = {}
        for r in ok_reads:
            self._check_read(r, writes, by_value, edges, resolved, verdict)

        # -- a consistent total order must exist ---------------------------
        order = _topological(writes, edges)
        if order is None:
            verdict.ok = False
            verdict.violations.append(
                Violation(
                    clause="write-order",
                    detail=(
                        "no total write order satisfies real-time precedence "
                        "and all read validity constraints (constraint cycle)"
                    ),
                )
            )
            verdict.write_order = []
        else:
            verdict.write_order = order

        # -- explicit inversion diagnostics (subsumed by the cycle test) ----
        if self.check_consistency and order is not None:
            self._report_inversions(ok_reads, resolved, order, verdict)

        return verdict

    # ------------------------------------------------------------------
    def _check_read(
        self,
        r: Operation,
        writes: list[Operation],
        by_value: dict[Any, list[Operation]],
        edges: dict[int, set[int]],
        resolved: dict[int, Optional[Operation]],
        verdict: RegularityVerdict,
    ) -> None:
        preceding = [w for w in writes if precedes(w, r)]

        # Initial value?
        if r.result == self.initial_value and not _safe_get(by_value, r.result):
            resolved[r.op_id] = None
            if preceding:
                verdict.ok = False
                verdict.violations.append(
                    Violation(
                        clause="validity",
                        detail=(
                            f"{r!r} returned the initial value although "
                            f"{len(preceding)} writes completed before it"
                        ),
                        read=r,
                    )
                )
            return

        candidates = _safe_get(by_value, r.result, [])
        if not candidates:
            verdict.ok = False
            verdict.violations.append(
                Violation(
                    clause="validity",
                    detail=f"{r!r} returned {r.result!r}, which no write wrote",
                    read=r,
                )
            )
            return
        if len(candidates) > 1:
            # Ambiguous duplicate values: pick the interpretation most
            # favourable to the protocol (a concurrent write if any, else a
            # real-time-maximal preceding one) — reported via the flag.
            for w in candidates:
                if concurrent(w, r):
                    resolved[r.op_id] = w
                    return
            candidates = [w for w in candidates if precedes(w, r)] or candidates
        w = candidates[-1]
        resolved[r.op_id] = w

        if concurrent(w, r):
            return  # concurrently-written values are always acceptable
        if not precedes(w, r):
            verdict.ok = False
            verdict.violations.append(
                Violation(
                    clause="validity",
                    detail=f"{r!r} returned {w!r}, which started only after the read ended",
                    read=r,
                    other=w,
                )
            )
            return
        # w precedes r: it must be *the last* preceding write. Direct check
        # against real time for a clear message...
        for x in preceding:
            if x is not w and precedes(w, x):
                verdict.ok = False
                verdict.violations.append(
                    Violation(
                        clause="validity",
                        detail=(
                            f"{r!r} returned {w!r}, but {x!r} completed "
                            f"entirely after it and before the read"
                        ),
                        read=r,
                        other=x,
                    )
                )
                return
        # ...and as ordering constraints for everything concurrent with w.
        for x in preceding:
            if x is not w:
                edges[x.op_id].add(w.op_id)

    # ------------------------------------------------------------------
    def _report_inversions(
        self,
        reads: list[Operation],
        resolved: dict[int, Optional[Operation]],
        order: list[Operation],
        verdict: RegularityVerdict,
    ) -> None:
        """Explicit new/old inversion diagnostics among settled returns."""
        rank = {w.op_id: i for i, w in enumerate(order)}
        settled = [
            r
            for r in reads
            if resolved.get(r.op_id) is not None
            and precedes(resolved[r.op_id], r)
        ]
        settled.sort(key=lambda r: (r.invoked_at, r.op_id))
        for i, r1 in enumerate(settled):
            w1 = resolved[r1.op_id]
            for r2 in settled[i + 1:]:
                if not precedes(r1, r2):
                    continue
                w2 = resolved[r2.op_id]
                if precedes(w2, w1):
                    verdict.ok = False
                    verdict.violations.append(
                        Violation(
                            clause="consistency",
                            detail=(
                                f"new/old inversion on settled writes: "
                                f"{r1!r} then {r2!r}"
                            ),
                            read=r2,
                            other=r1,
                        )
                    )
