"""Operation histories.

A history is the ground truth of a run: every ``read``/``write`` invocation
and response with its global-clock instants. Checkers consume histories;
protocol code only ever *produces* them through a
:class:`HistoryRecorder` handed to the clients.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.errors import HistoryError


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class OpStatus(enum.Enum):
    PENDING = "pending"  # invoked, no response yet
    OK = "ok"  # completed normally
    ABORT = "abort"  # read aborted (transitory phase detected)
    CRASHED = "crashed"  # client crashed mid-operation (a *failed* op)


@dataclass
class Operation:
    """One register operation as the global observer sees it.

    Attributes:
        op_id: unique id within the history.
        client: invoking client pid.
        kind: read or write.
        argument: the value a write writes (``None`` for reads).
        result: the value a read returned (``None`` until response; also
            ``None`` for writes and aborted reads).
        invoked_at / responded_at: fictional-global-clock instants.
        status: lifecycle state.
        timestamp: protocol-internal timestamp attached to the operation
            (diagnostics and write-order inference; checkers can run
            without it).
    """

    op_id: int
    client: str
    kind: OpKind
    argument: Any = None
    result: Any = None
    invoked_at: float = 0.0
    responded_at: Optional[float] = None
    status: OpStatus = OpStatus.PENDING
    timestamp: Any = None

    @property
    def complete(self) -> bool:
        return self.status in (OpStatus.OK, OpStatus.ABORT)

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    def __repr__(self) -> str:
        body = (
            f"write({self.argument!r})"
            if self.is_write
            else f"read()->{self.result!r}"
        )
        end = "…" if self.responded_at is None else f"{self.responded_at:.2f}"
        return (
            f"Op#{self.op_id}[{self.client} {body} "
            f"{self.status.value} {self.invoked_at:.2f}-{end}]"
        )


class History:
    """An append-only collection of operations with query helpers."""

    def __init__(self) -> None:
        self.operations: list[Operation] = []
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def invoke(
        self,
        client: str,
        kind: OpKind,
        at: float,
        argument: Any = None,
    ) -> Operation:
        op = Operation(
            op_id=next(self._ids),
            client=client,
            kind=kind,
            argument=argument,
            invoked_at=at,
        )
        self.operations.append(op)
        return op

    def respond(
        self,
        op: Operation,
        at: float,
        status: OpStatus = OpStatus.OK,
        result: Any = None,
        timestamp: Any = None,
    ) -> None:
        if op.status is not OpStatus.PENDING:
            raise HistoryError(f"double response for {op!r}")
        if at < op.invoked_at:
            raise HistoryError(
                f"response before invocation for {op!r}: {at} < {op.invoked_at}"
            )
        op.responded_at = at
        op.status = status
        op.result = result
        if timestamp is not None:
            op.timestamp = timestamp

    def mark_crashed(self, client: str, at: float) -> None:
        """Fail every pending operation of ``client`` (crash semantics)."""
        for op in self.operations:
            if op.client == client and op.status is OpStatus.PENDING:
                op.responded_at = at
                op.status = OpStatus.CRASHED

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def reads(self, complete_only: bool = False) -> list[Operation]:
        return [
            op
            for op in self.operations
            if op.is_read and (op.complete or not complete_only)
        ]

    def writes(self, complete_only: bool = False) -> list[Operation]:
        return [
            op
            for op in self.operations
            if op.is_write and (op.complete or not complete_only)
        ]

    def completed_reads(self) -> list[Operation]:
        return [op for op in self.operations if op.is_read and op.status is OpStatus.OK]

    def aborted_reads(self) -> list[Operation]:
        return [
            op for op in self.operations if op.is_read and op.status is OpStatus.ABORT
        ]

    def pending(self) -> list[Operation]:
        return [op for op in self.operations if op.status is OpStatus.PENDING]

    def after(self, t: float) -> "History":
        """Sub-history of operations invoked at or after time ``t``.

        Operations straddling ``t`` (invoked before, responding after) are
        *excluded*; pseudo-stabilization evaluates specification suffixes
        over operations that begin inside the suffix.
        """
        sub = History()
        sub.operations = [op for op in self.operations if op.invoked_at >= t]
        return sub

    def filtered(self, pred: Callable[[Operation], bool]) -> "History":
        sub = History()
        sub.operations = [op for op in self.operations if pred(op)]
        return sub


class HistoryRecorder:
    """The write-side facade clients receive.

    It binds a :class:`History` to a clock source so protocol code never
    handles raw times; clients call ``invoked`` / ``responded``.
    """

    def __init__(self, history: History, clock: Callable[[], float]) -> None:
        self.history = history
        self._clock = clock

    def invoked(self, client: str, kind: OpKind, argument: Any = None) -> Operation:
        return self.history.invoke(client, kind, self._clock(), argument=argument)

    def responded(
        self,
        op: Operation,
        status: OpStatus = OpStatus.OK,
        result: Any = None,
        timestamp: Any = None,
    ) -> None:
        self.history.respond(
            op, self._clock(), status=status, result=result, timestamp=timestamp
        )

    def crashed(self, client: str) -> None:
        self.history.mark_crashed(client, self._clock())
