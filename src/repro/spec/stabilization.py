"""Pseudo-stabilization evaluation (Definition 1, f-BTPS).

A protocol is f-Byzantine-tolerant pseudo-stabilizing when every execution
from an arbitrary configuration has a *suffix* satisfying the register
specification. The paper's convergence argument pins the suffix start to
the completion of the first write() that succeeds the last transient fault
(Assumption 1 + the Pseudo-stabilization paragraph of Section IV-C).

:func:`evaluate_stabilization` takes the full history, the time of the last
transient fault, and a regularity checker; it

* locates the first write completing after the fault (the *convergence
  point*),
* checks the specification on the suffix of operations invoked after it,
* and reports convergence metrics: how long (global-clock time) and how
  many operations the system needed, plus how many pre-convergence reads
  misbehaved (allowed by pseudo-stabilization, interesting to measure).

Because every candidate suffix keeps the *same write set* (only the reads
are filtered), the sweep checker's per-read judgements and write index are
suffix-invariant. :class:`StabilizationAnalyzer` exploits this: it builds
the sorted index and judges each read exactly once, then assembles the
verdict for any suffix start in O(W + E) — instead of re-running the full
checker per candidate — and binary-searches the earliest stable point
(suffix verdicts are monotone in the start time: a later start can only
drop reads, hence constraints, hence violations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.spec.history import History, Operation, OpStatus
from repro.spec.regularity import (
    RegularityChecker,
    RegularityVerdict,
    ReadJudgement,
    WriteSweepIndex,
    inversion_pairs,
    precedes,
)

_NEG_INF = float("-inf")


@dataclass
class StabilizationReport:
    """Outcome of a pseudo-stabilization evaluation."""

    stabilized: bool
    convergence_point: Optional[float]  # completion time of the anchor write
    anchor_write: Optional[Operation]
    suffix_verdict: Optional[RegularityVerdict]
    prefix_read_anomalies: int = 0  # reads before convergence violating spec
    suffix_reads: int = 0
    convergence_latency: Optional[float] = None  # fault time -> convergence

    def summary(self) -> str:
        if not self.stabilized:
            return "NOT STABILIZED: " + (
                self.suffix_verdict.summary()
                if self.suffix_verdict
                else "no write completed after the fault"
            )
        return (
            f"STABILIZED at t={self.convergence_point:.2f} "
            f"(latency {self.convergence_latency:.2f}); suffix: "
            f"{self.suffix_verdict.summary()}; prefix anomalies: "
            f"{self.prefix_read_anomalies}"
        )


def first_write_completing_after(
    history: History, t: float
) -> Optional[Operation]:
    """The earliest-completing write executed *entirely* after ``t``.

    A write merely straddling the fault is no convergence anchor: its
    stores may predate the strike and be corrupted away right after —
    Assumption 1 speaks of the first write that *succeeds* the transient
    fault, i.e. starts after it.
    """
    candidates = [
        w
        for w in history.writes()
        if w.status is OpStatus.OK
        and w.responded_at is not None
        and w.invoked_at >= t
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda w: (w.responded_at, w.op_id))


class StabilizationAnalyzer:
    """Incremental suffix checking over one history.

    Construction performs the expensive, suffix-invariant work once: the
    response-sorted :class:`WriteSweepIndex`, the value→writes map, and
    one :class:`ReadJudgement` per completed read. After that,
    :meth:`suffix_verdict` assembles a full :class:`RegularityVerdict` for
    any suffix start in O(W + E_suffix) — one topological sort over the
    prebuilt graph with the surviving reads' cached edges — producing
    *exactly* the verdict ``checker.check(history.filtered(...))`` would,
    violation strings and write order included.

    Args:
        history: the complete run history (never mutated).
        checker: supplies configuration (initial value, clause toggles);
            must use the sweep algorithm.
    """

    def __init__(self, history: History, checker: RegularityChecker) -> None:
        if checker.algorithm != "sweep":
            raise ValueError(
                "StabilizationAnalyzer requires a sweep-algorithm checker"
            )
        self.history = history
        self.checker = checker
        writes = history.writes()
        self.index = WriteSweepIndex(writes)
        self._node_of = {w.op_id: n for n, w in enumerate(writes)}
        self._by_value, self._ambiguous = checker.values_written(writes)
        self._ok_reads = history.completed_reads()
        self._aborted_read_invocations = [
            r.invoked_at for r in history.aborted_reads()
        ]
        self._pending = history.pending()
        self.judgements: list[ReadJudgement] = [
            checker.judge_read(r, self.index, self._node_of, self._by_value)
            for r in self._ok_reads
        ]
        # Settled reads and their inversion pairs over the *full* history;
        # the pairwise inversion condition does not depend on which other
        # reads survive a suffix, so suffix pairs are a filtered subset.
        resolved = {
            j.read.op_id: j.resolved
            for j in self.judgements
            if j.resolved_known
        }
        self._settled = sorted(
            (
                r
                for r in self._ok_reads
                if resolved.get(r.op_id) is not None
                and precedes(resolved[r.op_id], r)
            ),
            key=lambda r: (r.invoked_at, r.op_id),
        )
        self._all_pairs = (
            inversion_pairs(self._settled, resolved)
            if checker.check_consistency and self._settled
            else []
        )
        self._full_verdict: Optional[RegularityVerdict] = None

    # ------------------------------------------------------------------
    def suffix_verdict(self, point: float = _NEG_INF) -> RegularityVerdict:
        """Verdict for the suffix keeping all writes and reads invoked >= point."""
        checker = self.checker
        verdict = RegularityVerdict(ok=True)
        live = [j for j in self.judgements if j.read.invoked_at >= point]
        verdict.checked_reads = len(live)
        verdict.aborted_reads = sum(
            1 for t in self._aborted_read_invocations if t >= point
        )
        verdict.ambiguous_values = self._ambiguous

        if checker.check_termination:
            for op in self._pending:
                if op.is_write or op.invoked_at >= point:
                    verdict.ok = False
                    verdict.violations.append(
                        checker.termination_violation(op)
                    )

        extra_edges: list[tuple[int, int]] = []
        for j in live:
            if j.violations:
                verdict.ok = False
                verdict.violations.extend(j.violations)
            extra_edges.extend(j.edges)

        order = self.index.order_with(extra_edges)
        if order is None:
            verdict.ok = False
            verdict.violations.append(checker.write_order_violation())
            verdict.write_order = []
        else:
            verdict.write_order = order

        if checker.check_consistency and order is not None:
            settled = self._settled
            for i, j in self._all_pairs:
                if settled[i].invoked_at >= point and settled[j].invoked_at >= point:
                    verdict.ok = False
                    verdict.violations.append(
                        checker.inversion_violation(settled[i], settled[j])
                    )
        return verdict

    def full_verdict(self) -> RegularityVerdict:
        """The whole-history verdict (cached)."""
        if self._full_verdict is None:
            self._full_verdict = self.suffix_verdict(_NEG_INF)
        return self._full_verdict

    def prefix_read_anomalies(self, point: float) -> int:
        """Reads invoked before ``point`` that violate the whole-history spec."""
        if not any(
            op.is_read and op.invoked_at < point for op in self.history
        ):
            return 0
        return sum(
            1
            for v in self.full_verdict().violations
            if v.read is not None and v.read.invoked_at < point
        )

    def earliest_stable_point(
        self,
        candidates: Sequence[float],
        allow_aborts: bool = False,
    ) -> Optional[float]:
        """Smallest candidate start whose suffix satisfies the spec.

        ``candidates`` must be sorted ascending. Suffix acceptability is
        monotone in the start time (later start ⇒ subset of reads ⇒ subset
        of violations, and abort counts only shrink), so a binary search
        over the candidates needs O(log n) verdict assemblies instead of n
        full checks. Returns ``None`` when even the last candidate fails.
        """

        def stable(point: float) -> bool:
            v = self.suffix_verdict(point)
            return v.ok and (allow_aborts or v.aborted_reads == 0)

        lo, hi = 0, len(candidates) - 1
        if hi < 0 or not stable(candidates[hi]):
            return None
        while lo < hi:
            mid = (lo + hi) // 2
            if stable(candidates[mid]):
                hi = mid
            else:
                lo = mid + 1
        return candidates[lo]


class IncrementalStabilization:
    """Analyzer cache over a *growing* history (the chaos monitor's feed).

    The chaos engine judges the prefix history at every monitor checkpoint
    while the run is still executing. Rebuilding a
    :class:`StabilizationAnalyzer` from scratch at each checkpoint would
    redo the sorted write index and every read judgement; this helper
    rebuilds only when the history's settled-operation census changed
    since the last checkpoint and returns the cached analyzer otherwise —
    checkpoints taken during a stall (partition open, nothing completing)
    cost O(1).

    The caller owns the history object and keeps appending to it; the
    census (operation count, settled count) is what detects growth, so the
    cache never serves judgements computed before an operation completed.
    """

    def __init__(self, history: History, checker: RegularityChecker) -> None:
        if checker.algorithm != "sweep":
            raise ValueError(
                "IncrementalStabilization requires a sweep-algorithm checker"
            )
        self.history = history
        self.checker = checker
        self.rebuilds = 0  # observability: how often the cache missed
        self._census: Optional[tuple[int, int]] = None
        self._analyzer: Optional[StabilizationAnalyzer] = None

    def _current_census(self) -> tuple[int, int]:
        settled = sum(
            1
            for op in self.history
            if op.status is not OpStatus.PENDING
        )
        return (len(self.history), settled)

    def analyzer(self) -> StabilizationAnalyzer:
        """The up-to-date analyzer (rebuilt only on history growth)."""
        census = self._current_census()
        if self._analyzer is None or census != self._census:
            self._analyzer = StabilizationAnalyzer(self.history, self.checker)
            self._census = census
            self.rebuilds += 1
        return self._analyzer

    def full_verdict(self) -> RegularityVerdict:
        """Whole-prefix verdict at this instant (cached per census)."""
        return self.analyzer().full_verdict()

    def suffix_verdict(self, point: float) -> RegularityVerdict:
        return self.analyzer().suffix_verdict(point)


def evaluate_stabilization(
    history: History,
    checker: RegularityChecker,
    last_fault_time: float = 0.0,
    allow_aborts: bool = False,
) -> StabilizationReport:
    """Decide pseudo-stabilization of a faulted run.

    The specification is evaluated on the sub-history of operations invoked
    after the anchor write completes (reads straddling the convergence
    point belong to the pre-convergence regime and are only *counted*, not
    judged against the suffix specification).

    Post-convergence read *aborts* count as failures by default: Lemma 7
    proves that once the anchor write completed, reads return real values
    — an aborting suffix means the deployment is too small or too faulty
    (``allow_aborts=True`` relaxes this for diagnostic sweeps).

    With a sweep-algorithm checker (the default) the suffix and the
    whole-history verdicts come from one shared
    :class:`StabilizationAnalyzer` index instead of two independent full
    checks; a naive-algorithm checker falls back to the direct evaluation.
    """
    anchor = first_write_completing_after(history, last_fault_time)
    if anchor is None or anchor.responded_at is None:
        return StabilizationReport(
            stabilized=False,
            convergence_point=None,
            anchor_write=None,
            suffix_verdict=None,
        )
    point = anchor.responded_at
    # The suffix keeps every write (the anchor may have been invoked
    # before the fault and straddled it; pre-fault writes whose values
    # legitimately survive corruption are also fair returns for reads
    # concurrent with them — the validity constraints order everything)
    # but only the reads invoked after the convergence point: earlier
    # reads belong to the pre-convergence regime that pseudo-stabilization
    # explicitly tolerates.
    if checker.algorithm == "sweep":
        analyzer = StabilizationAnalyzer(history, checker)
        verdict = analyzer.suffix_verdict(point)
        prefix_anomalies = analyzer.prefix_read_anomalies(point)
    else:
        suffix = history.filtered(
            lambda op: op.is_write or (op.is_read and op.invoked_at >= point)
        )
        verdict = checker.check(suffix)

        # Count pre-convergence read anomalies for the record: reads
        # invoked before the convergence point, judged against the *whole*
        # history.
        prefix_reads = history.filtered(
            lambda op: op.is_read and op.invoked_at < point
        )
        prefix_anomalies = 0
        if len(prefix_reads) > 0:
            whole = checker.check(history)
            prefix_ids = {op.op_id for op in prefix_reads}
            prefix_anomalies = sum(
                1
                for v in whole.violations
                if v.read is not None and v.read.op_id in prefix_ids
            )

    stabilized = verdict.ok and (allow_aborts or verdict.aborted_reads == 0)
    return StabilizationReport(
        stabilized=stabilized,
        convergence_point=point,
        anchor_write=anchor,
        suffix_verdict=verdict,
        prefix_read_anomalies=prefix_anomalies,
        suffix_reads=verdict.checked_reads,
        convergence_latency=point - last_fault_time,
    )
