"""Pseudo-stabilization evaluation (Definition 1, f-BTPS).

A protocol is f-Byzantine-tolerant pseudo-stabilizing when every execution
from an arbitrary configuration has a *suffix* satisfying the register
specification. The paper's convergence argument pins the suffix start to
the completion of the first write() that succeeds the last transient fault
(Assumption 1 + the Pseudo-stabilization paragraph of Section IV-C).

:func:`evaluate_stabilization` takes the full history, the time of the last
transient fault, and a regularity checker; it

* locates the first write completing after the fault (the *convergence
  point*),
* checks the specification on the suffix of operations invoked after it,
* and reports convergence metrics: how long (global-clock time) and how
  many operations the system needed, plus how many pre-convergence reads
  misbehaved (allowed by pseudo-stabilization, interesting to measure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.spec.history import History, Operation, OpStatus
from repro.spec.regularity import RegularityChecker, RegularityVerdict


@dataclass
class StabilizationReport:
    """Outcome of a pseudo-stabilization evaluation."""

    stabilized: bool
    convergence_point: Optional[float]  # completion time of the anchor write
    anchor_write: Optional[Operation]
    suffix_verdict: Optional[RegularityVerdict]
    prefix_read_anomalies: int = 0  # reads before convergence violating spec
    suffix_reads: int = 0
    convergence_latency: Optional[float] = None  # fault time -> convergence

    def summary(self) -> str:
        if not self.stabilized:
            return "NOT STABILIZED: " + (
                self.suffix_verdict.summary()
                if self.suffix_verdict
                else "no write completed after the fault"
            )
        return (
            f"STABILIZED at t={self.convergence_point:.2f} "
            f"(latency {self.convergence_latency:.2f}); suffix: "
            f"{self.suffix_verdict.summary()}; prefix anomalies: "
            f"{self.prefix_read_anomalies}"
        )


def first_write_completing_after(
    history: History, t: float
) -> Optional[Operation]:
    """The earliest-completing write executed *entirely* after ``t``.

    A write merely straddling the fault is no convergence anchor: its
    stores may predate the strike and be corrupted away right after —
    Assumption 1 speaks of the first write that *succeeds* the transient
    fault, i.e. starts after it.
    """
    candidates = [
        w
        for w in history.writes()
        if w.status is OpStatus.OK
        and w.responded_at is not None
        and w.invoked_at >= t
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda w: (w.responded_at, w.op_id))


def evaluate_stabilization(
    history: History,
    checker: RegularityChecker,
    last_fault_time: float = 0.0,
    allow_aborts: bool = False,
) -> StabilizationReport:
    """Decide pseudo-stabilization of a faulted run.

    The specification is evaluated on the sub-history of operations invoked
    after the anchor write completes (reads straddling the convergence
    point belong to the pre-convergence regime and are only *counted*, not
    judged against the suffix specification).

    Post-convergence read *aborts* count as failures by default: Lemma 7
    proves that once the anchor write completed, reads return real values
    — an aborting suffix means the deployment is too small or too faulty
    (``allow_aborts=True`` relaxes this for diagnostic sweeps).
    """
    anchor = first_write_completing_after(history, last_fault_time)
    if anchor is None or anchor.responded_at is None:
        return StabilizationReport(
            stabilized=False,
            convergence_point=None,
            anchor_write=None,
            suffix_verdict=None,
        )
    point = anchor.responded_at
    # The suffix keeps every write (the anchor may have been invoked
    # before the fault and straddled it; pre-fault writes whose values
    # legitimately survive corruption are also fair returns for reads
    # concurrent with them — the validity constraints order everything)
    # but only the reads invoked after the convergence point: earlier
    # reads belong to the pre-convergence regime that pseudo-stabilization
    # explicitly tolerates.
    suffix = history.filtered(
        lambda op: op.is_write or (op.is_read and op.invoked_at >= point)
    )
    verdict = checker.check(suffix)

    # Count pre-convergence read anomalies for the record: reads invoked
    # before the convergence point, judged against the *whole* history.
    prefix_reads = history.filtered(
        lambda op: op.is_read and op.invoked_at < point
    )
    prefix_anomalies = 0
    if len(prefix_reads) > 0:
        whole = checker.check(history)
        prefix_ids = {op.op_id for op in prefix_reads}
        prefix_anomalies = sum(
            1
            for v in whole.violations
            if v.read is not None and v.read.op_id in prefix_ids
        )

    stabilized = verdict.ok and (allow_aborts or verdict.aborted_reads == 0)
    return StabilizationReport(
        stabilized=stabilized,
        convergence_point=point,
        anchor_write=anchor,
        suffix_verdict=verdict,
        prefix_read_anomalies=prefix_anomalies,
        suffix_reads=verdict.checked_reads,
        convergence_latency=point - last_fault_time,
    )
