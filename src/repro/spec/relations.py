"""Real-time precedence between operations (Section II-A).

``op ≺ op'`` iff the response of ``op`` occurs before the invocation of
``op'`` on the fictional global clock; otherwise the operations are
concurrent. Incomplete operations (pending or crashed mid-flight) never
precede anything — they have no response event.
"""

from __future__ import annotations

from repro.spec.history import Operation


def precedes(a: Operation, b: Operation) -> bool:
    """True iff ``a`` responds strictly before ``b`` is invoked."""
    if a.responded_at is None or not a.complete:
        return False
    return a.responded_at < b.invoked_at


def concurrent(a: Operation, b: Operation) -> bool:
    """Neither operation precedes the other (and they are distinct)."""
    if a is b:
        return False
    return not precedes(a, b) and not precedes(b, a)


def strictly_follows(a: Operation, b: Operation) -> bool:
    """``a`` strictly follows ``b``: ``b ≺ a``."""
    return precedes(b, a)
