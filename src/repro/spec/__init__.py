"""Register specifications and history checkers.

Protocol runs record an :class:`~repro.spec.history.History` of operation
invocation/response events stamped with the *fictional global clock*
(simulation time, invisible to protocol code). This package then decides,
after the fact, whether the history satisfies:

* **Termination** — every operation by a correct client completes;
* **Validity** — each read returns the last value written before its
  invocation or a concurrently-written value;
* **Consistency** — two reads perceive the writes that do not strictly
  follow either of them in the same order (no new/old inversion between
  sequential reads);
* **MWMR regularity** — the conjunction of the above w.r.t. a total write
  order consistent with real time (Shao-Pierce-Welch style);
* **pseudo-stabilization** — a suffix of the run satisfies the register
  specification, the suffix starting no later than the first write that
  completes after the last transient fault (Definition 1, f-BTPS);
* **atomicity/linearizability** — a strictly stronger condition used to
  separate regular from atomic behaviour in the experiments.

Tests assert on checker verdicts, so the checkers themselves are heavily
unit- and property-tested on hand-crafted histories with known verdicts.
"""

from repro.spec.history import Operation, OpKind, OpStatus, History, HistoryRecorder
from repro.spec.relations import precedes, concurrent
from repro.spec.regularity import (
    RegularityVerdict,
    RegularityChecker,
    infer_write_order,
)
from repro.spec.atomicity import check_linearizable
from repro.spec.quiescence import (
    Assumption2Report,
    check_assumption2,
    quiescent_windows,
    write_bursts,
)
from repro.spec.safety import SafetyChecker, SafetyVerdict
from repro.spec.stabilization import StabilizationReport, evaluate_stabilization

__all__ = [
    "Operation",
    "OpKind",
    "OpStatus",
    "History",
    "HistoryRecorder",
    "precedes",
    "concurrent",
    "RegularityVerdict",
    "RegularityChecker",
    "infer_write_order",
    "check_linearizable",
    "Assumption2Report",
    "check_assumption2",
    "quiescent_windows",
    "write_bursts",
    "SafetyChecker",
    "SafetyVerdict",
    "StabilizationReport",
    "evaluate_stabilization",
]
