"""Determinism & stabilization-soundness static analysis (``repro lint``).

Six rule families guard the properties every experimental claim in this
reproduction rests on:

* **DET** — no hidden nondeterminism: no wall clocks outside profiling,
  no module-level RNG or OS entropy, no hash-ordered iteration on the
  message path, no ``id()``/``hash()`` in program logic;
* **STAB** — corruption-surface completeness: every process-local state
  variable is declared in :data:`repro.sim.faults.CORRUPTION_REGISTRY`
  and every corruptible one is provably reached by the fault injector;
* **PAR** — pool safety: workers handed to :mod:`repro.harness.parallel`
  pickle and share no mutable module state;
* **NET** — layering: the protocol never imports the transport;
* **ASYNC** — await-point discipline in the live tier: no torn
  read-modify-writes across awaits, no orphaned tasks, no blocking calls
  or swallowed cancellation in coroutines, no loop-bound primitives
  built outside a running loop;
* **WIRE** — codec conformance: v2 tags have both dispatch arms, every
  registered payload type is in the differential fuzz corpus, and live
  hosting-layer state is declared in the corruption registry.

The engine is two-phase: phase 1 builds a cross-module
:class:`~repro.analysis.model.ProgramModel` (class-state and wire-schema
tables), phase 2 runs every rule with model + AST together.

See ``docs/ANALYSIS.md`` for the rule-by-rule rationale and its tie to
the paper's theorems.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Rule,
    RULE_REGISTRY,
    all_rules,
    register_rule,
)
from repro.analysis.engine import (
    analyze_module,
    analyze_modules,
    analyze_paths,
    default_target,
    load_modules,
)
from repro.analysis.model import (
    ProgramModel,
    build_model,
    load_model_cache,
    model_cache_key,
    save_model_cache,
)
from repro.analysis.report import (
    render_github,
    render_json,
    render_rule_list,
    render_text,
)

__all__ = [
    "Finding",
    "ModuleInfo",
    "ProgramModel",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "analyze_module",
    "analyze_modules",
    "analyze_paths",
    "apply_baseline",
    "build_model",
    "default_target",
    "load_baseline",
    "load_model_cache",
    "load_modules",
    "model_cache_key",
    "register_rule",
    "render_github",
    "render_json",
    "render_rule_list",
    "render_text",
    "save_model_cache",
    "write_baseline",
]
