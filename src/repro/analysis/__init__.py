"""Determinism & stabilization-soundness static analysis (``repro lint``).

Three rule families guard the properties every experimental claim in this
reproduction rests on:

* **DET** — no hidden nondeterminism: no wall clocks outside profiling,
  no module-level RNG or OS entropy, no hash-ordered iteration on the
  message path, no ``id()``/``hash()`` in program logic;
* **STAB** — corruption-surface completeness: every process-local state
  variable is declared in :data:`repro.sim.faults.CORRUPTION_REGISTRY`
  and every corruptible one is provably reached by the fault injector;
* **PAR** — pool safety: workers handed to :mod:`repro.harness.parallel`
  pickle and share no mutable module state.

See ``docs/ANALYSIS.md`` for the rule-by-rule rationale and its tie to
the paper's theorems.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Rule,
    RULE_REGISTRY,
    all_rules,
    register_rule,
)
from repro.analysis.engine import analyze_module, analyze_paths, default_target
from repro.analysis.report import render_json, render_rule_list, render_text

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "analyze_module",
    "analyze_paths",
    "apply_baseline",
    "default_target",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_rule_list",
    "render_text",
    "write_baseline",
]
