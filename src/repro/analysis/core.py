"""Lint-framework core: findings, modules, rules, and the rule registry.

The reproduction's headline claims — deterministic adversary replay,
byte-identical serial-vs-pooled campaigns, restart determinism, and
non-vacuous stabilization experiments — are *global* properties of the
codebase, not of any one function. This package enforces them statically:
every rule is an AST pass over one module, reporting :class:`Finding`
records that the engine aggregates, the baseline filters, and the CLI
renders (``repro lint``).

Suppression: a finding on a line carrying ``# lint-ok: RULE1[, RULE2]``
is dropped for exactly those rules; a bare ``# lint-ok`` drops every rule
on that line. Suppressions are for *justified* exceptions — the comment
sits in the diff where a reviewer sees it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model imports core)
    from repro.analysis.model import ProgramModel

#: Marks a line whose suppression applies to every rule.
SUPPRESS_ALL = "*"

# Rule ids are FAMILY + 3 digits with a family name of any length ≥ 2
# (DET001, STAB001, ASYNC001, ...). Keeping the length open-ended means a
# new family never silently degrades its suppression comments into
# non-matches (which would *unsuppress*) or bare lint-ok markers (which
# would suppress everything).
_RULE_ID_PATTERN = r"[A-Z]{2,}\d{3}"

_SUPPRESS_RE = re.compile(
    r"#\s*lint-ok\b(?:\s*:\s*(?P<rules>"
    + _RULE_ID_PATTERN
    + r"(?:\s*,\s*"
    + _RULE_ID_PATTERN
    + r")*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``context`` is the stripped source line: baseline matching keys on
    ``(rule_id, path, context)`` so entries survive line-number drift.
    """

    path: str
    line: int
    rule_id: str
    message: str
    context: str = ""
    col: int = 0

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule_id, self.path, self.context)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus the metadata rules need.

    ``relpath`` is the package-relative posix path (``repro/core/server.py``)
    — rules scope themselves by it, so tests can exercise path-scoped rules
    on fixture sources by supplying a crafted relpath. ``srcpath`` is the
    on-disk origin when the module came from a file (None for synthetic
    sources); the model builder uses it to locate the test tree, and the
    GitHub reporter to emit repo-relative annotation paths.
    """

    relpath: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    srcpath: Optional[Path] = None

    @classmethod
    def from_source(
        cls, source: str, relpath: str, srcpath: Optional[Path] = None
    ) -> "ModuleInfo":
        tree = ast.parse(source)
        lines = source.splitlines()
        suppressions: dict[int, set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            if "lint-ok" not in text:
                continue
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            spec = match.group("rules")
            if spec is None:
                suppressions[lineno] = {SUPPRESS_ALL}
            else:
                suppressions.setdefault(lineno, set()).update(
                    rule.strip() for rule in spec.split(",")
                )
        return cls(
            relpath=relpath,
            tree=tree,
            lines=lines,
            suppressions=suppressions,
            srcpath=srcpath,
        )

    @classmethod
    def from_file(cls, path: Path, relpath: Optional[str] = None) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        return cls.from_source(
            source, relpath or package_relpath(path), srcpath=path
        )

    # ------------------------------------------------------------------
    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        rules = self.suppressions.get(lineno)
        return rules is not None and (rule_id in rules or SUPPRESS_ALL in rules)

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=self.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
            context=self.source_line(line),
        )

    def finding_at(self, line: int, rule_id: str, message: str) -> Finding:
        """Build a :class:`Finding` from a bare line number — for rules
        whose evidence comes from the program model, not an AST node."""
        return Finding(
            path=self.relpath,
            line=line,
            rule_id=rule_id,
            message=message,
            context=self.source_line(line),
        )


def package_relpath(path: Path) -> str:
    """Posix path from the last ``repro`` package component, else the name.

    ``/x/src/repro/core/server.py`` → ``repro/core/server.py``; paths not
    under a ``repro`` directory collapse to their filename, keeping
    path-scoped rules inert on foreign files.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


class Rule:
    """One static check. Subclasses set the class attrs and ``check``.

    ``check`` receives the module *and* the phase-1
    :class:`~repro.analysis.model.ProgramModel` built over the whole lint
    target, and yields raw findings; the engine applies suppressions and
    the baseline afterwards, so rules stay oblivious to both mechanisms.
    Rules that need no cross-module facts simply ignore ``model``.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(
        self, module: ModuleInfo, model: "ProgramModel"
    ) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def run(
        self, module: ModuleInfo, model: "ProgramModel"
    ) -> Iterator[Finding]:
        """``check`` minus suppressed lines."""
        for finding in self.check(module, model):
            if not module.suppressed(finding.line, self.rule_id):
                yield finding


#: rule_id -> rule class, populated by :func:`register_rule`.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to :data:`RULE_REGISTRY`."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(only: Optional[Iterable[str]] = None) -> list[Rule]:
    """Instantiate the registered rules (optionally a subset), id-sorted."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    wanted = None if only is None else set(only)
    rules = []
    for rule_id in sorted(RULE_REGISTRY):
        if wanted is None or rule_id in wanted:
            rules.append(RULE_REGISTRY[rule_id]())
    if wanted is not None:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
    return rules
