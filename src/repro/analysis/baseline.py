"""Baseline files: grandfathering *justified* findings, nothing else.

A baseline entry matches on ``(rule, path, context)`` — the stripped
source line — so entries survive unrelated edits shifting line numbers,
but die the moment the offending line itself changes (forcing a fresh
decision). Matching is multiset-style: two identical offending lines need
two entries.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Serialize ``findings`` as the new baseline at ``path``."""
    entries = [
        {
            "rule": f.rule_id,
            "path": f.path,
            "context": f.context,
            "line": f.line,  # informational only; matching ignores it
        }
        for f in sorted(findings)
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Counter:
    """Fingerprint multiset from a baseline file (empty if absent)."""
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r}"
        )
    return Counter(
        (entry["rule"], entry["path"], entry["context"])
        for entry in payload.get("entries", [])
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined) against the fingerprint multiset."""
    budget = Counter(baseline)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        if budget[finding.fingerprint] > 0:
            budget[finding.fingerprint] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    return new, matched
