"""Text, JSON, and GitHub-annotation renderers for lint findings."""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence

from repro.analysis.core import RULE_REGISTRY, Finding, all_rules


def render_text(findings: Sequence[Finding], baselined: int = 0) -> str:
    """Human-readable report: one line per finding plus a per-rule tally."""
    lines = [f.render() for f in findings]
    if findings:
        tally: dict[str, int] = {}
        for f in findings:
            tally[f.rule_id] = tally.get(f.rule_id, 0) + 1
        lines.append("")
        for rule_id in sorted(tally):
            rule_cls = RULE_REGISTRY.get(rule_id)
            title = f" ({rule_cls.title})" if rule_cls else ""
            lines.append(f"{rule_id}{title}: {tally[rule_id]}")
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append("clean: no findings")
    if baselined:
        lines.append(f"{baselined} baselined finding(s) suppressed")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], baselined: int = 0) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [
            {
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "context": f.context,
            }
            for f in sorted(findings)
        ],
        "count": len(findings),
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_workflow_data(text: str) -> str:
    # GitHub workflow-command data: %, CR, LF must be URL-style escaped.
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(
    findings: Sequence[Finding],
    baselined: int = 0,
    pathmap: Optional[Mapping[str, str]] = None,
) -> str:
    """GitHub Actions workflow commands — one ``::error`` per finding, so
    CI findings annotate the PR diff inline.

    ``pathmap`` maps a finding's package relpath to the repo-relative
    file path (``repro/net/wire.py`` → ``src/repro/net/wire.py``); without
    it the relpath is emitted as-is, which GitHub simply fails to anchor.
    """
    lines = []
    for f in sorted(findings):
        path = pathmap.get(f.path, f.path) if pathmap else f.path
        message = _escape_workflow_data(f"{f.rule_id} {f.message}")
        lines.append(
            f"::error file={path},line={f.line},col={f.col},"
            f"title={f.rule_id}::{message}"
        )
    lines.append(
        f"{len(findings)} finding(s)" if findings else "clean: no findings"
    )
    if baselined:
        lines.append(f"{baselined} baselined finding(s) suppressed")
    return "\n".join(lines)


def render_rule_list() -> str:
    """The rule catalogue (``repro lint --list-rules``)."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
