"""Shared AST helpers for the lint rules.

Everything here is deliberately *syntactic*: the rules run on source that
may not be importable (fixtures, broken branches), so resolution never
executes or imports the analyzed module.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local alias -> dotted origin for every import in the module.

    ``import time as t`` → ``{"t": "time"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``.
    Covers nested (function-local) imports too — they are just as capable
    of smuggling a wall clock in.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_target(call: ast.Call, aliases: dict[str, str]) -> Optional[str]:
    """The dotted origin of a call's callee, following import aliases.

    ``t.monotonic()`` with ``import time as t`` resolves to
    ``time.monotonic``; an unaliased head is returned as written.
    """
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def self_attr_target(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is an assignment target rooted at ``self.X``.

    Handles plain attributes (``self.x``) and subscripted ones
    (``self.x[k]``, ``self.x[k][j]``) — both count as touching ``self.x``.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def assigned_self_attrs(fn: ast.FunctionDef) -> Iterator[tuple[str, ast.AST]]:
    """Yield (attr, node) for every ``self.X``-rooted assignment in ``fn``."""
    for node in ast.walk(fn):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        for target in targets:
            for leaf in _unpack_targets(target):
                attr = self_attr_target(leaf)
                if attr is not None:
                    yield attr, node


def _unpack_targets(target: ast.AST) -> Iterator[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _unpack_targets(elt)
    elif isinstance(target, ast.Starred):
        yield from _unpack_targets(target.value)
    else:
        yield target


def is_set_expr(node: ast.AST) -> bool:
    """True when ``node`` syntactically builds a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def is_set_annotation(node: Optional[ast.AST]) -> bool:
    """True when an annotation names ``set``/``frozenset`` (plain or subscripted)."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    return name in {"set", "frozenset", "Set", "FrozenSet", "typing.Set"}


def class_methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def slots_entries(cls: ast.ClassDef) -> Iterator[tuple[str, ast.AST]]:
    """Yield (name, node) for literal ``__slots__`` entries of ``cls``."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                value = stmt.value
                elts = (
                    value.elts
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set))
                    else []
                )
                for elt in elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        yield elt.value, elt
