"""Phase-1 program model: cross-module facts the rules consume.

PR 3's rules were independent single-module AST passes; the properties
the live tier needs checked are not single-module properties. Whether a
``self.X`` update torn across an ``await`` is racy depends on which
*other* coroutines of the class touch ``X``; whether a v2 tag byte is
dead vocabulary depends on both the encoder and the decoder; whether the
fuzz corpus covers a payload type depends on the *test* tree. So the
engine now runs in two phases: phase 1 builds this :class:`ProgramModel`
over every module in the lint target, phase 2 hands model + AST to each
rule together.

Everything here is purely syntactic (the analyzed source is parsed, never
imported) with one deliberate exception: the corruption registry falls
back to importing :mod:`repro.sim.faults` when ``faults.py`` is not among
the analyzed modules, exactly like the STAB rules always did.

The model is JSON-serializable (:meth:`ProgramModel.to_dict` /
:meth:`ProgramModel.from_dict`) so CI can cache the parsed artifact keyed
on a source hash (:func:`model_cache_key`), and cheap enough to rebuild
that a cache miss costs nothing but the parse the rules needed anyway.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from repro.analysis.astutil import self_attr_target, slots_entries
from repro.analysis.core import ModuleInfo

#: Bumped whenever the extracted shape changes; stale caches are rebuilt.
MODEL_VERSION = 1

#: v2 wire-tag constants: ``_T_NAME = 0x0B`` at module scope.
_TAG_NAME_RE = re.compile(r"^_T_[A-Z0-9_]+$")

#: Module-scope assignments whose value enumerates protocol message
#: classes (``_MESSAGE_TYPES``, ``_MESSAGE_ORDER``).
_MESSAGE_REGISTRY_RE = re.compile(r"^_?MESSAGE")

#: Non-message payload roots the codecs special-case; they must survive
#: the differential corpus too (labels and garbage are exactly the values
#: whose faithfulness the stabilization story depends on).
EXTRA_PAYLOAD_TYPES = ("AlonLabel", "Garbage", "MwmrTimestamp")

#: Test files that constitute the differential v1/v2 fuzz corpus.
_CORPUS_GLOB = "test_wire*.py"


# ---------------------------------------------------------------------------
# class-state table
# ---------------------------------------------------------------------------


@dataclass
class MethodModel:
    """One method's attribute traffic, positioned relative to awaits.

    ``events`` is the in-execution-order list of ``self.X`` touches as
    ``(attr, kind, awaits_before, lineno)`` with ``kind`` one of "read",
    "write" (rebinding the attribute itself) or "mutate" (item
    assignment/deletion through it, ``self.x[k] = v``), and
    ``awaits_before`` the number of await points crossed before the
    touch. ``async for``/``async with`` count as await points.
    """

    name: str
    lineno: int
    is_coroutine: bool
    awaits: int = 0
    events: list[tuple[str, str, int, int]] = field(default_factory=list)

    @property
    def touched(self) -> frozenset[str]:
        return frozenset(attr for attr, _, _, _ in self.events)

    @property
    def written(self) -> frozenset[str]:
        return frozenset(
            attr for attr, kind, _, _ in self.events if kind == "write"
        )

    def torn_updates(self) -> list[tuple[str, int, int]]:
        """``(attr, read_line, write_line)`` for every attribute read
        before an await point and *rebound* after it — the
        read-modify-write shapes an interleaved coroutine can tear.
        Item mutation ("mutate" events) is not a rebinding: setting a
        dict key after an await cannot clobber a concurrent rebind the
        way ``self.x = f(self.x)`` can, so it does not pair."""
        first_read: dict[str, tuple[int, int]] = {}
        reported: set[str] = set()
        out: list[tuple[str, int, int]] = []
        for attr, kind, awaits, line in self.events:
            if kind == "read":
                prior = first_read.get(attr)
                if prior is None or awaits < prior[0]:
                    first_read[attr] = (awaits, line)
            elif kind == "write":
                prior = first_read.get(attr)
                if prior is not None and awaits > prior[0] and attr not in reported:
                    reported.add(attr)
                    out.append((attr, prior[1], line))
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "is_coroutine": self.is_coroutine,
            "awaits": self.awaits,
            "events": [list(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MethodModel":
        return cls(
            name=data["name"],
            lineno=data["lineno"],
            is_coroutine=data["is_coroutine"],
            awaits=data["awaits"],
            events=[tuple(e) for e in data["events"]],
        )


@dataclass
class ClassModel:
    """One class's declared state and per-method attribute traffic."""

    name: str
    relpath: str
    lineno: int
    bases: tuple[str, ...] = ()
    #: attr -> declaring line (``__init__``/``_init_*`` assignments and
    #: literal ``__slots__`` entries), mirroring STAB001's notion of state.
    attrs: dict[str, int] = field(default_factory=dict)
    methods: dict[str, MethodModel] = field(default_factory=dict)

    def coroutines_touching(
        self, attr: str, exclude: Optional[str] = None
    ) -> list[str]:
        """Names of coroutine methods (other than ``exclude``) that read
        or write ``self.<attr>`` — the potential interleaving partners."""
        return sorted(
            m.name
            for m in self.methods.values()
            if m.is_coroutine and m.name != exclude and attr in m.touched
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "relpath": self.relpath,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "attrs": self.attrs,
            "methods": {n: m.to_dict() for n, m in sorted(self.methods.items())},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClassModel":
        return cls(
            name=data["name"],
            relpath=data["relpath"],
            lineno=data["lineno"],
            bases=tuple(data["bases"]),
            attrs=dict(data["attrs"]),
            methods={
                n: MethodModel.from_dict(m) for n, m in data["methods"].items()
            },
        )


class _MethodScan(ast.NodeVisitor):
    """Walk one method body in execution order, counting await points and
    recording ``self.X`` reads/writes relative to them.

    Nested ``def``/``async def``/``lambda`` bodies are skipped: their
    attribute traffic happens on their own schedule, not at this method's
    await points.
    """

    def __init__(self) -> None:
        self.awaits = 0
        self.events: list[tuple[str, str, int, int]] = []

    # -- await points ---------------------------------------------------
    def visit_Await(self, node: ast.Await) -> None:
        self.visit(node.value)  # argument evaluates before the suspension
        self.awaits += 1

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.visit(node.iter)
        self.awaits += 1  # __anext__ suspends before each binding
        self.visit(node.target)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.awaits += 1  # __aenter__
        for stmt in node.body:
            self.visit(stmt)
        self.awaits += 1  # __aexit__

    # -- attribute traffic ----------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
            self.events.append((node.attr, kind, self.awaits, node.lineno))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            attr = self_attr_target(node)
            if attr is not None:  # self.x[k] = v mutates self.x in place
                self.events.append((attr, "mutate", self.awaits, node.lineno))
        self.generic_visit(node)

    # -- execution order fixups -----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)  # RHS evaluates (and may await) first
        for target in node.targets:
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self_attr_target(node.target)
        if attr is not None:  # `self.x += v` reads self.x first
            self.events.append((attr, "read", self.awaits, node.target.lineno))
        self.visit(node.value)
        self.visit(node.target)

    # -- nested scopes are not this method ------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _scan_method(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> MethodModel:
    scan = _MethodScan()
    for stmt in fn.body:
        scan.visit(stmt)
    return MethodModel(
        name=fn.name,
        lineno=fn.lineno,
        is_coroutine=isinstance(fn, ast.AsyncFunctionDef),
        awaits=scan.awaits,
        events=scan.events,
    )


def _extract_classes(module: ModuleInfo) -> list[ClassModel]:
    classes: list[ClassModel] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = ClassModel(
            name=node.name,
            relpath=module.relpath,
            lineno=node.lineno,
            bases=tuple(
                filter(None, (_base_name(base) for base in node.bases))
            ),
        )
        for attr, site in slots_entries(node):
            model.attrs.setdefault(attr, getattr(site, "lineno", node.lineno))
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method = _scan_method(stmt)
            model.methods[method.name] = method
            if method.name == "__init__" or method.name.startswith("_init"):
                for attr, kind, _, line in method.events:
                    if kind == "write":
                        model.attrs.setdefault(attr, line)
        classes.append(model)
    return classes


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# wire-schema table
# ---------------------------------------------------------------------------


@dataclass
class WireModel:
    """The codec vocabulary of one wire module.

    ``encode_arms``/``decode_arms`` classify every reference to a tag
    constant by *role*: a tag written into an output buffer
    (``out.append(_T_X)``, ``bytearray((_T_X,))``) is an encode-dispatch
    arm; a tag matched against input (any comparison) is a decode-dispatch
    arm. A registered tag missing either role is drift between the two
    halves of the codec — exactly the v1/v2 skew WIRE001 exists to catch.
    """

    relpath: str
    #: tag name -> (value, defining line)
    tags: dict[str, tuple[int, int]] = field(default_factory=dict)
    encode_arms: set[str] = field(default_factory=set)
    decode_arms: set[str] = field(default_factory=set)
    #: message/payload class name -> registry line
    payload_types: dict[str, int] = field(default_factory=dict)
    registry_lineno: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "relpath": self.relpath,
            "tags": {k: list(v) for k, v in sorted(self.tags.items())},
            "encode_arms": sorted(self.encode_arms),
            "decode_arms": sorted(self.decode_arms),
            "payload_types": dict(sorted(self.payload_types.items())),
            "registry_lineno": self.registry_lineno,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WireModel":
        return cls(
            relpath=data["relpath"],
            tags={k: tuple(v) for k, v in data["tags"].items()},
            encode_arms=set(data["encode_arms"]),
            decode_arms=set(data["decode_arms"]),
            payload_types=dict(data["payload_types"]),
            registry_lineno=data["registry_lineno"],
        )


def _extract_wire(module: ModuleInfo) -> Optional[WireModel]:
    tags: dict[str, tuple[int, int]] = {}
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if not isinstance(value, ast.Constant) or not isinstance(
            value.value, int
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and _TAG_NAME_RE.match(target.id):
                tags[target.id] = (value.value, stmt.lineno)
    if not tags:
        return None

    wire = WireModel(relpath=module.relpath, tags=tags)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            is_writer = (
                isinstance(func, ast.Attribute)
                and func.attr in {"append", "extend"}
            ) or (
                isinstance(func, ast.Name)
                and func.id in {"bytearray", "bytes"}
            )
            if is_writer:
                for arg in node.args:
                    wire.encode_arms.update(_tag_refs(arg, tags))
        elif isinstance(node, ast.Compare):
            wire.decode_arms.update(_tag_refs(node, tags))

    for stmt in module.tree.body:
        targets = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        named = any(
            isinstance(t, ast.Name) and _MESSAGE_REGISTRY_RE.match(t.id)
            for t in targets
        )
        if not named:
            continue
        wire.registry_lineno = wire.registry_lineno or stmt.lineno
        for ref in ast.walk(value):
            name: Optional[str] = None
            if isinstance(ref, ast.Attribute):
                name = ref.attr
            elif isinstance(ref, ast.Name):
                name = ref.id
            if name and name[:1].isupper():
                wire.payload_types.setdefault(name, stmt.lineno)

    if wire.payload_types:
        # The codec special-cases label/garbage payloads outside the
        # message registry; if this module references them, the corpus
        # must cover them too.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            name = None
            if isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.Name):
                name = node.id
            if name in EXTRA_PAYLOAD_TYPES:
                wire.payload_types.setdefault(name, node.lineno)
    return wire


def _tag_refs(node: ast.AST, tags: dict[str, tuple[int, int]]) -> set[str]:
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and sub.id in tags
    }


# ---------------------------------------------------------------------------
# corruption registry (AST of faults.py)
# ---------------------------------------------------------------------------


def _extract_registry(
    module: ModuleInfo,
) -> Optional[dict[str, Union[dict[str, str], str]]]:
    """``CORRUPTION_REGISTRY`` as data, resolving kind-constant names
    (``CORRUPTIBLE``) through the module's own string assignments."""
    consts: dict[str, str] = {}
    registry_node: Optional[ast.Dict] = None
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                consts[target.id] = value.value
            if target.id == "CORRUPTION_REGISTRY" and isinstance(
                value, ast.Dict
            ):
                registry_node = value
    if registry_node is None:
        return None

    registry: dict[str, Union[dict[str, str], str]] = {}
    for key, value in zip(registry_node.keys, registry_node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            registry[key.value] = value.value
        elif isinstance(value, ast.Dict):
            entry: dict[str, str] = {}
            for akey, aval in zip(value.keys, value.values):
                if not (
                    isinstance(akey, ast.Constant)
                    and isinstance(akey.value, str)
                ):
                    continue
                if isinstance(aval, ast.Name):
                    entry[akey.value] = consts.get(aval.id, aval.id)
                elif isinstance(aval, ast.Constant) and isinstance(
                    aval.value, str
                ):
                    entry[akey.value] = aval.value
            registry[key.value] = entry
    return registry


# ---------------------------------------------------------------------------
# differential corpus discovery
# ---------------------------------------------------------------------------


def _corpus_identifiers(tree: ast.Module) -> set[str]:
    idents: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            idents.add(node.id)
        elif isinstance(node, ast.Attribute):
            idents.add(node.attr)
    return idents


def _discover_corpus(srcpath: Path) -> Optional[tuple[set[str], list[str]]]:
    """Find ``tests/net/test_wire*.py`` above the wire module's source.

    Returns ``(identifiers, files)`` or None when no corpus is reachable
    (linting an installed package, say) — WIRE002 then has nothing to
    check against and stays silent rather than guessing.
    """
    try:
        parents = list(srcpath.resolve().parents)
    except OSError:  # pragma: no cover - unresolvable path
        return None
    for ancestor in parents:
        corpus_dir = ancestor / "tests" / "net"
        if not corpus_dir.is_dir():
            continue
        idents: set[str] = set()
        files: list[str] = []
        for path in sorted(corpus_dir.glob(_CORPUS_GLOB)):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):  # pragma: no cover - defensive
                continue
            idents.update(_corpus_identifiers(tree))
            files.append(path.name)
        if files:
            return idents, files
    return None


# ---------------------------------------------------------------------------
# the model
# ---------------------------------------------------------------------------


@dataclass
class ProgramModel:
    """Cross-module facts shared by every phase-2 rule."""

    #: relpath -> classes defined there
    classes: dict[str, list[ClassModel]] = field(default_factory=dict)
    #: relpath -> wire schema, for modules that define tag constants
    wire: dict[str, WireModel] = field(default_factory=dict)
    #: CORRUPTION_REGISTRY content (AST-extracted when faults.py is in
    #: the analyzed set, else None — rules fall back to importing it)
    corruption_registry: Optional[dict[str, Union[dict[str, str], str]]] = None
    #: identifiers appearing in the differential wire-test corpus, or
    #: None when no corpus was reachable
    corpus: Optional[frozenset[str]] = None
    #: corpus file names, for finding messages
    corpus_files: tuple[str, ...] = ()

    def classes_in(self, relpath: str) -> list[ClassModel]:
        return self.classes.get(relpath, [])

    def wire_in(self, relpath: str) -> Optional[WireModel]:
        return self.wire.get(relpath)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MODEL_VERSION,
            "classes": {
                rel: [c.to_dict() for c in classes]
                for rel, classes in sorted(self.classes.items())
            },
            "wire": {
                rel: w.to_dict() for rel, w in sorted(self.wire.items())
            },
            "corruption_registry": self.corruption_registry,
            "corpus": sorted(self.corpus) if self.corpus is not None else None,
            "corpus_files": list(self.corpus_files),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProgramModel":
        corpus = data.get("corpus")
        return cls(
            classes={
                rel: [ClassModel.from_dict(c) for c in classes]
                for rel, classes in data["classes"].items()
            },
            wire={
                rel: WireModel.from_dict(w)
                for rel, w in data["wire"].items()
            },
            corruption_registry=data.get("corruption_registry"),
            corpus=frozenset(corpus) if corpus is not None else None,
            corpus_files=tuple(data.get("corpus_files", ())),
        )


def build_model(modules: Sequence[ModuleInfo]) -> ProgramModel:
    """Phase 1: one pass over every module, no rule logic."""
    model = ProgramModel()
    wire_sources: list[Path] = []
    for module in modules:
        classes = _extract_classes(module)
        if classes:
            model.classes[module.relpath] = classes
        wire = _extract_wire(module)
        if wire is not None:
            model.wire[module.relpath] = wire
            if module.srcpath is not None:
                wire_sources.append(module.srcpath)
        if module.relpath.endswith("faults.py"):
            registry = _extract_registry(module)
            if registry is not None:
                model.corruption_registry = registry
        if Path(module.relpath).name.startswith("test_wire"):
            # The corpus can also be *part of* the analyzed set.
            idents = _corpus_identifiers(module.tree)
            model.corpus = (model.corpus or frozenset()) | idents
            model.corpus_files = model.corpus_files + (
                Path(module.relpath).name,
            )
    if model.corpus is None:
        for srcpath in wire_sources:
            found = _discover_corpus(srcpath)
            if found is not None:
                idents, files = found
                model.corpus = frozenset(idents)
                model.corpus_files = tuple(files)
                break
    return model


# ---------------------------------------------------------------------------
# cache (CI artifact keyed on source hash)
# ---------------------------------------------------------------------------


def model_cache_key(modules: Iterable[ModuleInfo]) -> str:
    """Hash of every analyzed module's (relpath, source)."""
    digest = hashlib.sha256(f"model-v{MODEL_VERSION}".encode())
    for module in sorted(modules, key=lambda m: m.relpath):
        digest.update(module.relpath.encode("utf-8"))
        digest.update(b"\0")
        digest.update("\n".join(module.lines).encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


def load_model_cache(path: Path, key: str) -> Optional[ProgramModel]:
    """The cached model, or None on miss/stale/corrupt (never raises)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("key") != key:
            return None
        return ProgramModel.from_dict(payload["model"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def save_model_cache(path: Path, key: str, model: ProgramModel) -> None:
    payload = {"key": key, "model": model.to_dict()}
    path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
