"""Rule modules; importing this package registers every rule."""

from repro.analysis.rules import det, net, par, stab  # noqa: F401
