"""Rule modules; importing this package registers every rule."""

from repro.analysis.rules import async_, det, net, par, stab, wire  # noqa: F401
