"""ASYNC-series rules: await-point discipline for the live tier.

The simulator executes one handler at a time under a deterministic event
queue, so the protocol code never sees interleaving. The live tier
(:mod:`repro.net`) runs the same protocol under asyncio, where every
``await`` is a point at which *any* other coroutine or callback of the
host may run. These rules guard the failure classes that asyncio makes
possible and the test suite is worst at catching, because they only bite
under contention:

* **ASYNC001** — a ``self.X`` read before an ``await`` and written after
  it, in a class where other coroutines also touch ``X``: the classic
  torn read-modify-write. The interleaved coroutine's update is silently
  overwritten — a lost write, which for protocol state is exactly the
  corruption the paper's fault model assumes *cannot* happen outside a
  transient fault.
* **ASYNC002** — ``create_task``/``ensure_future`` whose result is
  dropped on the floor: the task can be garbage-collected mid-flight and
  its exception is never retrieved, so a crashed pump looks like a quiet
  network.
* **ASYNC003** — synchronous blocking calls inside a coroutine stall the
  whole event loop: every daemon hosted on it stops serving, which the
  latency-bounded liveness arguments (and the loadgen's ops/s floors)
  cannot tolerate.
* **ASYNC004** — an except clause that catches ``CancelledError`` (bare
  ``except:``, ``except BaseException:``, or naming it) without
  re-raising swallows cooperative shutdown: the task reports *completed*
  when it was cancelled, and cleanup ordering silently inverts.
* **ASYNC005** — ``asyncio.Lock``/``Event``/``Queue``/... constructed at
  module scope or in ``__init__`` may bind to (or outlive) the wrong
  event loop; primitives must be created where a loop is running.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.astutil import dotted_name, import_aliases, resolve_call_target
from repro.analysis.core import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import ProgramModel

#: Callables that block the event loop. DET001 already bans wall-clock
#: sleeps everywhere; the overlap on ``time.sleep`` is intentional — the
#: two rules state different reasons.
BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.popen",
    "os.waitpid",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
}

#: asyncio synchronization/queue primitives that must be created inside a
#: running loop (cross-loop reuse raises at first await, long after the
#: construction site that caused it).
LOOP_BOUND_FACTORIES = {
    "asyncio.Lock",
    "asyncio.Event",
    "asyncio.Condition",
    "asyncio.Semaphore",
    "asyncio.BoundedSemaphore",
    "asyncio.Queue",
    "asyncio.LifoQueue",
    "asyncio.PriorityQueue",
}

_TASK_SPAWNERS = {"create_task", "ensure_future"}

AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _walk_function_body(fn: AnyFunc) -> Iterator[ast.AST]:
    """Every node of ``fn``'s own body, skipping nested function scopes."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _functions(tree: ast.Module) -> Iterator[AnyFunc]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register_rule
class TornAwaitUpdateRule(Rule):
    rule_id = "ASYNC001"
    title = "read-modify-write of shared self state spans an await"
    rationale = (
        "Reading self.X, awaiting, then writing self.X loses any update "
        "an interleaved coroutine made in between; shared protocol state "
        "must be read and written without crossing a suspension point."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        for cls in model.classes_in(module.relpath):
            for method in cls.methods.values():
                if not method.is_coroutine:
                    continue
                for attr, read_line, write_line in method.torn_updates():
                    others = cls.coroutines_touching(attr, exclude=method.name)
                    if not others:
                        continue
                    yield module.finding_at(
                        write_line,
                        self.rule_id,
                        f"{cls.name}.{attr} is read (line {read_line}) "
                        f"before an await and written after it in coroutine "
                        f"{method.name!r}; coroutine(s) "
                        f"{', '.join(others)} also touch it — an "
                        f"interleaved update would be lost",
                    )


@register_rule
class FireAndForgetTaskRule(Rule):
    rule_id = "ASYNC002"
    title = "fire-and-forget task with no retained reference"
    rationale = (
        "A task whose reference is dropped can be garbage-collected "
        "mid-flight and its exception is never retrieved; keep the "
        "handle (and discard it in a done-callback) like "
        "ServerDaemon._on_accept does."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            func = call.func
            spawns = (
                isinstance(func, ast.Attribute) and func.attr in _TASK_SPAWNERS
            ) or resolve_call_target(call, aliases) in {
                "asyncio.create_task",
                "asyncio.ensure_future",
            }
            if spawns:
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else dotted_name(func)
                )
                yield module.finding(
                    node,
                    self.rule_id,
                    f"result of {name}() is discarded — the task can be "
                    f"collected mid-flight and its exception is lost; "
                    f"retain the handle or add a done-callback",
                )


@register_rule
class BlockingCallInCoroutineRule(Rule):
    rule_id = "ASYNC003"
    title = "blocking call inside a coroutine"
    rationale = (
        "A synchronous sleep/IO/subprocess call stalls the event loop "
        "and every daemon on it; use the asyncio equivalent or "
        "run_in_executor."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for fn in _functions(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _walk_function_body(fn):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call_target(node, aliases)
                if target in BLOCKING_CALLS:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"{target}() blocks the event loop inside "
                        f"coroutine {fn.name!r}",
                    )


@register_rule
class SwallowedCancellationRule(Rule):
    rule_id = "ASYNC004"
    title = "except clause swallows CancelledError in a coroutine"
    rationale = (
        "Catching CancelledError (or BaseException, or a bare except) "
        "without re-raising makes a cancelled task report success; "
        "cooperative shutdown then races its own cleanup."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for fn in _functions(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _walk_function_body(fn):
                if not isinstance(node, ast.Try):
                    continue
                if not _body_awaits(node.body):
                    continue  # no suspension point -> no CancelledError
                for handler in node.handlers:
                    clause = _cancellation_clause(handler, aliases)
                    if clause is None:
                        continue
                    if _reraises(handler):
                        continue
                    yield module.finding(
                        handler,
                        self.rule_id,
                        f"{clause} catches CancelledError around an await "
                        f"in coroutine {fn.name!r} without re-raising — "
                        f"cancellation is swallowed",
                    )


def _body_awaits(body: list[ast.stmt]) -> bool:
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)
    return False


def _cancellation_clause(
    handler: ast.ExceptHandler, aliases: dict[str, str]
) -> Optional[str]:
    """A human-readable description of how this handler catches
    CancelledError, or None when it cannot."""
    if handler.type is None:
        return "bare `except:`"
    exprs = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in exprs:
        name = dotted_name(expr)
        if name is None:
            continue
        head, _, rest = name.partition(".")
        resolved = aliases.get(head)
        full = f"{resolved}.{rest}" if resolved and rest else (resolved or name)
        if full in {
            "BaseException",
            "CancelledError",
            "asyncio.CancelledError",
            "concurrent.futures.CancelledError",
        }:
            return f"`except {name}`"
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises (bare ``raise`` or ``raise e``)."""
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                handler.name is not None
                and isinstance(node.exc, ast.Name)
                and node.exc.id == handler.name
            ):
                return True
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)
    return False


@register_rule
class LoopBoundPrimitiveRule(Rule):
    rule_id = "ASYNC005"
    title = "asyncio primitive created outside a running loop"
    rationale = (
        "Lock/Event/Queue constructed at import time or in __init__ can "
        "bind to or outlive the wrong event loop (RuntimeError at first "
        "await); create them where a loop is guaranteed running, e.g. "
        "connection_made or the coroutine that first needs them."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        yield from self._scan(module, aliases, module.tree.body, scope="module")

    def _scan(
        self,
        module: ModuleInfo,
        aliases: dict[str, str],
        body: list[ast.stmt],
        scope: str,
    ) -> Iterator[Finding]:
        stack: list[tuple[ast.AST, str]] = [(stmt, scope) for stmt in body]
        while stack:
            node, where = stack.pop()
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # a coroutine body runs inside a loop
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                name = getattr(node, "name", "<lambda>")
                if isinstance(node, ast.FunctionDef) and (
                    name == "__init__" or name.startswith("_init")
                ):
                    children = [(c, "__init__") for c in node.body]
                    stack.extend(children)
                continue  # other sync functions: call site unknowable
            if isinstance(node, ast.Call):
                target = resolve_call_target(node, aliases)
                if target in LOOP_BOUND_FACTORIES:
                    where_desc = (
                        "at module scope" if where == "module" else "in __init__"
                    )
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"{target}() {where_desc} is outside any running "
                        f"event loop — create it where the serving loop "
                        f"exists",
                    )
            for child in ast.iter_child_nodes(node):
                stack.append((child, where))
