"""STAB-series rules: the corruption surface must be complete.

The stabilization experiments (E6, E13) claim the protocol recovers from
*arbitrary* initial state. That claim is vacuous for any state variable
the fault injector cannot reach: a run that "recovers" may simply never
have been corrupted where it hurts — the soundness concern behind the
bounded-label design of Bonomi et al. (IPPS 2015). These rules cross-check
every attribute a process class initializes against the declarative
corruption registry in :mod:`repro.sim.faults`:

* **STAB001** — every ``self.X`` assigned in ``__init__``/``_init_*`` (or
  named in ``__slots__``) of a class under ``core/``, ``byzantine/``, or
  ``sim/process.py`` must be declared in ``CORRUPTION_REGISTRY`` with a
  state kind; stale registry entries (declared but never initialized) are
  reported too, so registry and code cannot drift apart.
* **STAB002** — every attribute declared *corruptible* must be assigned
  somewhere in a corruption method (``corrupt_state`` / ``_corrupt*``)
  defined by the same class, so the injector provably reaches it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.analysis.astutil import assigned_self_attrs, class_methods, slots_entries
from repro.analysis.core import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import ProgramModel

#: Files whose classes hold process-local protocol state.
STATE_SCOPE_PREFIXES = ("repro/core/", "repro/byzantine/")
STATE_SCOPE_FILES = ("repro/sim/process.py",)


def _in_scope(relpath: str) -> bool:
    return relpath.startswith(STATE_SCOPE_PREFIXES) or relpath in STATE_SCOPE_FILES


def _load_registry(model: ProgramModel) -> dict[str, Union[dict[str, str], str]]:
    """The corruption registry: AST-extracted from ``faults.py`` when it
    is part of the analyzed set (whole-package lint), else imported — the
    two views are identical because the registry is a literal dict."""
    if model.corruption_registry is not None:
        return model.corruption_registry
    from repro.sim.faults import CORRUPTION_REGISTRY

    return CORRUPTION_REGISTRY


def _init_attrs(cls: ast.ClassDef) -> dict[str, ast.AST]:
    """attr -> first initializing node, from ``__init__``/``_init_*``/slots."""
    attrs: dict[str, ast.AST] = {}
    for name, node in slots_entries(cls):
        attrs.setdefault(name, node)
    for method in class_methods(cls):
        if method.name == "__init__" or method.name.startswith("_init"):
            for attr, node in assigned_self_attrs(method):
                attrs.setdefault(attr, node)
    return attrs


def _corrupted_attrs(cls: ast.ClassDef) -> set[str]:
    """Attrs assigned in this class's corruption methods."""
    touched: set[str] = set()
    for method in class_methods(cls):
        if method.name == "corrupt_state" or method.name.startswith("_corrupt"):
            touched.update(attr for attr, _ in assigned_self_attrs(method))
    return touched


@register_rule
class UnregisteredStateRule(Rule):
    rule_id = "STAB001"
    title = "process state missing from the corruption registry"
    rationale = (
        "State the adversary cannot corrupt makes the stabilization "
        "experiments vacuous; every attribute must be declared (and "
        "justified) in repro.sim.faults.CORRUPTION_REGISTRY."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        if not _in_scope(module.relpath):
            return
        registry = _load_registry(model)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs = _init_attrs(node)
            if not attrs:
                continue
            entry = registry.get(node.name)
            if isinstance(entry, str):
                continue  # class-level exemption with inline justification
            if entry is None:
                for attr, site in sorted(attrs.items()):
                    yield module.finding(
                        site,
                        self.rule_id,
                        f"{node.name}.{attr} initialized but class "
                        f"{node.name!r} has no CORRUPTION_REGISTRY entry",
                    )
                continue
            for attr, site in sorted(attrs.items()):
                if attr not in entry:
                    yield module.finding(
                        site,
                        self.rule_id,
                        f"{node.name}.{attr} is not declared in the "
                        f"corruption registry — the fault injector cannot "
                        f"prove it reaches this state",
                    )
            for declared in sorted(entry):
                if declared not in attrs:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"stale registry entry: {node.name}.{declared} is "
                        f"declared but never initialized by the class",
                    )


@register_rule
class UncorruptedRegisteredStateRule(Rule):
    rule_id = "STAB002"
    title = "corruptible state the corruption method never scrambles"
    rationale = (
        "An attribute declared corruptible must actually be assigned by "
        "the class's corrupt_state/_corrupt* method — otherwise the "
        "registry over-promises and E6/E13 under-test."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        if not _in_scope(module.relpath):
            return
        from repro.sim.faults import CORRUPTIBLE

        registry = _load_registry(model)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            entry = registry.get(node.name)
            if not isinstance(entry, dict):
                continue
            attrs = _init_attrs(node)
            corruptible_here = {
                attr
                for attr, kind in entry.items()
                if kind == CORRUPTIBLE and attr in attrs
            }
            if not corruptible_here:
                continue
            touched = _corrupted_attrs(node)
            for attr in sorted(corruptible_here - touched):
                yield module.finding(
                    attrs[attr],
                    self.rule_id,
                    f"{node.name}.{attr} is registered corruptible but no "
                    f"corrupt_state/_corrupt* method of {node.name} "
                    f"assigns it",
                )
