"""PAR-series rules: pool workers must be picklable and race-free.

``repro.harness.parallel`` promises byte-identical serial-vs-pooled
results. That only holds when the functions handed to the pool (a) pickle
— i.e. are importable top-level callables, not lambdas or closures — and
(b) share no mutable module state with the parent or with each other, so
fork-vs-spawn start methods and worker scheduling cannot change results.

* **PAR001** — the function argument of ``parallel_map``/``parallel_imap``
  must resolve to a module-level def (directly, through a local variable,
  a conditional expression, or ``functools.partial`` over one).
* **PAR002** — worker functions must not read module globals bound to
  mutable containers (or write any module global). ALL_CAPS names are
  treated as frozen constants by convention and exempted from reads.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import ProgramModel

_POOL_ENTRYPOINTS = {"parallel_map", "parallel_imap"}


def _pool_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _POOL_ENTRYPOINTS and node.args:
            yield node


def _module_level_callables(tree: ast.Module) -> set[str]:
    """Names importable from the module: top-level defs, classes, imports."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            names.update(a.asname or a.name.split(".")[0] for a in stmt.names)
        elif isinstance(stmt, ast.ImportFrom):
            names.update(a.asname or a.name for a in stmt.names)
    return names


def _is_partial(call: ast.Call) -> bool:
    func = call.func
    return (isinstance(func, ast.Name) and func.id == "partial") or (
        isinstance(func, ast.Attribute) and func.attr == "partial"
    )


class _WorkerResolution:
    """Classifies the worker expression of one pool call.

    ``verdict`` is "ok", "bad", or "unknown" (unresolvable expressions are
    never flagged); ``workers`` collects the module-level def names the
    expression can resolve to, for PAR002's body inspection.
    """

    def __init__(self, tree: ast.Module, enclosing: Optional[ast.FunctionDef]):
        self.top_level = _module_level_callables(tree)
        self.nested_defs = {
            n.name
            for fn in ast.walk(tree)
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            for n in ast.walk(fn)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not fn
        }
        self.enclosing = enclosing
        self.workers: set[str] = set()
        self.reason = ""

    def classify(self, expr: ast.AST, depth: int = 0) -> str:
        if depth > 4:
            return "unknown"
        if isinstance(expr, ast.Lambda):
            self.reason = "lambda does not pickle"
            return "bad"
        if isinstance(expr, ast.IfExp):
            branches = {
                self.classify(expr.body, depth + 1),
                self.classify(expr.orelse, depth + 1),
            }
            if "bad" in branches:
                return "bad"
            return "ok" if branches == {"ok"} else "unknown"
        if isinstance(expr, ast.Call) and _is_partial(expr):
            if not expr.args:
                return "unknown"
            return self.classify(expr.args[0], depth + 1)
        if isinstance(expr, ast.Name):
            if expr.id in self.nested_defs:
                self.reason = f"{expr.id} is a nested def (closure)"
                return "bad"
            if expr.id in self.top_level:
                self.workers.add(expr.id)
                return "ok"
            return self._classify_local(expr.id, depth)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                self.reason = f"self.{expr.attr} is a bound method"
                return "bad"
            # Module attribute (mod.fn): importable, accept.
            self.workers.add(expr.attr)
            return "ok"
        return "unknown"

    def _classify_local(self, name: str, depth: int) -> str:
        """Follow assignments to ``name`` inside the enclosing function."""
        if self.enclosing is None:
            return "unknown"
        verdicts = set()
        for node in ast.walk(self.enclosing):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        verdicts.add(self.classify(node.value, depth + 1))
        if not verdicts:
            return "unknown"
        if "bad" in verdicts:
            return "bad"
        return "ok" if verdicts == {"ok"} else "unknown"


def _enclosing_function_map(tree: ast.Module) -> dict[ast.AST, ast.FunctionDef]:
    """Map every node to its innermost enclosing function def."""
    owner: dict[ast.AST, ast.FunctionDef] = {}

    def visit(node: ast.AST, current: Optional[ast.FunctionDef]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node
        for child in ast.iter_child_nodes(node):
            if current is not None:
                owner[child] = current
            visit(child, current)

    visit(tree, None)
    return owner


@register_rule
class NonPicklableWorkerRule(Rule):
    rule_id = "PAR001"
    title = "pool worker is not an importable top-level callable"
    rationale = (
        "multiprocessing pickles the worker by qualified name; lambdas, "
        "closures and bound methods fail (or silently diverge under "
        "fork). Hand the pool a module-level def, optionally wrapped in "
        "functools.partial."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        owner = _enclosing_function_map(module.tree)
        for call in _pool_calls(module.tree):
            resolution = _WorkerResolution(module.tree, owner.get(call))
            verdict = resolution.classify(call.args[0])
            if verdict == "bad":
                yield module.finding(
                    call.args[0],
                    self.rule_id,
                    f"worker passed to {ast.unparse(call.func)} does not "
                    f"pickle: {resolution.reason}",
                )


@register_rule
class WorkerMutableGlobalRule(Rule):
    rule_id = "PAR002"
    title = "pool worker touches mutable module globals"
    rationale = (
        "A worker reading a mutable module global sees fork-time vs "
        "import-time state depending on the start method, and writes are "
        "silently lost per-process — both break jobs-invariance."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        workers = self._worker_defs(module.tree)
        if not workers:
            return
        mutable_globals = self._mutable_globals(module.tree)
        module_names = _module_level_callables(module.tree) | set(
            mutable_globals
        )
        for fn in workers:
            local_names = self._local_bindings(fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"worker {fn.name} declares global "
                        f"{', '.join(node.names)} — per-process writes are "
                        f"lost and order-dependent",
                    )
                elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    if (
                        node.id in mutable_globals
                        and node.id not in local_names
                        and not node.id.isupper()
                    ):
                        yield module.finding(
                            node,
                            self.rule_id,
                            f"worker {fn.name} reads mutable module global "
                            f"{node.id!r} — pass it through the work item "
                            f"instead",
                        )

    @staticmethod
    def _worker_defs(tree: ast.Module) -> list[ast.FunctionDef]:
        owner = _enclosing_function_map(tree)
        names: set[str] = set()
        for call in _pool_calls(tree):
            resolution = _WorkerResolution(tree, owner.get(call))
            resolution.classify(call.args[0])
            names.update(resolution.workers)
        return [
            stmt
            for stmt in tree.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name in names
        ]

    @staticmethod
    def _mutable_globals(tree: ast.Module) -> set[str]:
        mutable: set[str] = set()
        for stmt in tree.body:
            targets: list[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            if _is_mutable_container(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutable.add(target.id)
        return mutable

    @staticmethod
    def _local_bindings(fn: ast.FunctionDef) -> set[str]:
        bound = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
        if fn.args.vararg:
            bound.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            bound.add(fn.args.kwarg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
        return bound


def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "defaultdict", "deque", "Counter"}
    return False
