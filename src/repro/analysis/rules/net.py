"""NET-series rules: the sim/live separation that keeps the bridge sound.

The live runtime (:mod:`repro.net`) hosts the protocol classes
*unmodified* — that reuse claim only holds while the protocol layers stay
transport-blind. The moment ``core/`` (or the labels, WTsG, or Byzantine
strategies it moves over the wire) imports asyncio, sockets, or the live
tier itself, there are two protocols: the one the simulator verifies and
the one deployments run. NET001 pins the import direction: ``repro.net``
imports the protocol, never the reverse.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import ProgramModel

#: Layers that must stay transport-blind.
PROTOCOL_LAYERS = (
    "repro/core/",
    "repro/labels/",
    "repro/wtsg/",
    "repro/byzantine/",
)

#: Module prefixes that mean live-transport machinery.
FORBIDDEN_IMPORTS = ("asyncio", "socket", "repro.net")


def _forbidden(module_name: str) -> Optional[str]:
    for banned in FORBIDDEN_IMPORTS:
        if module_name == banned or module_name.startswith(banned + "."):
            return banned
    return None


@register_rule
class TransportImportRule(Rule):
    rule_id = "NET001"
    title = "transport import inside a protocol layer"
    rationale = (
        "Live deployments reuse core/, labels/, wtsg/ and byzantine/ "
        "byte-for-byte; importing asyncio, socket or repro.net there "
        "forks the verified protocol from the deployed one."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        if not any(layer in module.relpath for layer in PROTOCOL_LAYERS):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                banned = _forbidden(name)
                if banned is not None:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"protocol layer imports {name} — {banned} belongs "
                        f"on the repro.net side of the transport seam",
                    )
