"""WIRE-series rules: the two codecs and the fault surface must agree.

``repro-wire/2`` (PR 6) duplicated the value vocabulary: every payload
now has a JSON form (v1) and a binary form (v2), and the receiver-side
validation story — corrupted labels stay value-faithful, garbage stays
decodable as garbage — holds only while the two halves of each codec and
the fuzz corpus move in lockstep. These rules pin the lockstep
statically, from the phase-1 wire-schema table:

* **WIRE001** — every registered v2 tag byte (``_T_*``) must have both
  an encode-dispatch arm (the tag is written into an output buffer) and
  a decode-dispatch arm (the tag is compared against input). A one-sided
  tag is codec drift: values that serialize but never parse back, or
  dead vocabulary that a corrupted byte can alias onto.
* **WIRE002** — every payload type the wire registry can carry must
  appear in the differential v1/v2 test corpus (``tests/net/
  test_wire*.py``); a registered-but-unfuzzed message type is exactly
  where v1/v2 divergence hides.
* **WIRE003** — classes in the live hosting layer (``daemon.py``,
  ``bridge.py``, ``cluster.py``) must declare their state in
  ``CORRUPTION_REGISTRY``, extending STAB001's completeness argument
  past the sim boundary: the stabilization story needs to say, for every
  attribute a live host carries, whether the fault model reaches it or
  why it is exempt.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.analysis.core import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import ProgramModel

#: Live-tier modules whose classes host or bridge protocol processes.
HOSTING_LAYER_FILES = (
    "repro/net/daemon.py",
    "repro/net/bridge.py",
    "repro/net/cluster.py",
    "repro/fabric/ring.py",
    "repro/fabric/topology.py",
    "repro/fabric/host.py",
    "repro/fabric/supervisor.py",
    "repro/fabric/client.py",
    "repro/fabric/kv.py",
)


@register_rule
class OneSidedTagRule(Rule):
    rule_id = "WIRE001"
    title = "v2 wire tag missing an encode or decode dispatch arm"
    rationale = (
        "A tag byte the encoder emits but the decoder never matches (or "
        "vice versa) is silent codec drift; the differential v1/v2 "
        "guarantee only covers tags both arms know."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        wire = model.wire_in(module.relpath)
        if wire is None:
            return
        for name in sorted(wire.tags):
            value, line = wire.tags[name]
            missing = []
            if name not in wire.encode_arms:
                missing.append("encode")
            if name not in wire.decode_arms:
                missing.append("decode")
            if missing:
                yield module.finding_at(
                    line,
                    self.rule_id,
                    f"tag {name} (0x{value:02X}) has no "
                    f"{' or '.join(missing)} dispatch arm",
                )


@register_rule
class UnfuzzedPayloadRule(Rule):
    rule_id = "WIRE002"
    title = "registered payload type absent from the differential corpus"
    rationale = (
        "The v1/v2 equivalence claim is only as strong as the corpus; a "
        "message type the fuzz strategies never emit is untested wire "
        "surface."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        wire = model.wire_in(module.relpath)
        if wire is None or not wire.payload_types:
            return
        if model.corpus is None:
            return  # no test tree reachable (installed-package lint)
        corpus_desc = ", ".join(model.corpus_files) or "corpus"
        for name in sorted(wire.payload_types):
            if name not in model.corpus:
                yield module.finding_at(
                    wire.payload_types[name],
                    self.rule_id,
                    f"payload type {name} is wire-registered but never "
                    f"referenced by the differential corpus ({corpus_desc})",
                )


@register_rule
class UndeclaredHostStateRule(Rule):
    rule_id = "WIRE003"
    title = "live hosting-layer state missing from the corruption registry"
    rationale = (
        "ServerDaemon and its peers carry the hosted process plus live "
        "plumbing; every attribute must be declared (or the class "
        "exempted with a reason) in CORRUPTION_REGISTRY so the "
        "stabilization claims stay auditable across the sim/live "
        "boundary."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        if module.relpath not in HOSTING_LAYER_FILES:
            return
        registry = _load_registry(model)
        for cls in model.classes_in(module.relpath):
            if not cls.attrs:
                continue
            entry = registry.get(cls.name)
            if isinstance(entry, str):
                continue  # class-level exemption with inline justification
            if entry is None:
                for attr in sorted(cls.attrs):
                    yield module.finding_at(
                        cls.attrs[attr],
                        self.rule_id,
                        f"{cls.name}.{attr} initialized but live class "
                        f"{cls.name!r} has no CORRUPTION_REGISTRY entry",
                    )
                continue
            for attr in sorted(cls.attrs):
                if attr not in entry:
                    yield module.finding_at(
                        cls.attrs[attr],
                        self.rule_id,
                        f"{cls.name}.{attr} is not declared in the "
                        f"corruption registry — the live tier's fault "
                        f"story does not account for it",
                    )
            for declared in sorted(entry):
                if declared not in cls.attrs:
                    yield module.finding_at(
                        cls.lineno,
                        self.rule_id,
                        f"stale registry entry: {cls.name}.{declared} is "
                        f"declared but never initialized by the class",
                    )


def _load_registry(model: ProgramModel) -> dict[str, Union[dict[str, str], str]]:
    if model.corruption_registry is not None:
        return model.corruption_registry
    from repro.sim.faults import CORRUPTION_REGISTRY

    return CORRUPTION_REGISTRY
