"""DET-series rules: no hidden nondeterminism.

Every adversarial schedule in this repo is replayed from a recipe, every
fuzz campaign must be byte-identical serial vs pooled, and every restart
must reproduce the original run. Those guarantees die the moment any code
on the simulation path consults a wall clock, OS entropy, the module-level
``random`` state, or CPython run artifacts (``id``/``hash`` of strings are
randomized per interpreter launch). The DET rules forbid each leak.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import (
    dotted_name,
    import_aliases,
    is_set_annotation,
    is_set_expr,
    resolve_call_target,
)
from repro.analysis.core import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import ProgramModel

#: The one module allowed to read wall clocks: profiling/observability.
WALL_CLOCK_ALLOWED = ("harness/profiling.py",)

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class WallClockRule(Rule):
    rule_id = "DET001"
    title = "wall-clock read outside harness/profiling.py"
    rationale = (
        "Simulated time is the only clock; a wall-clock read on the "
        "simulation path makes schedules irreproducible."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        if module.relpath.endswith(WALL_CLOCK_ALLOWED):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target in _WALL_CLOCK_CALLS:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"wall-clock call {target}() — route timing through "
                    f"repro.harness.profiling",
                )


_RNG_MODULES = {"random", "numpy.random"}
_SEEDED_FACTORIES = {"random.Random", "numpy.random.default_rng"}
_ENTROPY_CALLS = {"os.urandom", "os.getrandom", "uuid.uuid4", "random.SystemRandom"}


@register_rule
class UnseededRandomnessRule(Rule):
    rule_id = "DET002"
    title = "module-level random state or OS entropy"
    rationale = (
        "All randomness must flow from an injected seeded Random so a "
        "(seed, config) recipe replays the run exactly."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                imported = {a.name for a in node.names} - {"Random"}
                if imported:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"from random import {', '.join(sorted(imported))} "
                        f"binds the shared module RNG — inject a seeded "
                        f"random.Random instead",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target is None:
                continue
            if target in _ENTROPY_CALLS:
                yield module.finding(
                    node, self.rule_id, f"OS entropy source {target}()"
                )
            elif target in _SEEDED_FACTORIES:
                if not node.args:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"{target}() without a seed falls back to OS entropy",
                    )
            elif any(
                target.startswith(f"{mod}.") and target.count(".") == mod.count(".") + 1
                for mod in _RNG_MODULES
            ):
                yield module.finding(
                    node,
                    self.rule_id,
                    f"{target}() draws from the shared module RNG — use the "
                    f"injected seeded Random",
                )


#: Layers where iteration order can reach the scheduler or message layer.
ORDER_SENSITIVE_PREFIXES = (
    "repro/sim/",
    "repro/core/",
    "repro/byzantine/",
    "repro/labels/",
    "repro/wtsg/",
)


@register_rule
class UnorderedIterationRule(Rule):
    rule_id = "DET003"
    title = "iteration over an unordered set on an order-sensitive layer"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED for str elements; "
        "if it reaches a send or scheduler insertion, two runs of the same "
        "recipe diverge. Iterate sorted(...) instead."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        if not module.relpath.startswith(ORDER_SENSITIVE_PREFIXES):
            return
        set_symbols = _collect_set_symbols(module.tree)
        for node in ast.walk(module.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_unordered(it, set_symbols):
                    yield module.finding(
                        it,
                        self.rule_id,
                        f"iterating {ast.unparse(it)!s} (a set) — order is "
                        f"hash-dependent; wrap in sorted(...)",
                    )

    @staticmethod
    def _is_unordered(node: ast.AST, set_symbols: frozenset[str]) -> bool:
        if is_set_expr(node):
            return True
        name = dotted_name(node)
        return name is not None and name in set_symbols


def _collect_set_symbols(tree: ast.Module) -> frozenset[str]:
    """Names statically known to hold sets (``x`` or ``self.x``).

    A symbol qualifies only when *every* assignment to it builds a set (or
    its annotation says so) — mixed assignments drop it, keeping the rule
    quiet on genuinely ambiguous code.
    """
    set_votes: dict[str, bool] = {}

    def vote(key: str, is_set: bool) -> None:
        set_votes[key] = set_votes.get(key, True) and is_set

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                key = dotted_name(target)
                if key is not None:
                    vote(key, is_set_expr(node.value))
        elif isinstance(node, ast.AnnAssign):
            key = dotted_name(node.target)
            if key is not None:
                if is_set_annotation(node.annotation):
                    vote(key, True)
                elif node.value is not None:
                    vote(key, is_set_expr(node.value))
    return frozenset(name for name, is_set in set_votes.items() if is_set)


@register_rule
class IdentityHashRule(Rule):
    rule_id = "DET004"
    title = "builtin id()/hash() feeding program logic"
    rationale = (
        "id() is an allocation address and str hash() is salted per "
        "interpreter launch — branching or sorting on either varies "
        "between identical runs. Use a stable digest (zlib.crc32) or an "
        "explicit key."
    )

    def check(self, module: ModuleInfo, model: ProgramModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in {"id", "hash"}:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"builtin {node.func.id}() is run-dependent",
                    )
            elif isinstance(node, ast.keyword) and node.arg == "key":
                if isinstance(node.value, ast.Name) and node.value.id in {"id", "hash"}:
                    yield module.finding(
                        node.value,
                        self.rule_id,
                        f"sort key {node.value.id} is run-dependent",
                    )
