"""File discovery and rule execution for ``repro lint``."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.core import Finding, ModuleInfo, Rule, all_rules

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_python_files(root: Path) -> Iterable[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if not _SKIP_DIRS.intersection(path.parts):
            yield path


def default_target() -> Path:
    """The installed ``repro`` package directory — what ``repro lint`` scans."""
    import repro

    return Path(repro.__file__).resolve().parent


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    only: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the rules over every module under ``paths``; sorted findings."""
    active = list(rules) if rules is not None else all_rules(only)
    findings: list[Finding] = []
    for root in paths:
        for path in iter_python_files(Path(root)):
            module = ModuleInfo.from_file(path)
            findings.extend(analyze_module(module, active))
    return sorted(findings)


def analyze_module(
    module: ModuleInfo, rules: Optional[Sequence[Rule]] = None
) -> list[Finding]:
    """Run the rules over one parsed module (suppressions applied)."""
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.run(module))
    return sorted(findings)
