"""File discovery and two-phase rule execution for ``repro lint``.

Phase 1 parses every module under the target paths and builds one shared
:class:`~repro.analysis.model.ProgramModel` (class-state and wire-schema
tables). Phase 2 runs each rule over each module with the model in hand,
so rules can reason about cross-module facts — which coroutines share an
attribute, whether a tag byte has both codec arms — that no single-module
pass can see.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.core import Finding, ModuleInfo, Rule, all_rules
from repro.analysis.model import ProgramModel, build_model

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_python_files(root: Path) -> Iterable[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if not _SKIP_DIRS.intersection(path.parts):
            yield path


def default_target() -> Path:
    """The installed ``repro`` package directory — what ``repro lint`` scans."""
    import repro

    return Path(repro.__file__).resolve().parent


def load_modules(paths: Sequence[Path]) -> list[ModuleInfo]:
    """Parse every module under ``paths`` (phase-1 input)."""
    modules: list[ModuleInfo] = []
    for root in paths:
        for path in iter_python_files(Path(root)):
            modules.append(ModuleInfo.from_file(path))
    return modules


def analyze_modules(
    modules: Sequence[ModuleInfo],
    rules: Optional[Sequence[Rule]] = None,
    only: Optional[Iterable[str]] = None,
    model: Optional[ProgramModel] = None,
) -> list[Finding]:
    """Run the rules over already-parsed modules; sorted findings.

    ``model`` lets callers supply a prebuilt (e.g. cached) phase-1 model;
    by default it is built here over exactly the given modules.
    """
    active = list(rules) if rules is not None else all_rules(only)
    if model is None:
        model = build_model(modules)
    findings: list[Finding] = []
    for module in modules:
        for rule in active:
            findings.extend(rule.run(module, model))
    return sorted(findings)


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    only: Optional[Iterable[str]] = None,
    model: Optional[ProgramModel] = None,
) -> list[Finding]:
    """Run the rules over every module under ``paths``; sorted findings."""
    return analyze_modules(load_modules(paths), rules, only, model)


def analyze_module(
    module: ModuleInfo,
    rules: Optional[Sequence[Rule]] = None,
    model: Optional[ProgramModel] = None,
) -> list[Finding]:
    """Run the rules over one parsed module (suppressions applied).

    Single-module convenience: the model degrades to what one module's
    AST can provide, which is exactly the PR 3 behaviour.
    """
    return analyze_modules([module], rules, model=model)
