"""Kanjani-Lee-Maguffee-Welch-style BFT MWMR regular register.

Reference [14] of the paper: a simple Byzantine-fault-tolerant multi-writer
regular register with ``n >= 3f + 1`` servers and *unbounded*
``(counter, writer_id)`` timestamps:

* **write** — query all servers, wait for ``n - f`` timestamps, pick
  ``(max + 1, id)``, store at all, wait for ``n - f`` acks;
* **read** — query all servers; servers keep the reader registered and
  forward every subsequently applied write; the reader waits until some
  (value, ts) pair is vouched for by at least ``f + 1`` distinct servers
  (so at least one correct), then returns the ≺-largest such pair. The
  wait is justified because a completed write eventually reaches every
  correct server — *if the servers started in a clean state*.

Role in the reproduction (E8): the strongest non-stabilizing baseline —
genuinely regular under ``f`` Byzantine servers from clean starts, but
transient corruption defeats it two ways:

* a read invoked before any post-corruption write can block forever
  (no pair ever reaches ``f + 1`` matching vouchers), and
* ``f + 1`` coincidentally equal corrupted pairs with a huge counter are
  indistinguishable from a real recent write and win reads *forever*
  (unbounded timestamps never wrap, so no legitimate write can pass a
  corrupted counter the write quorum never observed).

The paper's protocol needs more servers (``5f + 1``) and a richer read
(``2f + 1`` witnesses + history graphs + abort) exactly to close those
holes.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from repro.baselines.common import BaselineClient, BaselineSystem, LexPairScheme
from repro.core.messages import (
    CompleteRead,
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteRequest,
)
from repro.sim.environment import SimEnvironment
from repro.sim.process import Process, Wait
from repro.spec.history import OpKind, OpStatus


class KanjaniServer(Process):
    """3f+1 replica: adopt-if-newer, forward writes to running readers."""

    def __init__(self, pid: str, env: SimEnvironment, system: "KanjaniSystem") -> None:
        super().__init__(pid, env)
        self.system = system
        self.scheme = system.scheme
        self.value: Any = None
        self.ts: tuple[int, str] = self.scheme.initial_label()
        self.running_read: dict[str, int] = {}

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GetTs):
            self.send(src, TsReply(ts=self.ts))
        elif isinstance(payload, WriteRequest):
            if self.scheme.is_label(payload.ts) and self.scheme.precedes(
                self.ts, payload.ts
            ):
                self.value = payload.value
                self.ts = payload.ts
            self.send(src, WriteAck(ts=payload.ts))
            for reader, label in list(self.running_read.items()):
                self.send(reader, self._reply(label))
        elif isinstance(payload, ReadRequest):
            if isinstance(payload.label, int):
                self.running_read[src] = payload.label
                self.send(src, self._reply(payload.label))
        elif isinstance(payload, CompleteRead):
            if self.running_read.get(src) == payload.label:
                del self.running_read[src]

    def _reply(self, label: int) -> ReadReply:
        return ReadReply(
            server=self.pid,
            value=self.value,
            ts=self.ts,
            old_vals=(),
            label=label,
        )

    def corrupt_state(self, rng: random.Random) -> None:
        self.value = f"corrupt-{rng.getrandbits(24):06x}"
        self.ts = self.scheme.random_label(rng)
        self.running_read = {}


class KanjaniClient(BaselineClient):
    """Client of the 3f+1 regular register."""

    def __init__(self, pid: str, env: SimEnvironment, system: "KanjaniSystem") -> None:
        super().__init__(pid, env, system.server_ids, system.recorder)
        self.system = system
        self.scheme = system.scheme
        self._read_nonce = 0
        self._ts_replies: dict[str, Any] = {}
        self._collecting_ts = False
        self._acks: set[str] = set()
        self._pending_ts: Any = None
        # Latest (value, ts) vouched per server for the current read.
        self._vouch: dict[str, tuple[Any, Any]] = {}
        self._read_label: Any = None

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, TsReply):
            if self._collecting_ts and src not in self._ts_replies:
                self._ts_replies[src] = payload.ts
        elif isinstance(payload, WriteAck):
            if payload.ts == self._pending_ts:
                self._acks.add(src)
        elif isinstance(payload, ReadReply):
            if payload.label == self._read_label:
                self._vouch[src] = (payload.value, payload.ts)

    def write(self, value: Any):
        return self._begin(self._write_op(value), f"{self.pid}:write({value!r})")

    def read(self):
        return self._begin(self._read_op(), f"{self.pid}:read()")

    def _write_op(self, value: Any) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.WRITE, argument=value)
        quorum = self.system.n - self.system.f
        self._ts_replies = {}
        self._collecting_ts = True
        self.broadcast(self.servers, GetTs())
        yield Wait(lambda: len(self._ts_replies) >= quorum, label="kanjani write: ts")
        self._collecting_ts = False
        ts = self.scheme.next_for(self._ts_replies.values(), self.pid)
        self._pending_ts = ts
        self._acks = set()
        self.broadcast(self.servers, WriteRequest(value=value, ts=ts))
        yield Wait(lambda: len(self._acks) >= quorum, label="kanjani write: store")
        self._pending_ts = None
        self.recorder.responded(op, OpStatus.OK, timestamp=ts)
        return ts

    def _qualified(self) -> Any:
        """≺-largest pair vouched by >= f+1 servers, or None."""
        witnesses: dict[tuple[Any, Any], set[str]] = {}
        for server, (value, ts) in self._vouch.items():
            if self.scheme.is_label(ts):
                witnesses.setdefault((value, ts), set()).add(server)
        best = None
        for (value, ts), who in witnesses.items():
            if len(who) >= self.system.f + 1:
                if best is None or self.scheme.precedes(best[1], ts):
                    best = (value, ts)
        return best

    def _read_op(self) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.READ)
        self._read_nonce += 1
        self._read_label = self._read_nonce
        self._vouch = {}
        self.broadcast(
            self.servers, ReadRequest(label=self._read_label, reader=self.pid)
        )
        # Block until some pair reaches f+1 vouchers; forwarded replies
        # keep arriving while writes progress. From a corrupted start with
        # no fresh write this wait never ends — the non-stabilizing hole.
        yield Wait(lambda: self._qualified() is not None, label="kanjani read")
        value, ts = self._qualified()
        label = self._read_label
        self._read_label = None
        self.broadcast(self.servers, CompleteRead(label=label, reader=self.pid))
        self.recorder.responded(op, OpStatus.OK, result=value)
        return value


class KanjaniSystem(BaselineSystem):
    """A deployed 3f+1 BFT MWMR regular register (unbounded timestamps)."""

    protocol_name = "kanjani"
    server_cls = KanjaniServer
    client_cls = KanjaniClient

    def __init__(self, n: int, f: int, **kwargs: Any) -> None:
        if n < 3 * f + 1:
            raise ValueError(f"BFT quorums need n >= 3f + 1, got n={n}, f={f}")
        self.scheme = LexPairScheme()
        super().__init__(n, f, **kwargs)

    def checker(self, **overrides: Any):
        kwargs: dict[str, Any] = dict(scheme=self.scheme)
        kwargs.update(overrides)
        return super().checker(**kwargs)
