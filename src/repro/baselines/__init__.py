"""Baseline register protocols for the comparative experiments.

* :mod:`repro.baselines.tm1r` — the protocol class ``TM_1R`` of Theorem 1:
  timestamp-based, one-phase reads, majority decisions, bounded wraparound
  labels. Used to mechanize the lower bound (E1): with ``n = 5f`` there is
  an execution from a corrupted configuration that violates regularity,
  whichever deterministic read decision the protocol uses.
* :mod:`repro.baselines.abd` — the classical crash-tolerant SWMR atomic
  register (ABD) with majority quorums (``n >= 2f + 1``) and unbounded
  timestamps. Atomic under crash faults; broken by a single Byzantine
  server (E8).
* :mod:`repro.baselines.malkhi_reiter` — the Malkhi-Reiter masking-quorum
  *safe* register (``n >= 4f + 1``). Byzantine-tolerant but only safe, and
  not stabilizing (E8).
* :mod:`repro.baselines.kanjani` — a Kanjani-et-al.-style BFT MWMR
  *regular* register with ``n >= 3f + 1`` and unbounded timestamps. The
  strongest non-stabilizing comparison point: regular under Byzantine
  faults, but transient corruption can wedge or mislead it (E8), which is
  the gap the paper fills.

All baselines run on the same simulation substrate, record the same
history format, and are judged by the same checkers as the paper's
protocol.
"""

from repro.baselines.tm1r import Tm1rSystem, Tm1rServer, Tm1rClient
from repro.baselines.abd import AbdSystem, AbdServer, AbdClient
from repro.baselines.malkhi_reiter import MrSafeSystem, MrSafeServer, MrSafeClient
from repro.baselines.kanjani import KanjaniSystem, KanjaniServer, KanjaniClient

__all__ = [
    "Tm1rSystem",
    "Tm1rServer",
    "Tm1rClient",
    "AbdSystem",
    "AbdServer",
    "AbdClient",
    "MrSafeSystem",
    "MrSafeServer",
    "MrSafeClient",
    "KanjaniSystem",
    "KanjaniServer",
    "KanjaniClient",
]
