"""Malkhi-Reiter masking-quorum *safe* register.

The first Byzantine quorum system construction (reference [10] of the
paper): with ``n >= 4f + 1`` servers and quorums of size
``ceil((n + 2f + 1) / 2)`` any two quorums intersect in at least
``2f + 1`` servers, of which at least ``f + 1`` are correct — enough to
*mask* Byzantine answers:

* **write** — query a quorum for timestamps, pick the next one, store at a
  quorum;
* **read** — query a quorum; discard every (value, ts) pair vouched for by
  at most ``f`` servers; return the value of the largest surviving
  timestamp. With no survivor (possible only under concurrency or
  corruption) return the initial value — the *safe* semantics permit an
  arbitrary result for concurrent reads.

Role in the reproduction (E8): Byzantine-tolerant but only **safe** —
reads concurrent with writes may return anything, which the regularity
checker flags — and non-stabilizing: after transient corruption with no
fresh write, reads return corrupted survivors forever.
"""

from __future__ import annotations

import math
import random
from typing import Any, Generator

from repro.baselines.common import BaselineClient, BaselineSystem, LexPairScheme
from repro.core.messages import (
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteRequest,
)
from repro.sim.environment import SimEnvironment
from repro.sim.process import Process, Wait
from repro.spec.history import OpKind, OpStatus


class MrSafeServer(Process):
    """Masking-quorum replica (same store rule as ABD)."""

    def __init__(self, pid: str, env: SimEnvironment, system: "MrSafeSystem") -> None:
        super().__init__(pid, env)
        self.system = system
        self.scheme = system.scheme
        self.value: Any = None
        self.ts: tuple[int, str] = self.scheme.initial_label()

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GetTs):
            self.send(src, TsReply(ts=self.ts))
        elif isinstance(payload, WriteRequest):
            if self.scheme.is_label(payload.ts) and self.scheme.precedes(
                self.ts, payload.ts
            ):
                self.value = payload.value
                self.ts = payload.ts
            self.send(src, WriteAck(ts=payload.ts))
        elif isinstance(payload, ReadRequest):
            if isinstance(payload.label, int):
                self.send(
                    src,
                    ReadReply(
                        server=self.pid,
                        value=self.value,
                        ts=self.ts,
                        old_vals=(),
                        label=payload.label,
                    ),
                )

    def corrupt_state(self, rng: random.Random) -> None:
        self.value = f"corrupt-{rng.getrandbits(24):06x}"
        self.ts = self.scheme.random_label(rng)


class MrSafeClient(BaselineClient):
    """Masking-quorum client: mask (<= f)-vouched pairs on read."""

    def __init__(self, pid: str, env: SimEnvironment, system: "MrSafeSystem") -> None:
        super().__init__(pid, env, system.server_ids, system.recorder)
        self.system = system
        self.scheme = system.scheme
        self._read_nonce = 0
        self._ts_replies: dict[str, Any] = {}
        self._collecting_ts = False
        self._acks: set[str] = set()
        self._pending_ts: Any = None
        self._replies: dict[str, tuple[Any, Any]] = {}
        self._read_label: Any = None

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, TsReply):
            if self._collecting_ts and src not in self._ts_replies:
                self._ts_replies[src] = payload.ts
        elif isinstance(payload, WriteAck):
            if payload.ts == self._pending_ts:
                self._acks.add(src)
        elif isinstance(payload, ReadReply):
            if payload.label == self._read_label and src not in self._replies:
                self._replies[src] = (payload.value, payload.ts)

    def write(self, value: Any):
        return self._begin(self._write_op(value), f"{self.pid}:write({value!r})")

    def read(self):
        return self._begin(self._read_op(), f"{self.pid}:read()")

    def _write_op(self, value: Any) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.WRITE, argument=value)
        q = self.system.quorum
        self._ts_replies = {}
        self._collecting_ts = True
        self.broadcast(self.servers, GetTs())
        yield Wait(lambda: len(self._ts_replies) >= q, label="mr write: ts")
        self._collecting_ts = False
        ts = self.scheme.next_for(self._ts_replies.values(), self.pid)
        self._pending_ts = ts
        self._acks = set()
        self.broadcast(self.servers, WriteRequest(value=value, ts=ts))
        yield Wait(lambda: len(self._acks) >= q, label="mr write: store")
        self._pending_ts = None
        self.recorder.responded(op, OpStatus.OK, timestamp=ts)
        return ts

    def _read_op(self) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.READ)
        q = self.system.quorum
        self._read_nonce += 1
        self._read_label = self._read_nonce
        self._replies = {}
        self.broadcast(
            self.servers, ReadRequest(label=self._read_label, reader=self.pid)
        )
        yield Wait(lambda: len(self._replies) >= q, label="mr read")
        self._read_label = None
        witnesses: dict[tuple[Any, Any], set[str]] = {}
        for server, (value, ts) in self._replies.items():
            if self.scheme.is_label(ts):
                witnesses.setdefault((value, ts), set()).add(server)
        masked = [
            pair
            for pair, who in witnesses.items()
            if len(who) >= self.system.f + 1
        ]
        best_value = None
        best_ts = self.scheme.initial_label()
        for value, ts in masked:
            if self.scheme.precedes(best_ts, ts):
                best_value, best_ts = value, ts
        self.recorder.responded(op, OpStatus.OK, result=best_value)
        return best_value


class MrSafeSystem(BaselineSystem):
    """A deployed Malkhi-Reiter masking-quorum safe register."""

    protocol_name = "malkhi-reiter-safe"
    server_cls = MrSafeServer
    client_cls = MrSafeClient

    def __init__(self, n: int, f: int, **kwargs: Any) -> None:
        if n < 4 * f + 1:
            raise ValueError(
                f"masking quorums need n >= 4f + 1, got n={n}, f={f}"
            )
        self.scheme = LexPairScheme()
        super().__init__(n, f, **kwargs)

    @property
    def quorum(self) -> int:
        """Masking quorum size: ``ceil((n + 2f + 1) / 2)``."""
        return math.ceil((self.n + 2 * self.f + 1) / 2)

    def checker(self, **overrides: Any):
        kwargs: dict[str, Any] = dict(scheme=self.scheme)
        kwargs.update(overrides)
        return super().checker(**kwargs)
