"""Shared scaffolding for baseline protocol implementations.

Every baseline exposes the same run-time surface as
:class:`~repro.core.register.RegisterSystem` (``write_sync`` /
``read_sync`` / ``history`` / ``checker``), so the comparative experiment
(E8) can sweep protocols uniformly. This module factors the system
assembly and the sequential-client bookkeeping out of the individual
protocols.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.labels.base import LabelingScheme
from repro.sim.adversary import Adversary
from repro.sim.channels import Channel, FifoChannel
from repro.sim.environment import SimEnvironment
from repro.sim.process import OperationHandle, Process
from repro.spec.history import History, HistoryRecorder
from repro.spec.regularity import RegularityChecker, RegularityVerdict


class LexPairScheme(LabelingScheme):
    """Unbounded ``(counter, writer_id)`` timestamps, ordered
    lexicographically — the classical scheme of ABD/Kanjani-style
    protocols. Total order; ``next`` increments the max counter."""

    k = None

    def precedes(self, a: Any, b: Any) -> bool:
        if not (self.is_label(a) and self.is_label(b)):
            return False
        return a < b

    def next_label(self, labels) -> Any:
        valid = self.valid_labels(labels)
        top = max((c for c, _ in valid), default=0)
        return (top + 1, "?")

    def next_for(self, labels, writer_id: str) -> tuple[int, str]:
        valid = self.valid_labels(labels)
        top = max((c for c, _ in valid), default=0)
        return (top + 1, writer_id)

    def initial_label(self) -> Any:
        return (0, "")

    def is_label(self, x: Any) -> bool:
        return (
            isinstance(x, tuple)
            and len(x) == 2
            and isinstance(x[0], int)
            and not isinstance(x[0], bool)
            and x[0] >= 0
            and isinstance(x[1], str)
        )

    def random_label(self, rng: random.Random) -> Any:
        return (rng.randrange(0, 1 << rng.randrange(1, 40)), f"w{rng.randrange(8)}")

    def sort_key(self, label: Any):
        return label


class BaselineClient(Process):
    """Common client machinery: sequential ops + history recording."""

    def __init__(
        self,
        pid: str,
        env: SimEnvironment,
        servers: Sequence[str],
        recorder: HistoryRecorder,
    ) -> None:
        super().__init__(pid, env)
        self.servers = list(servers)
        self.recorder = recorder
        self._active_op: Optional[OperationHandle] = None

    def _begin(self, gen, name: str) -> OperationHandle:
        if self._active_op is not None and not self._active_op.done:
            raise ConfigurationError(
                f"{self.pid}: {name} while {self._active_op.name} is running"
            )
        handle = self.start_operation(gen, name=name)
        self._active_op = handle
        handle.on_done(lambda h: setattr(self, "_active_op", None))
        return handle

    @property
    def idle(self) -> bool:
        return self._active_op is None or self._active_op.done

    def crash(self) -> None:
        super().crash()
        self.recorder.crashed(self.pid)


class BaselineSystem:
    """Assembles servers + clients + history for one baseline protocol.

    Subclasses set ``server_cls`` / ``client_cls`` and may override
    :meth:`make_server` / :meth:`make_client` for extra constructor
    arguments. Byzantine substitution mirrors
    :class:`~repro.core.register.RegisterSystem`.
    """

    #: Human-readable protocol name for experiment tables.
    protocol_name = "baseline"
    server_cls: type = Process
    client_cls: type = BaselineClient

    def __init__(
        self,
        n: int,
        f: int,
        seed: int = 0,
        n_clients: int = 2,
        adversary: Optional[Adversary] = None,
        channel_factory: Callable[[], Channel] = FifoChannel,
        byzantine: Optional[dict[str, Callable[..., Process]]] = None,
        max_events: int = 50_000_000,
    ) -> None:
        self.n = n
        self.f = f
        byzantine = dict(byzantine or {})
        self.env = SimEnvironment(
            seed=seed,
            adversary=adversary,
            channel_factory=channel_factory,
            max_events=max_events,
        )
        self.history = History()
        self.recorder = HistoryRecorder(self.history, lambda: self.env.now)
        self.server_ids = [f"s{i}" for i in range(n)]
        self.byzantine_ids = set(byzantine)
        self.servers: dict[str, Process] = {}
        for sid in self.server_ids:
            factory = byzantine.get(sid)
            if factory is not None:
                self.servers[sid] = factory(sid, self.env, self)
            else:
                self.servers[sid] = self.make_server(sid)
        self.clients: dict[str, BaselineClient] = {}
        for i in range(n_clients):
            cid = f"c{i}"
            self.clients[cid] = self.make_client(cid)

    # ------------------------------------------------------------------
    # assembly hooks
    # ------------------------------------------------------------------
    def make_server(self, sid: str) -> Process:
        return self.server_cls(sid, self.env, self)

    def make_client(self, cid: str) -> BaselineClient:
        return self.client_cls(cid, self.env, self)

    # ------------------------------------------------------------------
    # uniform surface
    # ------------------------------------------------------------------
    def write(self, cid: str, value: Any) -> OperationHandle:
        return self.clients[cid].write(value)

    def read(self, cid: str) -> OperationHandle:
        return self.clients[cid].read()

    def write_sync(self, cid: str, value: Any) -> Any:
        handle = self.write(cid, value)
        self.env.run_to_completion(lambda: handle.done)
        self.env.tick()
        return handle.result

    def read_sync(self, cid: str) -> Any:
        handle = self.read(cid)
        self.env.run_to_completion(lambda: handle.done)
        self.env.tick()
        return handle.result

    def settle(self) -> int:
        return self.env.run()

    def correct_servers(self) -> list[Process]:
        return [
            proc
            for sid, proc in self.servers.items()
            if sid not in self.byzantine_ids
        ]

    def corrupt_servers(self, sids: Optional[Sequence[str]] = None) -> list[str]:
        rng = self.env.spawn_rng("corrupt-servers")
        targets = (
            [self.servers[s] for s in sids]
            if sids is not None
            else list(self.correct_servers())
        )
        for proc in targets:
            proc.corrupt_state(rng)
        return [p.pid for p in targets]

    def corrupt_clients(self, cids: Optional[Sequence[str]] = None) -> list[str]:
        rng = self.env.spawn_rng("corrupt-clients")
        targets = (
            [self.clients[c] for c in cids]
            if cids is not None
            else list(self.clients.values())
        )
        for proc in targets:
            proc.corrupt_state(rng)
        return [p.pid for p in targets]

    def checker(self, **overrides: Any) -> RegularityChecker:
        kwargs: dict[str, Any] = dict(initial_value=None)
        kwargs.update(overrides)
        return RegularityChecker(**kwargs)

    def check_regularity(self, **overrides: Any) -> RegularityVerdict:
        return self.checker(**overrides).check(self.history)

    @property
    def message_stats(self):
        return self.env.network.stats
