"""The protocol class ``TM_1R`` of Theorem 1, made concrete.

Theorem 1 quantifies over "asynchronous stabilizing protocols implementing
regular registers timestamping operations, with one-phase reads (no write
back) and decision based on majority of correct processes". To *execute*
the impossibility argument we need a concrete member of that class:

* bounded wraparound timestamps
  (:class:`~repro.labels.modular.ModularLabelingScheme` — any bounded
  scheme works; the proof's corrupted configuration places a label the
  writer will re-generate later);
* two-phase writes: gather ``n - f`` current timestamps, ``next()``, write
  to all, wait ``n - f`` responses;
* **one-phase reads**: ask everyone, take the first ``n - f`` replies,
  decide from that multiset alone — no flush handshake, no history
  windows, no abort;
* conditional adoption (a server only adopts a pair whose timestamp
  follows its own).

The read decision is a parameter, because the theorem defeats *every*
deterministic rule: the scripted execution of experiment E1 hands two
reads the *same multiset* of (value, timestamp) pairs while regularity
demands different answers. ``newest-qualified`` (return the ≺-maximal pair
vouched by at least ``f+1`` servers) fails the first read; the
``oldest-qualified`` rule fails the second.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Optional

from repro.baselines.common import BaselineClient, BaselineSystem
from repro.core.messages import (
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteNack,
    WriteRequest,
)
from repro.labels.base import LabelingScheme
from repro.labels.modular import ModularLabelingScheme
from repro.sim.environment import SimEnvironment
from repro.sim.process import Process, Wait
from repro.spec.history import OpKind, OpStatus

#: A decision rule maps (scheme, f, replies) -> returned value, where
#: replies is a list of (server, value, ts) triples.
DecisionRule = Callable[[LabelingScheme, int, list[tuple[str, Any, Any]]], Any]


def newest_qualified(
    scheme: LabelingScheme, f: int, replies: list[tuple[str, Any, Any]]
) -> Any:
    """Return the ≺-maximal pair vouched by at least ``f + 1`` servers."""
    return _qualified_extreme(scheme, f, replies, newest=True)


def oldest_qualified(
    scheme: LabelingScheme, f: int, replies: list[tuple[str, Any, Any]]
) -> Any:
    """Return the ≺-minimal pair vouched by at least ``f + 1`` servers."""
    return _qualified_extreme(scheme, f, replies, newest=False)


def _qualified_extreme(
    scheme: LabelingScheme,
    f: int,
    replies: list[tuple[str, Any, Any]],
    newest: bool,
) -> Any:
    witnesses: dict[tuple[Any, Any], set[str]] = {}
    for server, value, ts in replies:
        if scheme.is_label(ts):
            witnesses.setdefault((value, ts), set()).add(server)
    qualified = [pair for pair, who in witnesses.items() if len(who) >= f + 1]
    pool = qualified or list(witnesses)
    if not pool:
        return None
    extreme = pool[0]
    for pair in pool[1:]:
        ahead = scheme.precedes(extreme[1], pair[1])
        if (newest and ahead) or (not newest and scheme.precedes(pair[1], extreme[1])):
            extreme = pair
    return extreme[0]


class Tm1rServer(Process):
    """TM_1R server: conditional adoption, one-phase read replies."""

    def __init__(self, pid: str, env: SimEnvironment, system: "Tm1rSystem") -> None:
        super().__init__(pid, env)
        self.system = system
        self.scheme = system.scheme
        self.value: Any = None
        self.ts: Any = self.scheme.initial_label()

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GetTs):
            self.send(src, TsReply(ts=self.ts))
        elif isinstance(payload, WriteRequest):
            if self.scheme.is_label(payload.ts) and self.scheme.precedes(
                self.ts, payload.ts
            ):
                self.value = payload.value
                self.ts = payload.ts
                self.send(src, WriteAck(ts=payload.ts))
            else:
                self.send(src, WriteNack(ts=payload.ts))
        elif isinstance(payload, ReadRequest):
            if isinstance(payload.label, int):
                self.send(
                    src,
                    ReadReply(
                        server=self.pid,
                        value=self.value,
                        ts=self.ts,
                        old_vals=(),
                        label=payload.label,
                    ),
                )

    def corrupt_state(self, rng: random.Random) -> None:
        self.value = f"corrupt-{rng.getrandbits(24):06x}"
        self.ts = self.scheme.random_label(rng)

    def set_state(self, value: Any, ts: Any) -> None:
        """Scripted state injection for the Theorem 1 execution."""
        self.value = value
        self.ts = ts


class Tm1rClient(BaselineClient):
    """TM_1R client: two-phase writes, single-phase majority-decision reads."""

    def __init__(self, pid: str, env: SimEnvironment, system: "Tm1rSystem") -> None:
        super().__init__(pid, env, system.server_ids, system.recorder)
        self.system = system
        self.scheme = system.scheme
        self.write_ts: Any = self.scheme.initial_label()
        self._read_nonce = 0
        self._wts_by_server: dict[str, Any] = {}
        self._collecting = False
        self._responded: set[str] = set()
        self._pending_ts: Any = None
        self._replies: list[tuple[str, Any, Any]] = []
        self._reply_servers: set[str] = set()
        self._read_label: Optional[int] = None

    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, TsReply):
            if self._collecting and src not in self._wts_by_server:
                self._wts_by_server[src] = payload.ts
        elif isinstance(payload, (WriteAck, WriteNack)):
            if payload.ts == self._pending_ts:
                self._responded.add(src)
        elif isinstance(payload, ReadReply):
            if payload.label == self._read_label and src not in self._reply_servers:
                self._replies.append((src, payload.value, payload.ts))
                self._reply_servers.add(src)

    # ------------------------------------------------------------------
    def write(self, value: Any):
        return self._begin(self._write_op(value), f"{self.pid}:write({value!r})")

    def read(self):
        return self._begin(self._read_op(), f"{self.pid}:read()")

    def _write_op(self, value: Any) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.WRITE, argument=value)
        quorum = self.system.n - self.system.f
        self._wts_by_server = {}
        self._collecting = True
        self.broadcast(self.servers, GetTs())
        yield Wait(
            lambda: len(self._wts_by_server) >= quorum, label="tm1r write: ts"
        )
        self._collecting = False
        gathered = list(self._wts_by_server.values()) + [self.write_ts]
        ts = self.scheme.next_label(gathered)
        self.write_ts = ts
        self._pending_ts = ts
        self._responded = set()
        self.broadcast(self.servers, WriteRequest(value=value, ts=ts))
        yield Wait(
            lambda: len(self._responded) >= quorum, label="tm1r write: resp"
        )
        self._pending_ts = None
        self.recorder.responded(op, OpStatus.OK, timestamp=ts)
        return ts

    def _read_op(self) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.READ)
        quorum = self.system.n - self.system.f
        self._read_nonce += 1
        self._read_label = self._read_nonce
        self._replies = []
        self._reply_servers = set()
        self.broadcast(
            self.servers, ReadRequest(label=self._read_label, reader=self.pid)
        )
        yield Wait(
            lambda: len(self._reply_servers) >= quorum, label="tm1r read"
        )
        self._read_label = None
        value = self.system.decision(self.scheme, self.system.f, self._replies)
        self.recorder.responded(op, OpStatus.OK, result=value)
        return value


class Tm1rSystem(BaselineSystem):
    """A deployed TM_1R register (the Theorem 1 protocol class)."""

    protocol_name = "tm1r"
    server_cls = Tm1rServer
    client_cls = Tm1rClient

    def __init__(
        self,
        n: int,
        f: int,
        decision: DecisionRule = newest_qualified,
        scheme: Optional[LabelingScheme] = None,
        **kwargs: Any,
    ) -> None:
        self.scheme = scheme or ModularLabelingScheme(modulus=64)
        self.decision = decision
        super().__init__(n, f, **kwargs)

    def checker(self, **overrides: Any):
        kwargs: dict[str, Any] = dict(scheme=self.scheme)
        kwargs.update(overrides)
        return super().checker(**kwargs)
