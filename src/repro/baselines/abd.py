"""The classical crash-tolerant atomic register (ABD), multi-writer form.

Attiya-Bar-Noy-Dolev style majority-quorum emulation with unbounded
``(counter, writer_id)`` timestamps, ``n >= 2f + 1`` where ``f`` bounds
*crash* failures:

* **write** — phase 1: query a majority for timestamps, pick
  ``(max + 1, id)``; phase 2: store at a majority.
* **read** — phase 1: query a majority, select the lexicographically
  largest pair; phase 2: *write back* that pair to a majority (the
  write-back is what lifts regular to atomic); return the value.

Servers adopt any strictly newer pair and acknowledge every store.

Role in the reproduction (E8): ABD is linearizable under crash faults —
and a single Byzantine server demolishes it, because a lone forged
timestamp wins every majority read. The experiments show exactly that,
motivating Byzantine quorums, and then show its unbounded timestamps are
also not a remedy for transient corruption in the Byzantine setting.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from repro.baselines.common import BaselineClient, BaselineSystem, LexPairScheme
from repro.core.messages import (
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteRequest,
)
from repro.sim.environment import SimEnvironment
from repro.sim.process import Process, Wait
from repro.spec.history import OpKind, OpStatus


class AbdServer(Process):
    """Majority-quorum replica: adopt-if-newer, acknowledge always."""

    def __init__(self, pid: str, env: SimEnvironment, system: "AbdSystem") -> None:
        super().__init__(pid, env)
        self.system = system
        self.scheme = system.scheme
        self.value: Any = None
        self.ts: tuple[int, str] = self.scheme.initial_label()

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GetTs):
            self.send(src, TsReply(ts=self.ts))
        elif isinstance(payload, WriteRequest):
            if self.scheme.is_label(payload.ts) and self.scheme.precedes(
                self.ts, payload.ts
            ):
                self.value = payload.value
                self.ts = payload.ts
            self.send(src, WriteAck(ts=payload.ts))
        elif isinstance(payload, ReadRequest):
            if isinstance(payload.label, int):
                self.send(
                    src,
                    ReadReply(
                        server=self.pid,
                        value=self.value,
                        ts=self.ts,
                        old_vals=(),
                        label=payload.label,
                    ),
                )

    def corrupt_state(self, rng: random.Random) -> None:
        self.value = f"corrupt-{rng.getrandbits(24):06x}"
        self.ts = self.scheme.random_label(rng)


class AbdClient(BaselineClient):
    """Two-phase writes and two-phase (write-back) reads."""

    def __init__(self, pid: str, env: SimEnvironment, system: "AbdSystem") -> None:
        super().__init__(pid, env, system.server_ids, system.recorder)
        self.system = system
        self.scheme = system.scheme
        self._read_nonce = 0
        self._ts_replies: dict[str, Any] = {}
        self._collecting_ts = False
        self._acks: set[str] = set()
        self._pending_ts: Any = None
        self._replies: dict[str, tuple[Any, Any]] = {}
        self._read_label: Any = None

    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, TsReply):
            if self._collecting_ts and src not in self._ts_replies:
                self._ts_replies[src] = payload.ts
        elif isinstance(payload, WriteAck):
            if payload.ts == self._pending_ts:
                self._acks.add(src)
        elif isinstance(payload, ReadReply):
            if payload.label == self._read_label and src not in self._replies:
                self._replies[src] = (payload.value, payload.ts)

    # ------------------------------------------------------------------
    def write(self, value: Any):
        return self._begin(self._write_op(value), f"{self.pid}:write({value!r})")

    def read(self):
        return self._begin(self._read_op(), f"{self.pid}:read()")

    @property
    def _majority(self) -> int:
        return self.system.n // 2 + 1

    def _store(self, value: Any, ts: Any) -> Generator[Wait, None, None]:
        """Phase 2 of writes and the write-back of reads."""
        self._pending_ts = ts
        self._acks = set()
        self.broadcast(self.servers, WriteRequest(value=value, ts=ts))
        yield Wait(lambda: len(self._acks) >= self._majority, label="abd store")
        self._pending_ts = None

    def _write_op(self, value: Any) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.WRITE, argument=value)
        self._ts_replies = {}
        self._collecting_ts = True
        self.broadcast(self.servers, GetTs())
        yield Wait(
            lambda: len(self._ts_replies) >= self._majority, label="abd write: ts"
        )
        self._collecting_ts = False
        ts = self.scheme.next_for(self._ts_replies.values(), self.pid)
        yield from self._store(value, ts)
        self.recorder.responded(op, OpStatus.OK, timestamp=ts)
        return ts

    def _read_op(self) -> Generator[Wait, None, Any]:
        op = self.recorder.invoked(self.pid, OpKind.READ)
        self._read_nonce += 1
        self._read_label = self._read_nonce
        self._replies = {}
        self.broadcast(
            self.servers, ReadRequest(label=self._read_label, reader=self.pid)
        )
        yield Wait(
            lambda: len(self._replies) >= self._majority, label="abd read"
        )
        self._read_label = None
        # Pick the lexicographically largest valid pair; garbage (from
        # Byzantine replies) wins if its counter is big enough — that
        # fragility is the point of the E8 comparison.
        best_value, best_ts = None, self.scheme.initial_label()
        for value, ts in self._replies.values():
            if self.scheme.is_label(ts) and self.scheme.precedes(best_ts, ts):
                best_value, best_ts = value, ts
        yield from self._store(best_value, best_ts)
        self.recorder.responded(op, OpStatus.OK, result=best_value)
        return best_value


class AbdSystem(BaselineSystem):
    """A deployed ABD register (crash model, majority quorums)."""

    protocol_name = "abd"
    server_cls = AbdServer
    client_cls = AbdClient

    def __init__(self, n: int, f: int, **kwargs: Any) -> None:
        self.scheme = LexPairScheme()
        super().__init__(n, f, **kwargs)

    def checker(self, **overrides: Any):
        kwargs: dict[str, Any] = dict(scheme=self.scheme)
        kwargs.update(overrides)
        return super().checker(**kwargs)
