"""Chaos plans: serializable trial descriptions and their sampler.

A :class:`ChaosPlan` is to the chaos engine what a
:class:`~repro.harness.fuzz.TrialRecipe` is to the fuzzer: *everything*
needed to replay one trial deterministically — deployment shape, workload,
Byzantine strategy, latency regime, and the nemesis timeline. Plans are
plain frozen data, so they pickle across a ``--jobs`` pool and serialize
to JSON for archival next to a witness (format tag
``repro-chaos-plan/1``, the :mod:`repro.spec.serialize` idiom).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.chaos.nemesis import (
    ChurnNemesis,
    CorruptionWaveNemesis,
    CrashRestartNemesis,
    LatencySurgeNemesis,
    MessageStormNemesis,
    MobileByzantineNemesis,
    Nemesis,
    PartitionNemesis,
    nemesis_from_dict,
)

PLAN_FORMAT = "repro-chaos-plan/1"


def server_down_windows(
    nemeses: Sequence[Nemesis],
) -> list[tuple[float, float, str]]:
    """``(start, end, target)`` spans during which a server is unavailable.

    Covers both flavours of server absence: crash–restart outages (the
    server is partitioned away) and churn departures (the server is really
    gone). Either way no quorum can count it while the window is open.
    """
    windows: list[tuple[float, float, str]] = []
    for nem in nemeses:
        if isinstance(nem, CrashRestartNemesis) and nem._is_server:
            windows.append((nem.time, nem.restart_at, nem.target))
        elif isinstance(nem, ChurnNemesis):
            windows.append((nem.time, nem.rejoin_at, nem.target))
    return windows


def max_concurrent_down(windows: Sequence[tuple[float, float, str]]) -> int:
    """Worst-case number of simultaneously absent servers."""
    events: list[tuple[float, int]] = []
    for start, end, _ in windows:
        events.append((start, 1))
        events.append((end, -1))
    # Heal-before-strike at equal instants: a server back at t is
    # available to quorums formed at t.
    events.sort(key=lambda e: (e[0], e[1]))
    worst = live = 0
    for _, delta in events:
        live += delta
        if live > worst:
            worst = live
    return worst


@dataclass(frozen=True)
class ChaosPlan:
    """One deterministic chaos trial.

    ``strategy`` is a :data:`~repro.byzantine.strategies.STRATEGY_ZOO`
    key, or ``""`` for a run with no Byzantine servers (crash/partition
    chaos against an honest deployment). ``horizon`` is the watchdog
    deadline on the simulation clock: a run still holding pending
    operations once the event queue drains — or still churning past the
    scheduler's event cap — is declared *stuck* and reported with
    forensics instead of hanging the campaign.
    """

    seed: int
    n: int
    f: int
    n_clients: int
    ops_per_client: int
    workload: str  # "mixed" | "read-heavy"
    strategy: str  # STRATEGY_ZOO key or "" for none
    latency: tuple[float, float]  # (lo, hi); lo == hi means fixed
    corrupt_at_start: bool
    nemeses: tuple[Nemesis, ...]
    horizon: float

    def __post_init__(self) -> None:
        if self.strategy and self.strategy not in STRATEGY_ZOO:
            raise ValueError(f"unknown strategy: {self.strategy!r}")
        if self.workload not in ("mixed", "read-heavy"):
            raise ValueError(f"unknown workload: {self.workload!r}")
        mobiles = [
            nem
            for nem in self.nemeses
            if isinstance(nem, MobileByzantineNemesis)
        ]
        if len(mobiles) > 1:
            raise ValueError(
                "at most one mobile-Byzantine nemesis per plan: two "
                f"carriers would mean 2 > f={self.f} simultaneous agents"
            )
        if mobiles and self.strategy:
            raise ValueError(
                "a mobile-Byzantine plan must leave `strategy` empty: the "
                "carrier brings its own strategy, and a static Byzantine "
                f"server plus the carrier would exceed f={self.f}"
            )
        if mobiles and any(
            isinstance(nem, ChurnNemesis) for nem in self.nemeses
        ):
            raise ValueError(
                "mobile-Byzantine and churn nemeses cannot share a plan: "
                "possessing a departed server would resurrect it as a "
                "Byzantine process, breaking both fault models' accounting"
            )
        down = max_concurrent_down(server_down_windows(self.nemeses))
        if down > self.f:
            raise ValueError(
                f"plan leaves fewer than n-f servers live: {down} "
                f"concurrent server outages/departures exceed f={self.f}, "
                "so operations in that window could never gather a quorum "
                "(stagger the windows or drop a nemesis)"
            )

    def size(self) -> int:
        """The shrinker's metric: ops + nemesis strikes + clients."""
        return (
            self.n_clients * self.ops_per_client
            + sum(nem.size() for nem in self.nemeses)
            + self.n_clients
        )

    def last_fault_time(self) -> float:
        """The last instant any nemesis scrambles state (0.0 if none)."""
        times = [t for nem in self.nemeses for t in nem.fault_times()]
        return max(times) if times else 0.0

    def faulted(self) -> bool:
        return self.corrupt_at_start or any(
            nem.fault_times() for nem in self.nemeses
        )


def plan_to_dict(plan: ChaosPlan) -> dict[str, Any]:
    return {
        "format": PLAN_FORMAT,
        "seed": plan.seed,
        "n": plan.n,
        "f": plan.f,
        "n_clients": plan.n_clients,
        "ops_per_client": plan.ops_per_client,
        "workload": plan.workload,
        "strategy": plan.strategy,
        "latency": list(plan.latency),
        "corrupt_at_start": plan.corrupt_at_start,
        "horizon": plan.horizon,
        "nemeses": [nem.to_dict() for nem in plan.nemeses],
    }


def plan_from_dict(data: dict[str, Any]) -> ChaosPlan:
    if data.get("format") != PLAN_FORMAT:
        raise ValueError(f"unknown chaos plan format: {data.get('format')!r}")
    return ChaosPlan(
        seed=int(data["seed"]),
        n=int(data["n"]),
        f=int(data["f"]),
        n_clients=int(data["n_clients"]),
        ops_per_client=int(data["ops_per_client"]),
        workload=str(data["workload"]),
        strategy=str(data["strategy"]),
        latency=(float(data["latency"][0]), float(data["latency"][1])),
        corrupt_at_start=bool(data["corrupt_at_start"]),
        horizon=float(data["horizon"]),
        nemeses=tuple(nemesis_from_dict(d) for d in data["nemeses"]),
    )


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------
def _sample_nemesis(
    rng: random.Random,
    which: str,
    n: int,
    f: int,
    n_clients: int,
    strategy_pool: Sequence[str] = (),
) -> Nemesis:
    correct_servers = [f"s{i}" for i in range(n - f)]
    clients = [f"c{i}" for i in range(n_clients)]
    if which == "partition":
        # Small islands: one or two processes cut off, mixing roles.
        pool = correct_servers + clients
        island = tuple(sorted(rng.sample(pool, rng.randint(1, 2))))
        return PartitionNemesis(
            start=round(rng.uniform(3.0, 30.0), 1),
            duration=round(rng.uniform(5.0, 20.0), 1),
            island=island,
        )
    if which == "crash-client":
        # A surviving client is guaranteed by sampling one victim only.
        t = round(rng.uniform(3.0, 30.0), 1)
        restart = (
            round(t + rng.uniform(3.0, 15.0), 1) if rng.random() < 0.6 else None
        )
        return CrashRestartNemesis(
            time=t, target=rng.choice(clients), restart_at=restart
        )
    if which == "crash-server":
        t = round(rng.uniform(3.0, 30.0), 1)
        return CrashRestartNemesis(
            time=t,
            target=rng.choice(correct_servers),
            restart_at=round(t + rng.uniform(3.0, 12.0), 1),
        )
    if which == "wave":
        times = tuple(
            sorted(
                round(rng.uniform(5.0, 40.0), 1)
                for _ in range(rng.randint(1, 2))
            )
        )
        return CorruptionWaveNemesis(
            times=times,
            server_fraction=round(rng.uniform(0.3, 1.0), 2),
            client_fraction=round(rng.uniform(0.0, 0.7), 2),
        )
    if which == "storm":
        return MessageStormNemesis(
            time=round(rng.uniform(3.0, 35.0), 1),
            pairs=rng.randint(2, 6),
            burst=rng.randint(1, 3),
        )
    if which == "surge":
        start = round(rng.uniform(2.0, 25.0), 1)
        return LatencySurgeNemesis(
            start=start,
            end=round(start + rng.uniform(5.0, 15.0), 1),
            factor=round(rng.uniform(2.0, 8.0), 1),
        )
    if which == "churn":
        t = round(rng.uniform(3.0, 30.0), 1)
        return ChurnNemesis(
            time=t,
            target=rng.choice(correct_servers),
            rejoin_at=round(t + rng.uniform(4.0, 12.0), 1),
        )
    if which == "mobile":
        return MobileByzantineNemesis(
            strategy=rng.choice(strategy_pool),
            start=round(rng.uniform(5.0, 20.0), 1),
            period=round(rng.uniform(5.0, 15.0), 1),
            moves=rng.randint(1, 3),
        )
    raise ValueError(f"unknown nemesis family: {which!r}")


#: the families :func:`sample_plan` draws from by default.
NEMESIS_FAMILIES = (
    "partition",
    "crash-client",
    "crash-server",
    "wave",
    "storm",
    "surge",
)

#: preset family mixes for the membership campaigns (duplicates weight
#: the draw toward the campaign's namesake).
CHURN_FAMILIES = ("churn", "churn", "partition", "surge", "crash-client")
MOBILITY_FAMILIES = ("mobile", "mobile", "crash-server", "storm", "surge")


def _serialize_outages(nemeses: list[Nemesis], f: int) -> list[Nemesis]:
    """Deterministically stagger sampled server-absence windows.

    The sampler must emit valid plans by construction —
    :class:`ChaosPlan` rejects more than ``f`` concurrent server
    outages/departures — so overlapping windows are shifted later (same
    duration) until at most ``f`` overlap. Processing windows in start
    order and re-checking after every shift keeps the result exact, not
    merely heuristic.
    """
    outages: list[tuple[float, int, float]] = []  # (start, index, end)
    for i, nem in enumerate(nemeses):
        if isinstance(nem, CrashRestartNemesis) and nem._is_server:
            outages.append((nem.time, i, nem.restart_at))
        elif isinstance(nem, ChurnNemesis):
            outages.append((nem.time, i, nem.rejoin_at))
    if len(outages) <= f:
        return nemeses
    outages.sort()
    ends: list[float] = []  # accepted absence-window end times
    for start, i, end in outages:
        while True:
            active = [e for e in ends if e > start]
            if len(active) < f:
                break
            bump = round(min(active) + 0.1, 1)
            end = round(end + (bump - start), 1)
            start = bump
        ends.append(end)
        nem = nemeses[i]
        if isinstance(nem, CrashRestartNemesis):
            nemeses[i] = replace(nem, time=start, restart_at=end)
        else:
            nemeses[i] = replace(nem, time=start, rejoin_at=end)
    return nemeses


def sample_plan(
    rng: random.Random,
    n: int,
    f: int,
    trial_seed: int,
    max_nemeses: int = 3,
    families: Sequence[str] = NEMESIS_FAMILIES,
    strategies: Optional[Sequence[str]] = None,
) -> ChaosPlan:
    """Draw one hostile chaos plan (the campaign's per-trial sampler).

    At most one client-crash nemesis is drawn per plan so at least one
    client always survives to issue the post-fault probe; everything else
    composes freely within :class:`ChaosPlan`'s validity rules — the
    sampler repairs draws that would violate them (duplicate mobile
    carriers, mobile+churn mixes, more than ``f`` concurrent server
    absences) instead of rejection-sampling, so every seed yields exactly
    one plan.

    ``families`` selects the nemesis mix (e.g. :data:`CHURN_FAMILIES`);
    ``strategies`` restricts the Byzantine strategy pool (e.g.
    :data:`~repro.byzantine.strategies.RESPONSIVE_STRATEGIES` for
    liveness-sensitive churn campaigns).
    """
    if rng.random() < 0.5:
        lo = round(rng.uniform(0.2, 1.0), 2)
        latency = (lo, round(lo + rng.uniform(0.5, 3.0), 2))
    else:
        latency = (1.0, 1.0)
    n_clients = rng.randint(2, 4)
    pool = sorted(strategies) if strategies is not None else sorted(STRATEGY_ZOO)
    strategy = rng.choice(pool) if rng.random() < 0.8 else ""
    count = rng.randint(1, max_nemeses)
    chosen: list[str] = []
    for _ in range(count):
        which = rng.choice(tuple(families))
        # Repair draws into a valid combination deterministically (no
        # rerolls: rerolling would consume rng state data-dependently).
        if which == "crash-client" and "crash-client" in chosen:
            which = "partition"
        if which == "mobile" and "mobile" in chosen:
            which = "wave"
        if which == "churn" and "mobile" in chosen:
            which = "crash-server"
        if which == "mobile" and "churn" in chosen:
            which = "wave"
        chosen.append(which)
    if "mobile" in chosen:
        # The carrier brings its own strategy; a static Byzantine server
        # on top of it would exceed f.
        strategy = ""
    nemeses = _serialize_outages(
        [
            _sample_nemesis(rng, which, n, f, n_clients, strategy_pool=pool)
            for which in chosen
        ],
        f,
    )
    horizon = 80.0 + max((nem.end_time() for nem in nemeses), default=0.0)
    return ChaosPlan(
        seed=trial_seed,
        n=n,
        f=f,
        n_clients=n_clients,
        ops_per_client=rng.randint(4, 8),
        workload=rng.choice(["mixed", "read-heavy"]),
        strategy=strategy,
        latency=latency,
        corrupt_at_start=rng.random() < 0.5,
        nemeses=tuple(nemeses),
        horizon=horizon,
    )
