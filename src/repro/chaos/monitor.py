"""Online invariant monitoring and watchdog forensics.

The chaos engine never runs a plan blind: it advances the simulation in
monitor-interval chunks and lets the :class:`InvariantMonitor` observe the
run between chunks. Each checkpoint records a *frontier* (clock, settled
operation census, pending operations, in-flight envelope count) and feeds
the growing history to the sweep
:class:`~repro.spec.stabilization.StabilizationAnalyzer` through the
:class:`~repro.spec.stabilization.IncrementalStabilization` cache — so
whole-prefix anomalies are spotted *while the run executes* at the cost of
one analyzer rebuild per completed operation, not per checkpoint.

When a run wedges (pending operations with a drained event queue) or
exhausts its horizon, :meth:`InvariantMonitor.forensics` assembles the
JSON-friendly post-mortem the watchdog attaches to the witness: the last
frontiers, who is blocked on what, and a sample of the envelopes still in
flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.spec.stabilization import IncrementalStabilization


@dataclass
class Frontier:
    """One checkpoint's snapshot of run progress."""

    time: float
    settled_ops: int
    pending_ops: int
    in_flight: int
    prefix_ok: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "settled_ops": self.settled_ops,
            "pending_ops": self.pending_ops,
            "in_flight": self.in_flight,
            "prefix_ok": self.prefix_ok,
        }


@dataclass
class InvariantMonitor:
    """Watches one register system while a chaos plan executes.

    Args:
        system: the :class:`~repro.core.register.RegisterSystem` under
            test (any object exposing ``env``/``history``/``clients`` and
            ``checker()`` works).
        keep_frontiers: how many checkpoints the forensic tail retains.
    """

    system: Any
    keep_frontiers: int = 8
    frontiers: list[Frontier] = field(default_factory=list)
    checkpoints: int = 0
    first_anomaly_time: Optional[float] = None

    def __post_init__(self) -> None:
        # Mid-run pending operations are normal, so the online prefix
        # check must not flag them as termination violations; the final
        # judge (with termination on) runs after the drain.
        self._incremental = IncrementalStabilization(
            self.system.history,
            self.system.checker(check_termination=False),
        )

    # ------------------------------------------------------------------
    def checkpoint(self) -> Frontier:
        """Record one frontier and judge the completed prefix."""
        env = self.system.env
        history = self.system.history
        settled = sum(1 for op in history if op.responded_at is not None)
        pending = len(history.pending())
        verdict = self._incremental.full_verdict()
        frontier = Frontier(
            time=env.now,
            settled_ops=settled,
            pending_ops=pending,
            in_flight=len(env.network.in_flight),
            prefix_ok=verdict.ok,
        )
        if not verdict.ok and self.first_anomaly_time is None:
            self.first_anomaly_time = env.now
        self.frontiers.append(frontier)
        del self.frontiers[: -self.keep_frontiers]
        self.checkpoints += 1
        return frontier

    @property
    def analyzer_rebuilds(self) -> int:
        return self._incremental.rebuilds

    # ------------------------------------------------------------------
    def wedged(self) -> bool:
        """Pending operations with nothing left to fire: a stuck run."""
        return (
            self.system.env.scheduler.idle()
            and len(self.system.history.pending()) > 0
        )

    def pending_report(self) -> list[str]:
        """Who is blocked on what (client handles still in flight)."""
        blocked = []
        for cid in sorted(self.system.clients):
            proc = self.system.clients[cid]
            for handle in proc.blocked_operations():
                blocked.append(
                    f"{handle.name} waiting on {handle.waiting_on!r}"
                )
        return blocked

    def in_flight_report(self, limit: int = 20) -> list[str]:
        """A sample of envelopes still in flight, oldest first."""
        envelopes = self.system.env.network.in_flight_envelopes()
        envelopes.sort(key=lambda e: (e.send_time, e.src, e.dst))
        return [
            f"{e.src}->{e.dst} {type(e.payload).__name__} @t={e.send_time:.2f}"
            for e in envelopes[:limit]
        ]

    def forensics(self) -> dict[str, Any]:
        """The watchdog's JSON-friendly post-mortem."""
        env = self.system.env
        adversary = env.network.adversary
        return {
            "now": env.now,
            "checkpoints": self.checkpoints,
            "first_anomaly_time": self.first_anomaly_time,
            "last_frontiers": [f.to_dict() for f in self.frontiers],
            "pending_ops": self.pending_report(),
            "in_flight": self.in_flight_report(),
            "in_flight_total": len(env.network.in_flight),
            "deferred_messages": getattr(adversary, "deferred", 0),
            "adversary": adversary.describe(),
            "queue_idle": env.scheduler.idle(),
        }
