"""The nemesis algebra: declarative, composable fault operators.

A *nemesis* is a small frozen dataclass describing one adversarial
episode. Nemeses carry no simulator handles — they are pure data, which
is what makes a :class:`~repro.chaos.plan.ChaosPlan` serializable,
replayable, and safe to ship across a ``--jobs`` process pool — and they
*compile* onto the repo's existing fault machinery:

* timed state faults become :class:`~repro.sim.faults.FaultSchedule`
  actions (:meth:`Nemesis.add_actions`);
* connectivity faults become
  :class:`~repro.sim.partitions.PartitionWindow` s
  (:meth:`Nemesis.partition_windows`) stacked into one
  :class:`~repro.sim.partitions.PartitioningAdversary`;
* latency faults become surge windows (:meth:`Nemesis.surge_windows`)
  interpreted by :class:`SurgeAdversary`.

Every nemesis also declares its *transient-fault instants*
(:meth:`Nemesis.fault_times`): the times after which process state may
have been scrambled. The chaos judge anchors pseudo-stabilization on the
first write completing after the **last** such instant, exactly as the
fuzzer does — a nemesis that only delays messages (partition, surge)
contributes none, because asynchrony never corrupts state and the
specification must hold across it.

Model-compliance notes baked into the operators:

* A *server* crash–restart is modelled as a single-process partition for
  the outage window plus a state scramble at the heal. Under asynchrony a
  crashed-then-recovering process is indistinguishable from a very slow
  one, and messages sent to it are delayed, not destroyed — which keeps
  the run inside the paper's reliable-channel model (losing a correct
  server's messages would exceed the ``f`` bound and wedge quorums).
* A *message storm* injects stale/forged envelopes via
  :class:`~repro.sim.faults.ChannelCorruptor.inject_stale`; it never
  destroys legitimately in-flight messages, for the same reason.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.sim.adversary import Adversary
from repro.sim.faults import ChannelCorruptor, FaultSchedule, garbage_forger
from repro.sim.partitions import PartitionWindow

#: A latency surge: (start, end, factor) — base latency multiplied by
#: ``factor`` for messages sent inside the window.
Surge = tuple[float, float, float]


class SurgeAdversary(Adversary):
    """Multiplies the base latency inside declared surge windows.

    Overlapping surges compound (their factors multiply), matching the
    intuition that two simultaneous slowdowns are worse than either.
    """

    def __init__(
        self,
        base: Adversary,
        surges: Iterable[Surge],
        clock: Callable[[], float],
    ) -> None:
        self.base = base
        self.surges = sorted(surges)
        self.clock = clock

    def latency(self, env: Any, rng: random.Random) -> float:
        delay = self.base.latency(env, rng)
        now = self.clock()
        for start, end, factor in self.surges:
            if start <= now < end:
                delay *= factor
        return delay

    def describe(self) -> str:
        spans = ", ".join(
            f"[{s}..{e}]x{f}" for s, e, f in self.surges
        )
        return f"Surge({spans}) over {self.base.describe()}"


@dataclass(frozen=True)
class Nemesis:
    """Base fault operator. Subclasses override the compile hooks."""

    #: serialization tag; every concrete subclass sets one.
    kind = "nemesis"

    def fault_times(self) -> tuple[float, ...]:
        """Instants after which process state may be scrambled."""
        return ()

    def partition_windows(self) -> list[PartitionWindow]:
        """Connectivity cuts this nemesis contributes."""
        return []

    def surge_windows(self) -> list[Surge]:
        """Latency surges this nemesis contributes."""
        return []

    def add_actions(self, system: Any, schedule: FaultSchedule) -> None:
        """Append this nemesis's timed actions to the shared schedule."""

    def size(self) -> int:
        """The shrinker's per-nemesis weight (number of strikes)."""
        return 1

    def end_time(self) -> float:
        """Last instant at which this nemesis still acts (horizon input)."""
        return max([0.0, *self.fault_times()])

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            data[f.name] = list(value) if isinstance(value, tuple) else value
        return data


@dataclass(frozen=True)
class PartitionNemesis(Nemesis):
    """Partition-then-heal: isolate ``island`` for ``duration`` time units.

    Messages crossing the cut are *delayed* until the heal (the paper's
    asynchronous model has no loss), so the specification must hold
    throughout — a partition contributes no fault instant.
    """

    start: float
    duration: float
    island: tuple[str, ...]

    kind = "partition"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"partition duration must be > 0: {self.duration}")
        if not self.island:
            raise ValueError("partition island must name at least one process")

    def partition_windows(self) -> list[PartitionWindow]:
        return [
            PartitionWindow(
                start=self.start,
                end=self.start + self.duration,
                island=frozenset(self.island),
            )
        ]

    def end_time(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class CrashRestartNemesis(Nemesis):
    """Crash ``target`` at ``time``; optionally recover at ``restart_at``.

    Clients crash for real: the in-flight operation settles as ``CRASHED``
    and a later restart recovers the client with *scrambled* state (the
    crash–recovery-with-arbitrary-memory fault model). ``restart_at=None``
    is a client crash-stop.

    Correct servers are crash–*restarted* only (``restart_at`` required):
    the outage compiles to a single-server partition window — under
    asynchrony a recovering server is indistinguishable from a very slow
    one — and the arbitrary recovered state is applied as a scramble at
    the heal. Crash-*stopping* a correct server would exceed the model's
    ``f``-bound and permanently wedge quorums, so it is rejected.
    """

    time: float
    target: str
    restart_at: Optional[float] = None

    kind = "crash-restart"

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.time:
            raise ValueError(
                f"restart must follow the crash: {self.restart_at} <= {self.time}"
            )
        if self._is_server and self.restart_at is None:
            raise ValueError(
                f"correct server {self.target!r} cannot crash-stop "
                "(exceeds the f bound); give it a restart_at"
            )

    @property
    def _is_server(self) -> bool:
        return self.target.rpartition(":")[2].startswith("s")

    def fault_times(self) -> tuple[float, ...]:
        # The scramble (client restart / server heal) is the state fault;
        # a client crash-stop corrupts nothing.
        return () if self.restart_at is None else (self.restart_at,)

    def partition_windows(self) -> list[PartitionWindow]:
        if not self._is_server:
            return []
        return [
            PartitionWindow(
                start=self.time,
                end=self.restart_at,
                island=frozenset({self.target}),
            )
        ]

    def add_actions(self, system: Any, schedule: FaultSchedule) -> None:
        if self._is_server:
            # The outage itself is the partition window; only the
            # arbitrary recovered state needs an action. Byzantine
            # targets get nothing: their behaviour is already arbitrary.
            def recover(env: Any, sid: str = self.target) -> None:
                if sid in system.byzantine_ids:
                    return
                rng = env.spawn_rng(f"chaos:recover:{sid}:{self.restart_at}")
                system.servers[sid].corrupt_state(rng)

            schedule.at(
                self.restart_at,
                recover,
                label=f"server-recover {self.target}@{self.restart_at}",
            )
            return
        schedule.at(
            self.time,
            lambda env, c=self.target: system.clients[c].crash(),
            label=f"crash {self.target}@{self.time}",
        )
        if self.restart_at is not None:
            schedule.at(
                self.restart_at,
                lambda env, c=self.target: system.restart_client(c),
                label=f"restart {self.target}@{self.restart_at}",
            )

    def size(self) -> int:
        return 1 if self.restart_at is None else 2

    def end_time(self) -> float:
        return self.time if self.restart_at is None else self.restart_at


@dataclass(frozen=True)
class CorruptionWaveNemesis(Nemesis):
    """Transient corruption strikes at each instant in ``times``.

    Each strike scrambles every correct server with probability
    ``server_fraction`` and every *idle* client with ``client_fraction``
    (clients hit mid-operation are modelled by :class:`CrashRestartNemesis`
    instead — see the client corruption model note in
    :func:`repro.workloads.schedules.corruption_schedule`).
    """

    times: tuple[float, ...]
    server_fraction: float = 1.0
    client_fraction: float = 0.5

    kind = "corruption-wave"

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("corruption wave needs at least one strike time")

    def fault_times(self) -> tuple[float, ...]:
        return tuple(self.times)

    def add_actions(self, system: Any, schedule: FaultSchedule) -> None:
        from repro.workloads.schedules import corruption_schedule

        wave = corruption_schedule(
            system,
            self.times,
            server_fraction=self.server_fraction,
            client_fraction=self.client_fraction,
            rng=system.env.spawn_rng(f"chaos:wave:{self.times[0]}"),
        )
        schedule.actions.extend(wave.actions)

    def size(self) -> int:
        return len(self.times)


@dataclass(frozen=True)
class MessageStormNemesis(Nemesis):
    """Inject a burst of stale garbage messages at ``time``.

    ``pairs`` directed channels are picked deterministically from the
    run's derived RNG and each receives ``burst`` unparseable envelopes —
    the "arbitrary channel contents" corruption of Section II, scaled up.
    Legitimate in-flight messages are never touched (reliable channels).
    """

    time: float
    pairs: int = 4
    burst: int = 2

    kind = "message-storm"

    def __post_init__(self) -> None:
        if self.pairs < 1 or self.burst < 1:
            raise ValueError("storm needs pairs >= 1 and burst >= 1")

    def fault_times(self) -> tuple[float, ...]:
        return (self.time,)

    def add_actions(self, system: Any, schedule: FaultSchedule) -> None:
        def storm(env: Any) -> None:
            rng = env.spawn_rng(f"chaos:storm:{self.time}")
            corruptor = ChannelCorruptor(env.network, rng)
            pids = sorted(env.network.processes)
            channels = [
                (src, dst) for src in pids for dst in pids if src != dst
            ]
            count = min(self.pairs, len(channels))
            for src, dst in rng.sample(channels, count):
                corruptor.inject_stale(
                    src,
                    dst,
                    lambda r: garbage_forger(None, r),
                    count=self.burst,
                )

        schedule.at(self.time, storm, label=f"storm@{self.time}")


@dataclass(frozen=True)
class LatencySurgeNemesis(Nemesis):
    """Multiply message latency by ``factor`` inside ``[start, end)``.

    Pure asynchrony — finite delays are always admissible, so the
    specification must hold across a surge and no fault instant is
    contributed.
    """

    start: float
    end: float
    factor: float

    kind = "latency-surge"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"surge window empty: {self.start}..{self.end}")
        if self.factor < 1.0:
            raise ValueError(f"surge factor must be >= 1: {self.factor}")

    def surge_windows(self) -> list[Surge]:
        return [(self.start, self.end, self.factor)]

    def end_time(self) -> float:
        return self.end


@dataclass(frozen=True)
class MobileByzantineNemesis(Nemesis):
    """The Byzantine role *moves* between servers (arXiv:1609.02694).

    A :class:`~repro.byzantine.mobile.MobileByzantineCarrier` possesses
    the first itinerary stop at deployment time — compile-time possession
    is what makes ``moves=0`` bit-identical to a statically configured
    strategy — then relocates every ``period`` time units starting at
    ``start``, ``moves`` times in total, walking the itinerary
    cyclically. Each relocation scrambles the departed server, so the
    relocation instants are the fault instants; the agent's *presence* is
    the standing ≤f fault, not a transient one. At any moment exactly one
    server is Byzantine, but the cumulative corrupted set grows with
    every move.

    Plans carrying this nemesis must leave ``plan.strategy`` empty: the
    carrier brings its own strategy, and a static Byzantine server plus
    the carrier would exceed the ``f`` bound (enforced by
    :class:`~repro.chaos.plan.ChaosPlan` validation and by the carrier
    itself).
    """

    strategy: str
    start: float = 10.0
    period: float = 10.0
    moves: int = 0
    path: tuple[str, ...] = ()

    kind = "mobile-byzantine"

    def __post_init__(self) -> None:
        from repro.byzantine.strategies import STRATEGY_ZOO

        if self.strategy not in STRATEGY_ZOO:
            raise ValueError(f"unknown strategy: {self.strategy!r}")
        if self.period <= 0:
            raise ValueError(f"relocation period must be > 0: {self.period}")
        if self.moves < 0:
            raise ValueError(f"moves must be >= 0: {self.moves}")

    def fault_times(self) -> tuple[float, ...]:
        # One per relocation: the scramble of the departed server.
        return tuple(self.start + i * self.period for i in range(self.moves))

    def size(self) -> int:
        return 1 + self.moves

    def end_time(self) -> float:
        if not self.moves:
            return 0.0
        return self.start + (self.moves - 1) * self.period

    def itinerary(self, system: Any) -> tuple[str, ...]:
        """The host cycle: the explicit ``path``, or every server with
        the static-Byzantine slot (``s{n-1}``) first — so that at rate 0
        the carrier sits exactly where ``plan.strategy`` would put it."""
        if self.path:
            return self.path
        return tuple(reversed(system.server_ids))

    def add_actions(self, system: Any, schedule: FaultSchedule) -> None:
        from repro.byzantine.mobile import MobileByzantineCarrier

        carrier = MobileByzantineCarrier(system, self.strategy)
        system.mobile_carrier = carrier
        stops = self.itinerary(system)
        carrier.possess(stops[0])
        for i in range(self.moves):
            t = self.start + i * self.period
            nxt = stops[(i + 1) % len(stops)]

            def move(env: Any, nxt: str = nxt, t: float = t) -> None:
                carrier.relocate(nxt, env.spawn_rng(f"chaos:mobile:{t}"))

            schedule.at(t, move, label=f"mobile-relocate {nxt}@{t}")


@dataclass(frozen=True)
class ChurnNemesis(Nemesis):
    """Server leave at ``time``, rejoin at ``rejoin_at`` (arXiv:1910.06716).

    ``target`` *really* departs — unlike the server crash–restart nemesis
    this is not a partition in disguise: the process crashes, and
    messages sent to it while absent are dropped, which steps outside the
    paper's reliable-channel model on purpose. At ``rejoin_at`` the
    server boots with scrambled state and (with ``transfer``) runs the
    state-transfer handshake against the peers still present
    (:meth:`~repro.core.register.RegisterSystem.join_server`). The rejoin
    is the fault instant; the absence window itself is a liveness hazard
    the quorum-aware plan validation caps at ``f`` concurrent
    departures/outages.
    """

    time: float
    target: str
    rejoin_at: float
    transfer: bool = True

    kind = "churn"

    def __post_init__(self) -> None:
        if self.rejoin_at <= self.time:
            raise ValueError(
                f"rejoin must follow the departure: "
                f"{self.rejoin_at} <= {self.time}"
            )
        if not self.target.rpartition(":")[2].startswith("s"):
            raise ValueError(f"churn targets servers, got {self.target!r}")

    def fault_times(self) -> tuple[float, ...]:
        return (self.rejoin_at,)

    def add_actions(self, system: Any, schedule: FaultSchedule) -> None:
        schedule.at(
            self.time,
            lambda env, s=self.target: system.leave_server(s),
            label=f"leave {self.target}@{self.time}",
        )
        schedule.at(
            self.rejoin_at,
            lambda env, s=self.target: system.join_server(
                s, transfer=self.transfer
            ),
            label=f"join {self.target}@{self.rejoin_at}",
        )

    def size(self) -> int:
        return 2

    def end_time(self) -> float:
        return self.rejoin_at


#: serialization registry: kind tag -> concrete nemesis class.
NEMESIS_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        PartitionNemesis,
        CrashRestartNemesis,
        CorruptionWaveNemesis,
        MessageStormNemesis,
        LatencySurgeNemesis,
        MobileByzantineNemesis,
        ChurnNemesis,
    )
}


def nemesis_from_dict(data: dict[str, Any]) -> Nemesis:
    """Rebuild one nemesis from its :meth:`Nemesis.to_dict` form."""
    kind = data.get("kind")
    cls = NEMESIS_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown nemesis kind: {kind!r}")
    kwargs: dict[str, Any] = {}
    for f in fields(cls):
        value = data[f.name]
        kwargs[f.name] = tuple(value) if isinstance(value, list) else value
    return cls(**kwargs)


def compile_nemeses(
    nemeses: Sequence[Nemesis], system: Any
) -> tuple[FaultSchedule, list[PartitionWindow], list[Surge]]:
    """Compile a nemesis sequence against a built register system.

    Returns the (unarmed) fault schedule plus the partition windows and
    latency surges the caller stacks onto the network adversary.
    """
    schedule = FaultSchedule()
    windows: list[PartitionWindow] = []
    surges: list[Surge] = []
    for nemesis in nemeses:
        nemesis.add_actions(system, schedule)
        windows.extend(nemesis.partition_windows())
        surges.extend(nemesis.surge_windows())
    return schedule, windows, surges
