"""The chaos engine: run one plan, or a parallel campaign of them.

:func:`run_plan` is the real run-and-judge path shared by campaigns,
witness replay, and the shrinker: build the system, compile and arm the
nemeses, drive the workload in monitor-interval chunks under the
:class:`~repro.chaos.monitor.InvariantMonitor`'s watchdog, probe, judge.
It is a pure function of its plan — same plan, same outcome, serial or
pooled — and module-level, so a multiprocessing pool can ship it to
workers (the ``--jobs`` path).

Expected outcomes mirror the fuzzer's contract: at ``n >= 5f + 1`` every
campaign should come back clean — zero violations *and* zero watchdog
hangs — however hostile the nemesis mix; below the bound, witnesses
appear and each carries its full plan for deterministic replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.byzantine.strategies import RESPONSIVE_STRATEGIES, STRATEGY_ZOO
from repro.chaos.monitor import InvariantMonitor
from repro.chaos.nemesis import (
    CrashRestartNemesis,
    SurgeAdversary,
    compile_nemeses,
)
from repro.chaos.plan import (
    CHURN_FAMILIES,
    MOBILITY_FAMILIES,
    NEMESIS_FAMILIES,
    ChaosPlan,
    plan_to_dict,
    sample_plan,
)
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.harness.fuzz import _bounded_probe
from repro.sim.adversary import FixedLatencyAdversary, UniformLatencyAdversary
from repro.sim.partitions import PartitioningAdversary
from repro.spec.stabilization import evaluate_stabilization
from repro.workloads.generators import mixed_scripts, read_heavy_scripts, run_scripts

WITNESS_FORMAT = "repro-chaos-witness/1"

#: per-plan event allowance past which the watchdog declares a livelock
#: (healthy plans process a few thousand events; 300k is ~50x headroom).
_EVENT_BUDGET = 300_000


@dataclass
class ChaosOutcome:
    """One plan's verdict (picklable; pooled campaigns merge these)."""

    plan: ChaosPlan
    kind: str  # "ok" | "violation" | "not-stabilized" | "stuck"
    detail: str
    forensics: Optional[dict[str, Any]] = None
    reads_checked: int = 0
    aborts: int = 0

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": WITNESS_FORMAT,
            "kind": self.kind,
            "detail": self.detail,
            "forensics": self.forensics,
            "plan": plan_to_dict(self.plan),
        }


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos campaign."""

    trials: int
    witnesses: list[ChaosOutcome] = field(default_factory=list)
    stuck: int = 0
    reads_checked: int = 0
    aborts: int = 0

    @property
    def clean(self) -> bool:
        return not self.witnesses

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.witnesses)} WITNESSES"
        return (
            f"{status} over {self.trials} plans "
            f"({self.reads_checked} reads judged, {self.aborts} aborts, "
            f"{self.stuck} stuck)"
        )


def build_system(plan: ChaosPlan, trace: str = "stats") -> RegisterSystem:
    """Deploy the system a plan describes, nemeses compiled and armed."""
    config = SystemConfig(n=plan.n, f=plan.f, enforce_resilience=False)
    lo, hi = plan.latency
    base = (
        FixedLatencyAdversary(lo)
        if lo == hi
        else UniformLatencyAdversary(lo, hi)
    )
    byz = (
        {
            f"s{plan.n - i - 1}": STRATEGY_ZOO[plan.strategy].factory()
            for i in range(plan.f)
        }
        if plan.strategy
        else {}
    )
    system = RegisterSystem(
        config,
        seed=plan.seed,
        n_clients=plan.n_clients,
        adversary=base,
        byzantine=byz,
        trace=trace,
    )
    schedule, windows, surges = compile_nemeses(plan.nemeses, system)
    env = system.env

    def clock() -> float:
        return env.scheduler.now

    adversary = base
    if surges:
        adversary = SurgeAdversary(adversary, surges, clock)
    if windows:
        adversary = PartitioningAdversary(windows, clock, base=adversary)
    env.network.adversary = adversary
    if plan.corrupt_at_start:
        system.corrupt_servers()
        system.corrupt_clients()
    schedule.arm(env)
    return system


def _clients_down_at_end(plan: ChaosPlan) -> set[str]:
    """Clients a plan crash-stops (never restarts)."""
    down: set[str] = set()
    for nem in plan.nemeses:
        if isinstance(nem, CrashRestartNemesis) and not nem._is_server:
            if nem.restart_at is None:
                down.add(nem.target)
            else:
                down.discard(nem.target)
    return down


def run_plan(
    plan: ChaosPlan,
    trace: str = "stats",
    monitor_interval: float = 10.0,
) -> ChaosOutcome:
    """Execute one chaos plan end to end; judge the outcome.

    The simulation advances in ``monitor_interval`` chunks with an
    :class:`InvariantMonitor` checkpoint between chunks (frontier record +
    incremental prefix judgement), then drains fully. Runs that wedge
    (pending operations, drained queue), exhaust the scheduler's event
    cap, or deadlock during the post-fault probe come back as ``stuck``
    witnesses with the monitor's forensics attached instead of hanging
    the campaign.
    """
    system = build_system(plan, trace=trace)
    monitor = InvariantMonitor(system)

    maker = mixed_scripts if plan.workload == "mixed" else read_heavy_scripts
    scripts = maker(
        [f"c{i}" for i in range(plan.n_clients)],
        random.Random(plan.seed ^ 0x5EED),
        ops_per_client=plan.ops_per_client,
    )
    run_scripts(system, scripts, drain=False)
    processed = 0
    t = monitor_interval
    while t <= plan.horizon:
        processed += system.env.run(until=t)
        monitor.checkpoint()
        if monitor.wedged() or processed > _EVENT_BUDGET:
            break
        t += monitor_interval
    # Bounded final drain: strictly positive latencies make run(until=...)
    # terminate even under a message livelock (time advances), so the only
    # unbounded phase is the drain — cap it and declare "stuck" instead of
    # churning toward the scheduler's global event cap.
    drained = system.env.drain_bounded(_EVENT_BUDGET)
    monitor.checkpoint()
    if not drained:
        return ChaosOutcome(
            plan=plan,
            kind="stuck",
            detail=(
                f"watchdog: still churning at t={system.env.now:.1f} after "
                f"the horizon"
            ),
            forensics=monitor.forensics(),
        )
    if monitor.wedged():
        return ChaosOutcome(
            plan=plan,
            kind="stuck",
            detail="watchdog: event queue drained with operations pending",
            forensics=monitor.forensics(),
        )

    # Post-fault probe: a convergence anchor plus suffix reads, issued by
    # a client the plan leaves alive (plans never crash-stop everyone; a
    # shrunk plan might, and is then judged probe-less — safe, because it
    # can only be less incriminating and the shrinker rejects it).
    down = _clients_down_at_end(plan)
    probers = [c for c in sorted(system.clients) if c not in down]
    if probers:
        detail = _bounded_probe(system, probers, f"probe-{plan.seed}")
        if detail is not None:
            return ChaosOutcome(
                plan=plan,
                kind="stuck",
                detail=detail,
                forensics=monitor.forensics(),
            )

    if plan.faulted():
        report = evaluate_stabilization(
            system.history,
            system.checker(),
            last_fault_time=plan.last_fault_time(),
        )
        verdict = report.suffix_verdict
        reads = verdict.checked_reads if verdict else 0
        aborts = verdict.aborted_reads if verdict else 0
        if not report.stabilized:
            return ChaosOutcome(
                plan=plan,
                kind="not-stabilized",
                detail=report.summary(),
                forensics=monitor.forensics(),
                reads_checked=reads,
                aborts=aborts,
            )
        return ChaosOutcome(
            plan=plan,
            kind="ok",
            detail=report.summary(),
            reads_checked=reads,
            aborts=aborts,
        )
    verdict = system.check_regularity()
    if not verdict.ok:
        return ChaosOutcome(
            plan=plan,
            kind="violation",
            detail=verdict.summary(),
            forensics=monitor.forensics(),
            reads_checked=verdict.checked_reads,
            aborts=verdict.aborted_reads,
        )
    return ChaosOutcome(
        plan=plan,
        kind="ok",
        detail=verdict.summary(),
        reads_checked=verdict.checked_reads,
        aborts=verdict.aborted_reads,
    )


def _plan_outcome(plan: ChaosPlan, trace: str = "stats") -> ChaosOutcome:
    """Module-level pool worker (picklability — see PAR001)."""
    return run_plan(plan, trace=trace)


#: campaign presets for the CLI and CI (``repro chaos --preset smoke``).
#: The membership presets re-weight the nemesis mix: ``churn`` draws
#: server departures (responsive strategies only — a silent Byzantine
#: server plus a departed one starves the n-f quorum by arithmetic, see
#: RESPONSIVE_STRATEGIES); ``mobility`` draws the relocating carrier.
PRESETS: dict[str, dict[str, Any]] = {
    "smoke": {"trials": 20, "n": 6, "f": 1},
    "nightly": {"trials": 200, "n": 6, "f": 1},
    "boundary": {"trials": 50, "n": 5, "f": 1},
    "churn": {
        "trials": 30,
        "n": 6,
        "f": 1,
        "families": CHURN_FAMILIES,
        "strategies": RESPONSIVE_STRATEGIES,
    },
    "mobility": {
        "trials": 30,
        "n": 6,
        "f": 1,
        "families": MOBILITY_FAMILIES,
    },
}


def chaos_campaign(
    trials: int = 50,
    n: int = 6,
    f: int = 1,
    master_seed: int = 0,
    jobs: int = 1,
    trace: str = "stats",
    max_nemeses: int = 3,
    stop_at_first: bool = False,
    families: Sequence[str] = NEMESIS_FAMILIES,
    strategies: Optional[Sequence[str]] = None,
) -> ChaosReport:
    """Run a chaos campaign; see the module docstring for the contract.

    Plans are sampled serially from the master RNG before any trial runs
    and outcomes are consumed in plan order, so the report is identical
    for every ``jobs`` value (the fuzzer's determinism recipe).
    ``families``/``strategies`` shape the sampler — see
    :func:`~repro.chaos.plan.sample_plan` and the membership presets.
    """
    import functools

    from repro.harness.parallel import parallel_imap

    rng = random.Random(master_seed)
    plans = [
        sample_plan(
            rng,
            n=n,
            f=f,
            trial_seed=rng.getrandbits(30),
            max_nemeses=max_nemeses,
            families=families,
            strategies=strategies,
        )
        for _ in range(trials)
    ]
    plan_fn = (
        _plan_outcome
        if trace == "stats"
        else functools.partial(_plan_outcome, trace=trace)
    )
    report = ChaosReport(trials=0)
    for outcome in parallel_imap(plan_fn, plans, jobs=jobs):
        report.trials += 1
        report.reads_checked += outcome.reads_checked
        report.aborts += outcome.aborts
        if not outcome.ok:
            if outcome.kind == "stuck":
                report.stuck += 1
            report.witnesses.append(outcome)
            if stop_at_first:
                break
    return report
