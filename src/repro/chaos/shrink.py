"""Delta-debugging shrinker for fuzz witnesses and chaos plans.

Given a failing trial — a fuzz :class:`~repro.harness.fuzz.Witness` or a
chaos :class:`~repro.chaos.plan.ChaosPlan` — the shrinker searches for a
*locally minimal* variant that still fails, in the ddmin tradition
(Zeller's delta debugging; Hypothesis/Jepsen shrinking): greedy
first-improvement passes over a deck of reduction candidates, repeated to
fixpoint or until the evaluation budget runs out. Every candidate is
re-validated through the **real** run-and-judge path
(:func:`~repro.harness.fuzz.run_trial` / :func:`~repro.chaos.engine.run_plan`),
so a shrunk reproducer is a genuine failing trial, not an approximation.

Minimality is measured by a *complexity key* — a lexicographic tuple whose
head is the trial's size metric (total operations + fault strikes +
clients) followed by one-way simplification components (deployment size,
start-state corruption, latency spread, restart count, nemesis span). A
candidate is accepted only if its key is strictly smaller, which makes
every pass monotone and guarantees termination; the result is locally
minimal in the sense that no single remaining reduction keeps the trial
failing.

Determinism: candidate order is fixed, seeds are never mutated, and the
judge is deterministic — shrinking the same witness twice yields the same
reproducer, serial or under ``--jobs`` (the shrinker itself is
sequential; each validation run is one deterministic simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Optional

from repro.chaos.engine import run_plan
from repro.chaos.nemesis import (
    ChurnNemesis,
    CorruptionWaveNemesis,
    CrashRestartNemesis,
    MobileByzantineNemesis,
    PartitionNemesis,
)
from repro.chaos.plan import ChaosPlan
from repro.harness.fuzz import TrialRecipe, Witness, run_trial


@dataclass
class ShrinkResult:
    """The shrinker's report: what it started from, what it kept."""

    original: Any  # TrialRecipe | ChaosPlan
    shrunk: Any
    original_size: int
    shrunk_size: int
    kind: str  # the shrunk reproducer's failure kind
    detail: str
    evals: int  # validation runs spent
    passes: int  # greedy passes until fixpoint (or budget)

    @property
    def reduced(self) -> bool:
        return self.shrunk_size < self.original_size

    def summary(self) -> str:
        return (
            f"shrunk size {self.original_size} -> {self.shrunk_size} "
            f"({self.kind}; {self.evals} evals, {self.passes} passes)"
        )


def _greedy_shrink(
    current: Any,
    candidates: Callable[[Any], Iterator[Any]],
    complexity: Callable[[Any], tuple],
    still_fails: Callable[[Any], Optional[tuple[str, str]]],
    budget: int,
) -> tuple[Any, str, str, int, int]:
    """First-improvement descent over the candidate deck, to fixpoint.

    ``still_fails`` returns ``(kind, detail)`` when the candidate still
    fails, ``None`` otherwise. Returns the final trial, its failure kind
    and detail, and the evals/passes spent.
    """
    kind, detail = "", ""
    evals = 0
    passes = 0
    improved = True
    while improved and evals < budget:
        improved = False
        passes += 1
        for candidate in candidates(current):
            if complexity(candidate) >= complexity(current):
                continue
            if evals >= budget:
                break
            evals += 1
            failure = still_fails(candidate)
            if failure is not None:
                current = candidate
                kind, detail = failure
                improved = True
                break
    return current, kind, detail, evals, passes


# ---------------------------------------------------------------------------
# fuzz recipes
# ---------------------------------------------------------------------------
def _recipe_complexity(recipe: TrialRecipe) -> tuple:
    restarts = sum(1 for _, _, r in recipe.crashes if r is not None)
    return (
        recipe.size(),
        recipe.n,
        int(recipe.corrupt_at_start),
        recipe.latency[1] - recipe.latency[0],
        restarts,
        recipe.strike_severity,
    )


def _recipe_candidates(recipe: TrialRecipe) -> Iterator[TrialRecipe]:
    # Fewer crash events (drop all, then each one), then crash-stops in
    # place of crash–restarts (one fault instant less).
    if recipe.crashes:
        yield replace(recipe, crashes=())
        for i in range(len(recipe.crashes)):
            yield replace(
                recipe,
                crashes=recipe.crashes[:i] + recipe.crashes[i + 1 :],
            )
        for i, (t, cid, restart) in enumerate(recipe.crashes):
            if restart is not None:
                events = list(recipe.crashes)
                events[i] = (t, cid, None)
                yield replace(recipe, crashes=tuple(events))
    # Fewer corruption strikes.
    if recipe.strike_times:
        yield replace(recipe, strike_times=())
        for i in range(len(recipe.strike_times)):
            yield replace(
                recipe,
                strike_times=recipe.strike_times[:i]
                + recipe.strike_times[i + 1 :],
            )
    # Shorter scripts: halve first, then decrement.
    if recipe.ops_per_client > 1:
        half = recipe.ops_per_client // 2
        yield replace(recipe, ops_per_client=half)
        if recipe.ops_per_client - 1 != half:
            yield replace(recipe, ops_per_client=recipe.ops_per_client - 1)
    # Fewer clients (crash events on removed clients are dropped).
    if recipe.n_clients > 1:
        kept = recipe.n_clients - 1
        crashes = tuple(
            (t, cid, r)
            for t, cid, r in recipe.crashes
            if int(cid[1:]) < kept
        )
        yield replace(recipe, n_clients=kept, crashes=crashes)
    # Smaller deployment (same f — deeper below the bound).
    if recipe.n - 1 >= recipe.f + 2:
        yield replace(recipe, n=recipe.n - 1)
    # One-way simplifications (size-neutral, key-reducing).
    if recipe.corrupt_at_start:
        yield replace(recipe, corrupt_at_start=False)
    if recipe.latency[0] != recipe.latency[1]:
        yield replace(recipe, latency=(1.0, 1.0))


def shrink_witness(
    witness: Witness,
    budget: int = 250,
    match_kind: bool = True,
    trace: str = "off",
) -> ShrinkResult:
    """Shrink a fuzz witness to a locally minimal failing recipe.

    ``match_kind`` (the default) keeps only candidates reproducing the
    *same* failure kind, which prevents ddmin *slippage*: without it,
    shrinking a ``not-stabilized`` safety witness readily slides into an
    unrelated tiny-deployment liveness artifact (e.g. the ``n = 3``
    write livelock) — much smaller, but no longer the original bug.
    ``match_kind=False`` restores the permissive contract where any
    failure counts.
    """

    def still_fails(candidate: TrialRecipe) -> Optional[tuple[str, str]]:
        found = run_trial(candidate, trace=trace)
        if found is None:
            return None
        if match_kind and found.kind != witness.kind:
            return None
        return (found.kind, found.detail)

    shrunk, kind, detail, evals, passes = _greedy_shrink(
        witness.recipe,
        _recipe_candidates,
        _recipe_complexity,
        still_fails,
        budget,
    )
    return ShrinkResult(
        original=witness.recipe,
        shrunk=shrunk,
        original_size=witness.recipe.size(),
        shrunk_size=shrunk.size(),
        kind=kind or witness.kind,
        detail=detail or witness.detail,
        evals=evals,
        passes=passes,
    )


# ---------------------------------------------------------------------------
# chaos plans
# ---------------------------------------------------------------------------
def _plan_complexity(plan: ChaosPlan) -> tuple:
    span = sum(nem.end_time() for nem in plan.nemeses)
    return (
        plan.size(),
        plan.n,
        int(plan.corrupt_at_start),
        plan.latency[1] - plan.latency[0],
        round(span, 3),
    )


def _shrunk_nemesis_variants(nem: Any) -> Iterator[Any]:
    """Smaller versions of one nemesis (same kind, reduced reach)."""
    if isinstance(nem, CorruptionWaveNemesis) and len(nem.times) > 1:
        for i in range(len(nem.times)):
            yield replace(nem, times=nem.times[:i] + nem.times[i + 1 :])
    if isinstance(nem, PartitionNemesis) and nem.duration > 2.0:
        yield replace(nem, duration=round(nem.duration / 2, 2))
    if isinstance(nem, CrashRestartNemesis) and nem.restart_at is not None:
        if not nem._is_server:  # servers must restart
            yield replace(nem, restart_at=None)
    if isinstance(nem, MobileByzantineNemesis) and nem.moves > 0:
        yield replace(nem, moves=nem.moves - 1)
    if isinstance(nem, ChurnNemesis):
        absence = nem.rejoin_at - nem.time
        if absence > 2.0:
            yield replace(
                nem, rejoin_at=round(nem.time + absence / 2, 2)
            )


def _plan_candidates(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    # Fewer nemeses: all gone, then each one dropped, then each shrunk.
    if plan.nemeses:
        yield replace(plan, nemeses=())
        for i in range(len(plan.nemeses)):
            yield replace(
                plan, nemeses=plan.nemeses[:i] + plan.nemeses[i + 1 :]
            )
        for i, nem in enumerate(plan.nemeses):
            for variant in _shrunk_nemesis_variants(nem):
                nemeses = list(plan.nemeses)
                nemeses[i] = variant
                yield replace(plan, nemeses=tuple(nemeses))
    if plan.ops_per_client > 1:
        half = plan.ops_per_client // 2
        yield replace(plan, ops_per_client=half)
        if plan.ops_per_client - 1 != half:
            yield replace(plan, ops_per_client=plan.ops_per_client - 1)
    if plan.n_clients > 1:
        kept = plan.n_clients - 1
        gone = f"c{kept}"
        nemeses = []
        for nem in plan.nemeses:
            if isinstance(nem, CrashRestartNemesis) and nem.target == gone:
                continue
            if isinstance(nem, PartitionNemesis) and gone in nem.island:
                island = tuple(p for p in nem.island if p != gone)
                if not island:
                    continue
                nem = replace(nem, island=island)
            nemeses.append(nem)
        yield replace(plan, n_clients=kept, nemeses=tuple(nemeses))
    if plan.n - 1 >= plan.f + 2:
        kept_n = plan.n - 1
        gone = f"s{kept_n - plan.f - 1}"  # last still-correct server shifts
        nemeses = []
        for nem in plan.nemeses:
            # Drop nemeses pinned to servers that stop being correct (or
            # stop existing) in the smaller deployment.
            if isinstance(nem, CrashRestartNemesis) and nem._is_server:
                idx = int(nem.target[1:])
                if idx >= kept_n - plan.f:
                    continue
            if isinstance(nem, ChurnNemesis):
                if int(nem.target[1:]) >= kept_n - plan.f:
                    continue
            if isinstance(nem, MobileByzantineNemesis) and nem.path:
                path = tuple(
                    p for p in nem.path if int(p[1:]) < kept_n
                )
                if not path:
                    continue
                nem = replace(nem, path=path)
            if isinstance(nem, PartitionNemesis):
                island = tuple(
                    p
                    for p in nem.island
                    if not (p.startswith("s") and int(p[1:]) >= kept_n)
                )
                if not island:
                    continue
                nem = replace(nem, island=island)
            nemeses.append(nem)
        yield replace(plan, n=kept_n, nemeses=tuple(nemeses))
    if plan.corrupt_at_start:
        yield replace(plan, corrupt_at_start=False)
    if plan.latency[0] != plan.latency[1]:
        yield replace(plan, latency=(1.0, 1.0))


def shrink_plan(
    plan: ChaosPlan,
    budget: int = 150,
    match_kind: bool = True,
    trace: str = "off",
    keep: Optional[Callable[[ChaosPlan], bool]] = None,
) -> ShrinkResult:
    """Shrink a failing chaos plan to a locally minimal reproducer.

    ``match_kind`` (the default) keeps only candidates reproducing the
    original outcome's failure kind — the same anti-slippage guard as
    :func:`shrink_witness`. ``keep`` adds a structural guard on top:
    candidates it rejects are never even evaluated. Kind-matching alone
    cannot stop slippage *within* a kind (e.g. a churn-starvation
    ``stuck`` witness sliding into the unrelated tiny-deployment
    ``stuck`` artifact once every nemesis is dropped); a ``keep`` like
    "still contains a churn nemesis" pins the failure's character.
    """
    first = run_plan(plan, trace=trace)
    if first.ok:
        raise ValueError("shrink_plan needs a plan that currently fails")
    original_failure = (first.kind, first.detail)

    def still_fails(candidate: ChaosPlan) -> Optional[tuple[str, str]]:
        outcome = run_plan(candidate, trace=trace)
        if outcome.ok:
            return None
        if match_kind and outcome.kind != first.kind:
            return None
        return (outcome.kind, outcome.detail)

    def candidates(current: ChaosPlan) -> Iterator[ChaosPlan]:
        for cand in _plan_candidates(current):
            if keep is None or keep(cand):
                yield cand

    shrunk, kind, detail, evals, passes = _greedy_shrink(
        plan, candidates, _plan_complexity, still_fails, budget
    )
    return ShrinkResult(
        original=plan,
        shrunk=shrunk,
        original_size=plan.size(),
        shrunk_size=shrunk.size(),
        kind=kind or original_failure[0],
        detail=detail or original_failure[1],
        evals=evals + 1,
        passes=passes,
    )
