"""Chaos nemesis layer: composable fault operators, plans, and shrinking.

Jepsen-style robustness testing for the stabilizing register:

* :mod:`repro.chaos.nemesis` — the nemesis *algebra*: small, declarative,
  serializable fault operators (partition-then-heal, crash–restart of
  clients and correct servers, corruption waves, message storms, latency
  surges) that compile onto the existing
  :class:`~repro.sim.faults.FaultSchedule` /
  :class:`~repro.sim.adversary.Adversary` machinery;
* :mod:`repro.chaos.plan` — :class:`ChaosPlan`, the serializable trial
  description (deterministic replay, survives process pools), and the
  plan sampler;
* :mod:`repro.chaos.monitor` — the online :class:`InvariantMonitor` and
  its watchdog/forensics;
* :mod:`repro.chaos.engine` — :func:`run_plan` and the parallel campaign;
* :mod:`repro.chaos.shrink` — delta-debugging of fuzz witnesses and chaos
  plans down to locally minimal reproducers.
"""

from repro.chaos.engine import (
    PRESETS,
    ChaosOutcome,
    ChaosReport,
    chaos_campaign,
    run_plan,
)
from repro.chaos.monitor import InvariantMonitor
from repro.chaos.nemesis import (
    CorruptionWaveNemesis,
    CrashRestartNemesis,
    LatencySurgeNemesis,
    MessageStormNemesis,
    Nemesis,
    PartitionNemesis,
    SurgeAdversary,
)
from repro.chaos.plan import ChaosPlan, plan_from_dict, plan_to_dict, sample_plan
from repro.chaos.shrink import ShrinkResult, shrink_plan, shrink_witness

__all__ = [
    "ChaosOutcome",
    "ChaosPlan",
    "ChaosReport",
    "CorruptionWaveNemesis",
    "CrashRestartNemesis",
    "InvariantMonitor",
    "LatencySurgeNemesis",
    "MessageStormNemesis",
    "Nemesis",
    "PRESETS",
    "PartitionNemesis",
    "ShrinkResult",
    "SurgeAdversary",
    "chaos_campaign",
    "plan_from_dict",
    "plan_to_dict",
    "run_plan",
    "sample_plan",
    "shrink_plan",
    "shrink_witness",
]
