"""Chaos nemesis layer: composable fault operators, plans, and shrinking.

Jepsen-style robustness testing for the stabilizing register:

* :mod:`repro.chaos.nemesis` — the nemesis *algebra*: small, declarative,
  serializable fault operators (partition-then-heal, crash–restart of
  clients and correct servers, corruption waves, message storms, latency
  surges, server churn, the mobile-Byzantine carrier) that compile onto
  the existing
  :class:`~repro.sim.faults.FaultSchedule` /
  :class:`~repro.sim.adversary.Adversary` machinery;
* :mod:`repro.chaos.plan` — :class:`ChaosPlan`, the serializable trial
  description (deterministic replay, survives process pools), and the
  plan sampler;
* :mod:`repro.chaos.monitor` — the online :class:`InvariantMonitor` and
  its watchdog/forensics;
* :mod:`repro.chaos.engine` — :func:`run_plan` and the parallel campaign;
* :mod:`repro.chaos.shrink` — delta-debugging of fuzz witnesses and chaos
  plans down to locally minimal reproducers.
"""

from repro.chaos.engine import (
    PRESETS,
    ChaosOutcome,
    ChaosReport,
    chaos_campaign,
    run_plan,
)
from repro.chaos.monitor import InvariantMonitor
from repro.chaos.nemesis import (
    ChurnNemesis,
    CorruptionWaveNemesis,
    CrashRestartNemesis,
    LatencySurgeNemesis,
    MessageStormNemesis,
    MobileByzantineNemesis,
    Nemesis,
    PartitionNemesis,
    SurgeAdversary,
)
from repro.chaos.plan import (
    CHURN_FAMILIES,
    MOBILITY_FAMILIES,
    NEMESIS_FAMILIES,
    ChaosPlan,
    max_concurrent_down,
    plan_from_dict,
    plan_to_dict,
    sample_plan,
    server_down_windows,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan, shrink_witness

__all__ = [
    "CHURN_FAMILIES",
    "ChaosOutcome",
    "ChaosPlan",
    "ChaosReport",
    "ChurnNemesis",
    "CorruptionWaveNemesis",
    "CrashRestartNemesis",
    "InvariantMonitor",
    "LatencySurgeNemesis",
    "MOBILITY_FAMILIES",
    "MessageStormNemesis",
    "MobileByzantineNemesis",
    "NEMESIS_FAMILIES",
    "Nemesis",
    "PRESETS",
    "PartitionNemesis",
    "ShrinkResult",
    "SurgeAdversary",
    "chaos_campaign",
    "max_concurrent_down",
    "plan_from_dict",
    "plan_to_dict",
    "run_plan",
    "sample_plan",
    "server_down_windows",
    "shrink_plan",
    "shrink_witness",
]
