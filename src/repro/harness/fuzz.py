"""Schedule fuzzing: hunt for specification violations, Jepsen-style.

Every trial samples a random hostile configuration — latency regime,
Byzantine strategy, corruption instants and severities, client crashes,
workload shape — runs it, and judges the history. A violation is a
*witness*: the trial's full recipe is returned so the failure replays
deterministically.

Expected outcomes (and what the fuzzer is for):

* at ``n >= 5f + 1`` the fuzzer should come back empty however long it
  runs — every witness is a bug in the protocol, the simulator or the
  checker and gets a reproducer for free;
* at ``n <= 5f`` it should find witnesses (the E3 boundary, explored
  adversarially rather than by a fixed sweep).

Used by ``python -m repro fuzz`` and the validation tests.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import FixedLatencyAdversary, UniformLatencyAdversary
from repro.spec.stabilization import evaluate_stabilization
from repro.workloads.generators import mixed_scripts, read_heavy_scripts, run_scripts
from repro.workloads.schedules import corruption_schedule, crash_schedule


@dataclass(frozen=True)
class TrialRecipe:
    """Everything needed to replay one fuzz trial deterministically.

    ``crashes`` holds ``(time, client, restart_at)`` events; ``restart_at``
    is ``None`` for a crash-stop and an absolute instant for a
    crash–restart (the client recovers with scrambled state). The field
    defaults to empty so recipes serialized before crash–restart existed
    (format 1, a single optional ``crash`` pair) still load — see
    :func:`recipe_from_dict`.
    """

    seed: int
    n: int
    f: int
    n_clients: int
    ops_per_client: int
    workload: str  # "mixed" | "read-heavy"
    strategy: str  # STRATEGY_ZOO key
    latency: tuple[float, float]  # (lo, hi); lo == hi means fixed
    corrupt_at_start: bool
    strike_times: tuple[float, ...]
    strike_severity: float
    crashes: tuple[tuple[float, str, Optional[float]], ...] = ()

    def size(self) -> int:
        """The shrinker's metric: total ops + strikes + crashes + clients."""
        return (
            self.n_clients * self.ops_per_client
            + len(self.strike_times)
            + len(self.crashes)
            + self.n_clients
        )


@dataclass
class Witness:
    """A violating trial with its forensic summary."""

    recipe: TrialRecipe
    kind: str  # "violation" | "stuck" | "not-stabilized"
    detail: str


# ---------------------------------------------------------------------------
# serialization (the idiom of :mod:`repro.spec.serialize`)
# ---------------------------------------------------------------------------
RECIPE_FORMAT = "repro-fuzz-recipe/2"
_RECIPE_FORMAT_V1 = "repro-fuzz-recipe/1"
WITNESS_FORMAT = "repro-fuzz-witness/1"


def recipe_to_dict(recipe: TrialRecipe) -> dict[str, Any]:
    """One recipe as a JSON-friendly dict (format 2)."""
    return {
        "format": RECIPE_FORMAT,
        "seed": recipe.seed,
        "n": recipe.n,
        "f": recipe.f,
        "n_clients": recipe.n_clients,
        "ops_per_client": recipe.ops_per_client,
        "workload": recipe.workload,
        "strategy": recipe.strategy,
        "latency": list(recipe.latency),
        "corrupt_at_start": recipe.corrupt_at_start,
        "strike_times": list(recipe.strike_times),
        "strike_severity": recipe.strike_severity,
        "crashes": [[t, cid, restart] for t, cid, restart in recipe.crashes],
    }


def recipe_from_dict(data: dict[str, Any]) -> TrialRecipe:
    """Rebuild a recipe; understands both format 2 and legacy format 1.

    Format 1 predates crash–restart: it carried a single optional
    ``"crash": [time, client]`` pair, which maps onto one crash-stop event
    (no restart). Replays of archived format-1 witnesses therefore keep
    their exact fault timeline.
    """
    fmt = data.get("format", _RECIPE_FORMAT_V1)
    if fmt not in (RECIPE_FORMAT, _RECIPE_FORMAT_V1):
        raise ValueError(f"unknown recipe format: {fmt!r}")
    if fmt == _RECIPE_FORMAT_V1:
        legacy = data.get("crash")
        crashes: tuple[tuple[float, str, Optional[float]], ...] = (
            ((float(legacy[0]), str(legacy[1]), None),) if legacy else ()
        )
    else:
        crashes = tuple(
            (
                float(t),
                str(cid),
                None if restart is None else float(restart),
            )
            for t, cid, restart in data["crashes"]
        )
    return TrialRecipe(
        seed=int(data["seed"]),
        n=int(data["n"]),
        f=int(data["f"]),
        n_clients=int(data["n_clients"]),
        ops_per_client=int(data["ops_per_client"]),
        workload=str(data["workload"]),
        strategy=str(data["strategy"]),
        latency=(float(data["latency"][0]), float(data["latency"][1])),
        corrupt_at_start=bool(data["corrupt_at_start"]),
        strike_times=tuple(float(t) for t in data["strike_times"]),
        strike_severity=float(data["strike_severity"]),
        crashes=crashes,
    )


def witness_to_dict(witness: Witness) -> dict[str, Any]:
    return {
        "format": WITNESS_FORMAT,
        "kind": witness.kind,
        "detail": witness.detail,
        "recipe": recipe_to_dict(witness.recipe),
    }


def witness_from_dict(data: dict[str, Any]) -> Witness:
    if data.get("format") != WITNESS_FORMAT:
        raise ValueError(f"unknown witness format: {data.get('format')!r}")
    return Witness(
        recipe=recipe_from_dict(data["recipe"]),
        kind=str(data["kind"]),
        detail=str(data["detail"]),
    )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz campaign."""

    trials: int
    witnesses: list[Witness] = field(default_factory=list)
    reads_checked: int = 0
    aborts: int = 0

    @property
    def clean(self) -> bool:
        return not self.witnesses

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.witnesses)} WITNESSES"
        return (
            f"{status} over {self.trials} trials "
            f"({self.reads_checked} reads judged, {self.aborts} aborts)"
        )


def sample_recipe(
    rng: random.Random, n: int, f: int, trial_seed: int
) -> TrialRecipe:
    """Draw one hostile configuration."""
    if rng.random() < 0.5:
        lo = round(rng.uniform(0.2, 1.0), 2)
        latency = (lo, round(lo + rng.uniform(0.5, 4.0), 2))
    else:
        latency = (1.0, 1.0)
    strikes: tuple[float, ...] = ()
    if rng.random() < 0.6:
        strikes = tuple(
            sorted(round(rng.uniform(5.0, 40.0), 1) for _ in range(rng.randint(1, 2)))
        )
    n_clients = rng.randint(2, 4)
    crashes: tuple[tuple[float, str, Optional[float]], ...] = ()
    if rng.random() < 0.3:
        # Crash one or two distinct clients; each independently either
        # stays down (crash-stop) or restarts later with scrambled state.
        # At least one client always survives to issue the post-fault probe.
        victims = rng.sample(
            range(n_clients), rng.randint(1, min(2, n_clients - 1))
        )
        events = []
        for v in sorted(victims):
            t = round(rng.uniform(3.0, 30.0), 1)
            restart = (
                round(t + rng.uniform(2.0, 15.0), 1)
                if rng.random() < 0.5
                else None
            )
            events.append((t, f"c{v}", restart))
        crashes = tuple(sorted(events))
    return TrialRecipe(
        seed=trial_seed,
        n=n,
        f=f,
        n_clients=n_clients,
        ops_per_client=rng.randint(4, 8),
        workload=rng.choice(["mixed", "read-heavy"]),
        strategy=rng.choice(sorted(STRATEGY_ZOO)),
        latency=latency,
        corrupt_at_start=rng.random() < 0.7,
        strike_times=strikes,
        strike_severity=round(rng.uniform(0.3, 1.0), 2),
        crashes=crashes,
    )


def crashed_at_end(
    crashes: tuple[tuple[float, str, Optional[float]], ...]
) -> set[str]:
    """Clients still down after the last of their crash events."""
    last: dict[str, Optional[float]] = {}
    for t, cid, restart in sorted(crashes):
        last[cid] = restart
    return {cid for cid, restart in last.items() if restart is None}


# Watchdog bounds: recipes schedule nothing past t ~ 60 and operations
# quiesce in tens of time units; events per healthy trial number in the
# low thousands.
_TRIAL_HORIZON = 250.0
_TRIAL_GRACE_EVENTS = 50_000
_PROBE_EVENTS = 50_000


def _bounded_probe(
    system: Any, probers: list[str], value: str
) -> Optional[str]:
    """One anchor write + two reads under the watchdog.

    Returns ``None`` on success, or a "stuck" detail string naming the
    wedged/livelocked probe operation and who is blocked on what.
    """

    def blocked_report() -> str:
        blocked = [
            f"{h.name} waiting on {h.waiting_on!r}"
            for cid in probers
            for h in system.clients[cid].blocked_operations()
        ]
        return "; ".join(blocked) if blocked else "no blocked operations"

    handle = system.write(probers[0], value)
    status = system.env.run_op_bounded(lambda: handle.done, _PROBE_EVENTS)
    if status != "done":
        return f"watchdog: probe write {status} ({blocked_report()})"
    system.env.tick()
    for _ in range(2):
        read = system.read(probers[-1])
        status = system.env.run_op_bounded(lambda: read.done, _PROBE_EVENTS)
        if status != "done":
            return f"watchdog: probe read {status} ({blocked_report()})"
        system.env.tick()
    return None


def run_trial(recipe: TrialRecipe, trace: str = "stats") -> Optional[Witness]:
    """Execute one recipe; return a witness iff it misbehaved.

    ``trace`` sets the simulation's observability level
    (``off`` | ``stats`` | ``full``); verdicts are identical at every
    level, ``off`` being the fastest for large campaigns.
    """
    config = SystemConfig(
        n=recipe.n, f=recipe.f, enforce_resilience=False
    )
    lo, hi = recipe.latency
    adversary = (
        FixedLatencyAdversary(lo)
        if lo == hi
        else UniformLatencyAdversary(lo, hi)
    )
    byz = {
        f"s{recipe.n - i - 1}": STRATEGY_ZOO[recipe.strategy].factory()
        for i in range(recipe.f)
    }
    system = RegisterSystem(
        config,
        seed=recipe.seed,
        n_clients=recipe.n_clients,
        adversary=adversary,
        byzantine=byz,
        trace=trace,
    )

    last_fault = 0.0
    if recipe.corrupt_at_start:
        system.corrupt_servers()
        system.corrupt_clients()
    if recipe.strike_times:
        corruption_schedule(
            system,
            recipe.strike_times,
            server_fraction=recipe.strike_severity,
            client_fraction=recipe.strike_severity,
        ).arm(system.env)
        last_fault = max(recipe.strike_times)
    restart_times = [r for _, _, r in recipe.crashes if r is not None]
    if recipe.crashes:
        crash_schedule(system, recipe.crashes).arm(system.env)
        # A restart recovers with *scrambled* state — it is a transient
        # fault the suffix must succeed, exactly like a corruption strike.
        if restart_times:
            last_fault = max(last_fault, max(restart_times))

    maker = mixed_scripts if recipe.workload == "mixed" else read_heavy_scripts
    scripts = maker(
        [f"c{i}" for i in range(recipe.n_clients)],
        random.Random(recipe.seed ^ 0x5EED),
        ops_per_client=recipe.ops_per_client,
    )
    # Watchdog-bounded execution: latencies are strictly positive, so
    # ``run(until=...)`` always terminates even under a message livelock
    # (time advances); a run still churning after the horizon *plus* a
    # generous event grace is declared stuck instead of spinning toward
    # the scheduler's global event cap. Shrunk recipes reach deployment
    # sizes (e.g. n = 3) where such liveness failures are real.
    run_scripts(system, scripts, drain=False)
    system.env.run(until=_TRIAL_HORIZON)
    if not system.env.drain_bounded(_TRIAL_GRACE_EVENTS):
        return Witness(
            recipe=recipe,
            kind="stuck",
            detail=(
                f"watchdog: still churning at t={system.env.now:.1f} after "
                f"the horizon ({len(system.env.network.in_flight)} in flight)"
            ),
        )

    # Post-fault probe: guarantee a convergence anchor and suffix reads,
    # issued by a client that is alive at the end of the run. (A shrunk
    # recipe may leave no survivor; such a candidate is judged without the
    # probe and can only be *less* incriminating, which is safe — the
    # shrinker simply rejects it.)
    down = crashed_at_end(recipe.crashes)
    probers = [c for c in system.clients if c not in down]
    if probers:
        detail = _bounded_probe(system, probers, f"probe-{recipe.seed}")
        if detail is not None:
            return Witness(recipe=recipe, kind="stuck", detail=detail)

    faulted = (
        recipe.corrupt_at_start
        or bool(recipe.strike_times)
        or bool(restart_times)
    )
    if faulted:
        report = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=last_fault
        )
        run_trial.last_stats = (
            report.suffix_verdict.checked_reads if report.suffix_verdict else 0,
            report.suffix_verdict.aborted_reads if report.suffix_verdict else 0,
        )
        if not report.stabilized:
            return Witness(
                recipe=recipe,
                kind="not-stabilized",
                detail=report.summary(),
            )
        return None
    verdict = system.check_regularity()
    run_trial.last_stats = (verdict.checked_reads, verdict.aborted_reads)
    if not verdict.ok:
        return Witness(
            recipe=recipe, kind="violation", detail=verdict.summary()
        )
    return None


run_trial.last_stats = (0, 0)


def _trial_outcome(
    recipe: TrialRecipe, trace: str = "stats"
) -> tuple[Optional[Witness], int, int]:
    """One trial's picklable summary: (witness-or-None, reads, aborts).

    Module-level so a multiprocessing pool can ship it to workers; each
    trial is a pure function of its recipe, which is what makes the
    parallel campaign's output identical to the serial one.
    """
    witness = run_trial(recipe, trace=trace)
    reads, aborts = run_trial.last_stats
    return witness, reads, aborts


def fuzz(
    trials: int = 50,
    n: int = 6,
    f: int = 1,
    master_seed: int = 0,
    stop_at_first: bool = False,
    jobs: int = 1,
    trace: str = "stats",
) -> FuzzReport:
    """Run a fuzz campaign; see module docstring for the contract.

    ``jobs > 1`` fans the trials out over a process pool
    (:mod:`repro.harness.parallel`). Recipes are always drawn serially
    from the master RNG before any trial runs, and outcomes are consumed
    in recipe order, so the report — trial counts, witness list, read and
    abort totals, and the point ``stop_at_first`` stops at — is identical
    for every ``jobs`` value.
    """
    from repro.harness.parallel import parallel_imap

    rng = random.Random(master_seed)
    recipes = [
        sample_recipe(rng, n=n, f=f, trial_seed=rng.getrandbits(30))
        for _ in range(trials)
    ]
    trial_fn = (
        _trial_outcome
        if trace == "stats"
        else functools.partial(_trial_outcome, trace=trace)
    )
    report = FuzzReport(trials=0)
    for witness, reads, aborts in parallel_imap(
        trial_fn, recipes, jobs=jobs
    ):
        report.trials += 1
        report.reads_checked += reads
        report.aborts += aborts
        if witness is not None:
            report.witnesses.append(witness)
            if stop_at_first:
                break
    return report
