"""Schedule fuzzing: hunt for specification violations, Jepsen-style.

Every trial samples a random hostile configuration — latency regime,
Byzantine strategy, corruption instants and severities, client crashes,
workload shape — runs it, and judges the history. A violation is a
*witness*: the trial's full recipe is returned so the failure replays
deterministically.

Expected outcomes (and what the fuzzer is for):

* at ``n >= 5f + 1`` the fuzzer should come back empty however long it
  runs — every witness is a bug in the protocol, the simulator or the
  checker and gets a reproducer for free;
* at ``n <= 5f`` it should find witnesses (the E3 boundary, explored
  adversarially rather than by a fixed sweep).

Used by ``python -m repro fuzz`` and the validation tests.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import FixedLatencyAdversary, UniformLatencyAdversary
from repro.spec.stabilization import evaluate_stabilization
from repro.workloads.generators import mixed_scripts, read_heavy_scripts, run_scripts
from repro.workloads.schedules import corruption_schedule, crash_schedule


@dataclass(frozen=True)
class TrialRecipe:
    """Everything needed to replay one fuzz trial deterministically."""

    seed: int
    n: int
    f: int
    n_clients: int
    ops_per_client: int
    workload: str  # "mixed" | "read-heavy"
    strategy: str  # STRATEGY_ZOO key
    latency: tuple[float, float]  # (lo, hi); lo == hi means fixed
    corrupt_at_start: bool
    strike_times: tuple[float, ...]
    strike_severity: float
    crash: Optional[tuple[float, str]]  # (time, client) or None


@dataclass
class Witness:
    """A violating trial with its forensic summary."""

    recipe: TrialRecipe
    kind: str  # "violation" | "stuck" | "not-stabilized"
    detail: str


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz campaign."""

    trials: int
    witnesses: list[Witness] = field(default_factory=list)
    reads_checked: int = 0
    aborts: int = 0

    @property
    def clean(self) -> bool:
        return not self.witnesses

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.witnesses)} WITNESSES"
        return (
            f"{status} over {self.trials} trials "
            f"({self.reads_checked} reads judged, {self.aborts} aborts)"
        )


def sample_recipe(
    rng: random.Random, n: int, f: int, trial_seed: int
) -> TrialRecipe:
    """Draw one hostile configuration."""
    if rng.random() < 0.5:
        lo = round(rng.uniform(0.2, 1.0), 2)
        latency = (lo, round(lo + rng.uniform(0.5, 4.0), 2))
    else:
        latency = (1.0, 1.0)
    strikes: tuple[float, ...] = ()
    if rng.random() < 0.6:
        strikes = tuple(
            sorted(round(rng.uniform(5.0, 40.0), 1) for _ in range(rng.randint(1, 2)))
        )
    n_clients = rng.randint(2, 4)
    crash = None
    if rng.random() < 0.3:
        crash = (
            round(rng.uniform(3.0, 30.0), 1),
            f"c{rng.randrange(n_clients)}",
        )
    return TrialRecipe(
        seed=trial_seed,
        n=n,
        f=f,
        n_clients=n_clients,
        ops_per_client=rng.randint(4, 8),
        workload=rng.choice(["mixed", "read-heavy"]),
        strategy=rng.choice(sorted(STRATEGY_ZOO)),
        latency=latency,
        corrupt_at_start=rng.random() < 0.7,
        strike_times=strikes,
        strike_severity=round(rng.uniform(0.3, 1.0), 2),
        crash=crash,
    )


def run_trial(recipe: TrialRecipe, trace: str = "stats") -> Optional[Witness]:
    """Execute one recipe; return a witness iff it misbehaved.

    ``trace`` sets the simulation's observability level
    (``off`` | ``stats`` | ``full``); verdicts are identical at every
    level, ``off`` being the fastest for large campaigns.
    """
    config = SystemConfig(
        n=recipe.n, f=recipe.f, enforce_resilience=False
    )
    lo, hi = recipe.latency
    adversary = (
        FixedLatencyAdversary(lo)
        if lo == hi
        else UniformLatencyAdversary(lo, hi)
    )
    byz = {
        f"s{recipe.n - i - 1}": STRATEGY_ZOO[recipe.strategy].factory()
        for i in range(recipe.f)
    }
    system = RegisterSystem(
        config,
        seed=recipe.seed,
        n_clients=recipe.n_clients,
        adversary=adversary,
        byzantine=byz,
        trace=trace,
    )

    last_fault = 0.0
    if recipe.corrupt_at_start:
        system.corrupt_servers()
        system.corrupt_clients()
    if recipe.strike_times:
        corruption_schedule(
            system,
            recipe.strike_times,
            server_fraction=recipe.strike_severity,
            client_fraction=recipe.strike_severity,
        ).arm(system.env)
        last_fault = max(recipe.strike_times)
    if recipe.crash is not None:
        crash_schedule(system, [recipe.crash]).arm(system.env)

    maker = mixed_scripts if recipe.workload == "mixed" else read_heavy_scripts
    scripts = maker(
        [f"c{i}" for i in range(recipe.n_clients)],
        random.Random(recipe.seed ^ 0x5EED),
        ops_per_client=recipe.ops_per_client,
    )
    run_scripts(system, scripts)

    # Post-fault probe: guarantee a convergence anchor and suffix reads,
    # issued by a client that did not crash.
    crashed = recipe.crash[1] if recipe.crash else None
    probers = [c for c in system.clients if c != crashed]
    system.write_sync(probers[0], f"probe-{recipe.seed}")
    for _ in range(2):
        system.read_sync(probers[-1])

    faulted = recipe.corrupt_at_start or bool(recipe.strike_times)
    if faulted:
        report = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=last_fault
        )
        run_trial.last_stats = (
            report.suffix_verdict.checked_reads if report.suffix_verdict else 0,
            report.suffix_verdict.aborted_reads if report.suffix_verdict else 0,
        )
        if not report.stabilized:
            return Witness(
                recipe=recipe,
                kind="not-stabilized",
                detail=report.summary(),
            )
        return None
    verdict = system.check_regularity()
    run_trial.last_stats = (verdict.checked_reads, verdict.aborted_reads)
    if not verdict.ok:
        return Witness(
            recipe=recipe, kind="violation", detail=verdict.summary()
        )
    return None


run_trial.last_stats = (0, 0)


def _trial_outcome(
    recipe: TrialRecipe, trace: str = "stats"
) -> tuple[Optional[Witness], int, int]:
    """One trial's picklable summary: (witness-or-None, reads, aborts).

    Module-level so a multiprocessing pool can ship it to workers; each
    trial is a pure function of its recipe, which is what makes the
    parallel campaign's output identical to the serial one.
    """
    witness = run_trial(recipe, trace=trace)
    reads, aborts = run_trial.last_stats
    return witness, reads, aborts


def fuzz(
    trials: int = 50,
    n: int = 6,
    f: int = 1,
    master_seed: int = 0,
    stop_at_first: bool = False,
    jobs: int = 1,
    trace: str = "stats",
) -> FuzzReport:
    """Run a fuzz campaign; see module docstring for the contract.

    ``jobs > 1`` fans the trials out over a process pool
    (:mod:`repro.harness.parallel`). Recipes are always drawn serially
    from the master RNG before any trial runs, and outcomes are consumed
    in recipe order, so the report — trial counts, witness list, read and
    abort totals, and the point ``stop_at_first`` stops at — is identical
    for every ``jobs`` value.
    """
    from repro.harness.parallel import parallel_imap

    rng = random.Random(master_seed)
    recipes = [
        sample_recipe(rng, n=n, f=f, trial_seed=rng.getrandbits(30))
        for _ in range(trials)
    ]
    trial_fn = (
        _trial_outcome
        if trace == "stats"
        else functools.partial(_trial_outcome, trace=trace)
    )
    report = FuzzReport(trials=0)
    for witness, reads, aborts in parallel_imap(
        trial_fn, recipes, jobs=jobs
    ):
        report.trials += 1
        report.reads_checked += reads
        report.aborts += aborts
        if witness is not None:
            report.witnesses.append(witness)
            if stop_at_first:
                break
    return report
