"""Latency-distribution analysis: numpy aggregation + text rendering.

Cross-seed sweeps produce thousands of operation latencies; this module
turns them into distribution summaries and terminal-friendly histograms /
sparklines, so an experiment can show a *shape* (bimodality from retries,
partition-stall tails) rather than just a mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.spec.history import History, OpKind, OpStatus

_BLOCKS = " ▁▂▃▄▅▆▇█"


@dataclass
class Distribution:
    """A latency sample set with summary statistics."""

    samples: np.ndarray

    @classmethod
    def from_histories(
        cls, histories: Iterable[History], kind: OpKind | None = None
    ) -> "Distribution":
        """Pool completed-operation latencies from many runs."""
        values: list[float] = []
        for history in histories:
            for op in history:
                if op.status is not OpStatus.OK or op.responded_at is None:
                    continue
                if kind is not None and op.kind is not kind:
                    continue
                values.append(op.responded_at - op.invoked_at)
        return cls(samples=np.asarray(values, dtype=float))

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return int(self.samples.size)

    def percentile(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        return float(np.percentile(self.samples, q))

    def summary_row(self) -> tuple:
        """(count, mean, p50, p90, p99, max) — the standard table row."""
        if self.count == 0:
            return (0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return (
            self.count,
            round(float(self.samples.mean()), 2),
            round(self.percentile(50), 2),
            round(self.percentile(90), 2),
            round(self.percentile(99), 2),
            round(float(self.samples.max()), 2),
        )

    # ------------------------------------------------------------------
    def _safe_histogram(self, bins: int) -> tuple[np.ndarray, np.ndarray]:
        """np.histogram that tolerates constant samples (zero range)."""
        lo, hi = float(self.samples.min()), float(self.samples.max())
        # Effectively-constant samples (including float-epsilon spreads from
        # accumulated clock arithmetic) cannot support `bins` finite-width
        # bins; pad the range so one bin holds everything.
        spread = hi - lo
        min_spread = max(abs(hi), 1.0) * 1e-9 * bins
        if spread <= min_spread:
            pad = max(0.5, abs(hi) * 1e-6)
            return np.histogram(self.samples, bins=bins, range=(lo - pad, hi + pad))
        return np.histogram(self.samples, bins=bins)

    def histogram(self, bins: int = 12, width: int = 40) -> str:
        """A horizontal ASCII histogram."""
        if self.count == 0:
            return "(no samples)"
        counts, edges = self._safe_histogram(bins)
        peak = counts.max() or 1
        lines = []
        for count, lo, hi in zip(counts, edges, edges[1:]):
            bar = "#" * max(1 if count else 0, int(width * count / peak))
            lines.append(f"{lo:8.2f}–{hi:8.2f} | {bar} {count}")
        return "\n".join(lines)

    def sparkline(self, bins: int = 24) -> str:
        """A one-line density sketch (unicode blocks)."""
        if self.count == 0:
            return "(no samples)"
        counts, _ = self._safe_histogram(bins)
        peak = counts.max() or 1
        levels = (counts * (len(_BLOCKS) - 1) // peak).astype(int)
        return "".join(_BLOCKS[level] for level in levels)


def compare(
    labeled: Sequence[tuple[str, Distribution]],
    headers: tuple[str, ...] = ("count", "mean", "p50", "p90", "p99", "max"),
) -> str:
    """A comparison table of several distributions with sparklines."""
    from repro.harness.tables import render_table

    rows = []
    for name, dist in labeled:
        rows.append((name, *dist.summary_row(), dist.sparkline()))
    return render_table(("series", *headers, "shape"), rows)
