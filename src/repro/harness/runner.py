"""Run bundles and the generic register-workload runner.

``run_register_workload`` is the workhorse most experiments call: build a
system, optionally corrupt it, drive a workload, evaluate regularity and
pseudo-stabilization, and bundle every metric an experiment might tabulate
into one :class:`RunResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem, ServerFactory
from repro.harness.metrics import (
    HistoryMetrics,
    history_metrics,
    messages_per_operation,
)
from repro.harness.tables import render_table
from repro.sim.adversary import Adversary
from repro.spec.history import History
from repro.spec.regularity import RegularityVerdict
from repro.spec.stabilization import StabilizationReport, evaluate_stabilization
from repro.workloads.generators import ScriptedOp, run_scripts


@dataclass
class RunResult:
    """Everything one run produced."""

    system: Any
    history: History
    verdict: Optional[RegularityVerdict]
    stabilization: Optional[StabilizationReport]
    metrics: HistoryMetrics
    messages_per_op: float

    @property
    def ok(self) -> bool:
        if self.stabilization is not None:
            return self.stabilization.stabilized
        return bool(self.verdict and self.verdict.ok)


@dataclass
class ExperimentReport:
    """A titled set of table rows, printable and machine-checkable."""

    experiment: str
    claim: str
    headers: list[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def table(self) -> str:
        body = render_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.claim}"
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def row_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_csv(self) -> str:
        """The rows as CSV (for plotting pipelines outside this repo)."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(list(row))
        return buf.getvalue()


def run_register_workload(
    config: SystemConfig,
    scripts: dict[str, list[ScriptedOp]],
    seed: int = 0,
    n_clients: Optional[int] = None,
    byzantine: Optional[dict[str, ServerFactory]] = None,
    adversary: Optional[Adversary] = None,
    corrupt_at_start: bool = False,
    corruption_times: Sequence[float] = (),
    corrupt_channels: bool = False,
    corruption_severity: float = 1.0,
    evaluate_suffix: bool = True,
    mwmr: bool = True,
    system_kwargs: Optional[dict[str, Any]] = None,
) -> RunResult:
    """Build, fault, drive and judge one register run.

    ``corrupt_at_start`` scrambles all correct servers and clients before
    any event fires (the paper's arbitrary-initial-configuration model);
    ``corruption_times`` adds mid-run transient strikes. The suffix
    evaluation anchors on the last fault instant.
    """
    n_clients = n_clients if n_clients is not None else len(scripts)
    system = RegisterSystem(
        config,
        seed=seed,
        n_clients=n_clients,
        byzantine=byzantine,
        adversary=adversary,
        mwmr=mwmr,
        **(system_kwargs or {}),
    )

    last_fault = 0.0
    if corrupt_at_start:
        system.corrupt_servers()
        system.corrupt_clients()
    if corruption_times:
        from repro.workloads.schedules import corruption_schedule

        corruption_schedule(
            system,
            corruption_times,
            server_fraction=corruption_severity,
            client_fraction=corruption_severity,
            corrupt_channels=corrupt_channels,
        ).arm(system.env)
        last_fault = max(corruption_times)

    run_scripts(system, scripts)

    faulted = corrupt_at_start or bool(corruption_times)
    verdict = None
    stabilization = None
    if evaluate_suffix and faulted:
        stabilization = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=last_fault
        )
        verdict = stabilization.suffix_verdict
    else:
        verdict = system.check_regularity()

    return RunResult(
        system=system,
        history=system.history,
        verdict=verdict,
        stabilization=stabilization,
        metrics=history_metrics(system.history),
        messages_per_op=messages_per_operation(
            system.message_stats, system.history
        ),
    )
