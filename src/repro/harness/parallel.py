"""Deterministic parallel execution of independent trials.

Every experiment sweep and fuzz campaign in this repo decomposes into
independent ``(config, seed)`` trials, each a pure function of its recipe:
a trial builds its own :class:`~repro.core.register.RegisterSystem`, drives
it, and returns a picklable summary. That purity is what makes fanning
trials out over a :mod:`multiprocessing` pool *safe*: workers share
nothing, and the pool's order-preserving map means the merged result
sequence is byte-identical to a serial run — parallelism can change
wall-clock time and nothing else. The jobs-invariance regression test
(``tests/harness/test_parallel.py``) enforces exactly that.

``jobs <= 1`` never spawns processes (the default everywhere), so existing
serial behaviour, tracebacks and determinism guarantees are untouched.

Worker functions must be module-level callables (or ``functools.partial``
over one) so they pickle; closures and lambdas will not.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → all visible CPUs."""
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order in the result.

    With ``jobs <= 1`` this is a plain in-process list comprehension; with
    ``jobs > 1`` the items are fanned out over a worker pool. Either way
    ``result[i] == fn(items[i])`` — the merge is deterministic by
    construction, so a sweep's report rows cannot depend on ``jobs``.
    """
    work = list(items)
    jobs = min(resolve_jobs(jobs), len(work))
    if jobs <= 1:
        return [fn(x) for x in work]
    import multiprocessing

    if chunksize is None:
        # Small chunks keep the pool busy when trial costs are uneven
        # (hostile configs vary by >10x); 1 task of overhead per trial is
        # noise next to a simulator run.
        chunksize = max(1, len(work) // (jobs * 4))
    with multiprocessing.Pool(processes=jobs) as pool:
        return pool.map(fn, work, chunksize=chunksize)


def parallel_imap(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    chunksize: int = 1,
) -> Iterator[R]:
    """Ordered streaming variant of :func:`parallel_map`.

    Yields ``fn(items[0]), fn(items[1]), ...`` in input order. The caller
    may stop consuming early (e.g. a fuzz campaign's ``stop_at_first``);
    with ``jobs > 1`` some later items may already have executed in
    workers, but because consumption order equals input order, everything
    the caller *observes* matches the serial run exactly.
    """
    work = list(items)
    jobs = min(resolve_jobs(jobs), len(work))
    if jobs <= 1:
        for x in work:
            yield fn(x)
        return
    import multiprocessing

    with multiprocessing.Pool(processes=jobs) as pool:
        yield from pool.imap(fn, work, chunksize=chunksize)
