"""Run metrics: operation latency, abort rates, message complexity.

Latency is measured in simulation time units; under the default
:class:`~repro.sim.adversary.FixedLatencyAdversary` one unit is one
message delay, so a two-round-trip operation reads as latency 4.0.
NumPy does the aggregation — sweeps produce thousands of samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.spec.history import History, OpKind, OpStatus


@dataclass
class LatencyStats:
    """Summary statistics over a latency sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, maximum=0.0)
        arr = np.asarray(samples, dtype=float)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            maximum=float(arr.max()),
        )

    def row(self) -> tuple:
        return (
            self.count,
            round(self.mean, 2),
            round(self.p50, 2),
            round(self.p95, 2),
            round(self.maximum, 2),
        )


@dataclass
class HistoryMetrics:
    """Per-run operation metrics derived from the history."""

    write_latency: LatencyStats
    read_latency: LatencyStats
    completed_writes: int
    completed_reads: int
    aborted_reads: int
    pending_ops: int

    @property
    def abort_rate(self) -> float:
        total = self.completed_reads + self.aborted_reads
        return self.aborted_reads / total if total else 0.0


def history_metrics(history: History) -> HistoryMetrics:
    """Aggregate operation metrics for one history."""
    write_samples: list[float] = []
    read_samples: list[float] = []
    completed_writes = completed_reads = aborted = pending = 0
    for op in history:
        if op.status is OpStatus.PENDING:
            pending += 1
            continue
        if op.responded_at is None:
            continue
        latency = op.responded_at - op.invoked_at
        if op.kind is OpKind.WRITE and op.status is OpStatus.OK:
            completed_writes += 1
            write_samples.append(latency)
        elif op.kind is OpKind.READ and op.status is OpStatus.OK:
            completed_reads += 1
            read_samples.append(latency)
        elif op.kind is OpKind.READ and op.status is OpStatus.ABORT:
            aborted += 1
    return HistoryMetrics(
        write_latency=LatencyStats.from_samples(write_samples),
        read_latency=LatencyStats.from_samples(read_samples),
        completed_writes=completed_writes,
        completed_reads=completed_reads,
        aborted_reads=aborted,
        pending_ops=pending,
    )


def messages_per_operation(stats: Any, history: History) -> float:
    """Average messages sent per completed operation."""
    done = sum(1 for op in history if op.complete)
    return stats.total_sent / done if done else float(stats.total_sent)
