"""Run metrics: operation latency, abort rates, message complexity.

Latency is measured in simulation time units; under the default
:class:`~repro.sim.adversary.FixedLatencyAdversary` one unit is one
message delay, so a two-round-trip operation reads as latency 4.0. Live
runs (:mod:`repro.net`) measure in seconds instead; the machinery is
unit-agnostic.

Percentiles come from :class:`LogHistogram`, a streaming fixed-log-bucket
histogram: O(1) memory per sample, mergeable across shards/runs, with a
bounded relative error set by the bucket growth factor (4% by default).
That replaces sort-the-whole-list percentile math — a live load generator
producing millions of samples cannot afford to keep them, and a sweep
aggregating thousands of runs wants ``merge``, not concatenation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.spec.history import History, OpKind, OpStatus


class LogHistogram:
    """Streaming percentile histogram with fixed logarithmic buckets.

    Values land in buckets whose bounds grow geometrically by ``growth``
    per bucket, starting at ``min_value`` (everything at or below it —
    including zero — shares the underflow bucket). A reported quantile is
    the geometric midpoint of its bucket, so its relative error is at most
    ``sqrt(growth) - 1``; count, sum, min and max are tracked exactly, and
    every quantile is clamped to ``[min, max]`` — a one-sample histogram
    reports that sample exactly, not its bucket's midpoint.

    Two histograms with the same ``growth``/``min_value`` merge by bucket
    addition (:meth:`merge`): aggregate per-client or per-run histograms
    without resampling.
    """

    __slots__ = ("growth", "min_value", "_log_growth", "_buckets",
                 "count", "total", "_min", "_max")

    def __init__(self, growth: float = 1.04, min_value: float = 1e-6) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth factor must exceed 1: {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive: {min_value}")
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self._buckets: Counter[int] = Counter()
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording -------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) / self._log_growth)

    def add(self, value: float) -> None:
        self._buckets[self._index(value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (same bucketing required)."""
        if (other.growth, other.min_value) != (self.growth, self.min_value):
            raise ValueError(
                "cannot merge histograms with different bucketing: "
                f"({self.growth}, {self.min_value}) vs "
                f"({other.growth}, {other.min_value})"
            )
        self._buckets.update(other._buckets)
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- reading ---------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def _representative(self, index: int) -> float:
        if index == 0:
            return self.min_value
        # Geometric midpoint of [min_value*g^(i-1), min_value*g^i).
        return self.min_value * self.growth ** (index - 0.5)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), nearest-rank over buckets."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self._min
        if q >= 1.0:
            return self._max
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        value = self._max
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= target:
                value = self._representative(index)
                break
        return min(max(value, self._min), self._max)

    def quantiles(self, qs: Iterable[float]) -> list[float]:
        return [self.quantile(q) for q in qs]

    def summary(self) -> dict[str, float]:
        """The JSON-artifact shape (BENCH_live.json and friends)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


@dataclass
class LatencyStats:
    """Summary statistics over a latency sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def from_histogram(cls, hist: LogHistogram) -> "LatencyStats":
        if hist.count == 0:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, maximum=0.0)
        return cls(
            count=hist.count,
            mean=hist.mean,
            p50=hist.quantile(0.50),
            p95=hist.quantile(0.95),
            maximum=hist.max,
        )

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        hist = LogHistogram()
        hist.extend(samples)
        return cls.from_histogram(hist)

    def row(self) -> tuple:
        return (
            self.count,
            round(self.mean, 2),
            round(self.p50, 2),
            round(self.p95, 2),
            round(self.maximum, 2),
        )


@dataclass
class HistoryMetrics:
    """Per-run operation metrics derived from the history."""

    write_latency: LatencyStats
    read_latency: LatencyStats
    completed_writes: int
    completed_reads: int
    aborted_reads: int
    pending_ops: int

    @property
    def abort_rate(self) -> float:
        total = self.completed_reads + self.aborted_reads
        return self.aborted_reads / total if total else 0.0


def history_metrics(history: History) -> HistoryMetrics:
    """Aggregate operation metrics for one history."""
    write_hist = LogHistogram()
    read_hist = LogHistogram()
    completed_writes = completed_reads = aborted = pending = 0
    for op in history:
        if op.status is OpStatus.PENDING:
            pending += 1
            continue
        if op.responded_at is None:
            continue
        latency = op.responded_at - op.invoked_at
        if op.kind is OpKind.WRITE and op.status is OpStatus.OK:
            completed_writes += 1
            write_hist.add(latency)
        elif op.kind is OpKind.READ and op.status is OpStatus.OK:
            completed_reads += 1
            read_hist.add(latency)
        elif op.kind is OpKind.READ and op.status is OpStatus.ABORT:
            aborted += 1
    return HistoryMetrics(
        write_latency=LatencyStats.from_histogram(write_hist),
        read_latency=LatencyStats.from_histogram(read_hist),
        completed_writes=completed_writes,
        completed_reads=completed_reads,
        aborted_reads=aborted,
        pending_ops=pending,
    )


def messages_per_operation(stats: Any, history: History) -> float:
    """Average messages sent per completed operation."""
    done = sum(1 for op in history if op.complete)
    return stats.total_sent / done if done else float(stats.total_sent)
