"""Plain-text table rendering for experiment reports.

Every experiment prints its rows through :func:`render_table`, so the
benchmark output is uniform and diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        padded = [
            (row[i] if i < len(row) else "").ljust(widths[i])
            for i in range(len(widths))
        ]
        lines.append(" | ".join(padded))
    return "\n".join(lines)
