"""E7 — bounded labels: the k-SBLS works where earlier bounded schemes fail.

Three sub-experiments:

* **Domination (Definition 2)** — for each ``k``, sample thousands of
  label subsets of size <= k, *including* uniformly random (i.e.
  corrupted) labels, and count domination failures of ``next``. The Alon
  et al. scheme must score zero at a label-space cost of ``k² + k + 1``
  domain elements; the wraparound (Israeli-Li lineage) scheme fails from
  corrupted configurations — the antipodal pair is a certificate.
* **Register-level recovery** — the full register run under initial
  corruption, once with the Alon scheme and once with the wraparound
  scheme plugged in as ``config.scheme``: the former stabilizes, the
  latter leaves reads aborting or violating.
* **Assumption 2 (quiescence/window)** — write bursts longer than the
  servers' ``old_vals`` window: reads *concurrent with the burst* may
  abort once the burst outruns the window (the paper's stated reason for
  the assumption); reads after quiescence always recover.
"""

from __future__ import annotations

import random

from repro.core.config import SystemConfig
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.labels.alon import AlonLabelingScheme
from repro.labels.modular import ModularLabelingScheme
from repro.spec.history import OpKind
from repro.workloads.generators import ScriptedOp, read_heavy_scripts, unique_value


def domination_failures(scheme, rng: random.Random, trials: int, k: int) -> int:
    """Count ``next()`` outputs failing to dominate a <= k input subset."""
    failures = 0
    for _ in range(trials):
        size = rng.randrange(1, k + 1)
        mode = rng.random()
        if mode < 0.4:
            # A coherent chain, as benign operation would produce.
            labels = [scheme.initial_label()]
            for _ in range(size - 1):
                labels.append(scheme.next_label(labels[-3:]))
        else:
            # Arbitrary corruption.
            labels = [scheme.random_label(rng) for _ in range(size)]
        fresh = scheme.next_label(labels)
        if not scheme.dominates_all(fresh, labels):
            failures += 1
    return failures


def run(seeds: int = 2, trials: int = 1500) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E7",
        claim=(
            "the k-SBLS dominates any <= k labels (Def. 2), including "
            "corrupted ones; wraparound bounded labels do not, and the "
            "register inherits exactly that difference"
        ),
        headers=["sub-experiment", "scheme", "parameter", "result"],
    )

    # -- domination -----------------------------------------------------
    for k in (4, 8, 16, 32):
        scheme = AlonLabelingScheme(k=k)
        fails = sum(
            domination_failures(scheme, random.Random(s), trials, k)
            for s in range(seeds)
        )
        report.rows.append(
            (
                "domination",
                "alon k-SBLS",
                f"k={k}, |domain|={scheme.domain_size}",
                f"{fails}/{seeds * trials} failures",
            )
        )
    for modulus in (16, 64):
        scheme = ModularLabelingScheme(modulus=modulus)
        fails = sum(
            domination_failures(scheme, random.Random(s), trials, scheme.k)
            for s in range(seeds)
        )
        report.rows.append(
            (
                "domination",
                "wraparound",
                f"modulus={modulus}",
                f"{fails}/{seeds * trials} failures",
            )
        )
        a, b = scheme.antipodal_pair()
        nxt = scheme.next_label([a, b])
        report.rows.append(
            (
                "domination (certificate)",
                "wraparound",
                f"corrupted pair {{{a}, {b}}}",
                f"next()={nxt} dominates both: "
                f"{scheme.dominates_all(nxt, [a, b])}",
            )
        )

    # -- register-level cost of the scheme --------------------------------
    # With the writer's retry loop, a register on the wraparound scheme
    # usually *survives* corrupted starts too — but it pays for every
    # failed domination with extra write phases, while the k-SBLS writes
    # in one attempt by construction. The register inherits the schemes'
    # difference as write latency / message churn (and, without retries,
    # as outright non-termination — covered in the unit tests).
    f = 1
    n = 5 * f + 1
    for scheme_name, scheme_factory in (
        ("alon k-SBLS", lambda: AlonLabelingScheme(k=n + 1)),
        ("wraparound", lambda: ModularLabelingScheme(modulus=16)),
    ):
        stabilized = 0
        write_means: list[float] = []
        msgs: list[float] = []
        runs = 6
        for seed in range(runs):
            config = SystemConfig(n=n, f=f, scheme=scheme_factory())
            rng = random.Random(seed + 400)
            scripts = read_heavy_scripts(
                [f"c{i}" for i in range(3)], rng, ops_per_client=6,
                write_fraction=0.5,
            )
            # Antipodal corrupted start for half the replicas: the exact
            # configuration the wraparound scheme cannot dominate.
            result = run_register_workload(
                config, scripts, seed=seed, corrupt_at_start=True
            )
            system = result.system
            rep = result.stabilization
            assert rep is not None
            if rep.stabilized:
                stabilized += 1
            write_means.append(result.metrics.write_latency.mean)
            msgs.append(result.messages_per_op)
        report.rows.append(
            (
                "register on scheme (corrupted start)",
                scheme_name,
                f"{runs} runs",
                f"{stabilized}/{runs} stabilized, "
                f"write latency {sum(write_means)/runs:.1f}, "
                f"{sum(msgs)/runs:.1f} msgs/op",
            )
        )

    # -- Assumption 2: burst length vs old_vals window ---------------------
    for window, burst in ((8, 4), (8, 8), (4, 12), (2, 12)):
        out = run_burst_vs_window(window=window, burst=burst)
        p = out["paths"]
        report.rows.append(
            (
                "assumption 2 (burst/window)",
                "alon k-SBLS",
                f"window={window}, burst={burst}",
                f"paths local/union/abort = {p['local']}/{p['union']}/"
                f"{p['abort']}; {out['post_aborts']} aborts after quiescence",
            )
        )
    return report


def run_burst_vs_window(window: int, burst: int, f: int = 1, seed: int = 0) -> dict:
    """Reads racing a write burst, with a configurable history window.

    Jittered latencies make a read's replies straddle several writes of
    the burst, which is what sends it to the union graph where the window
    length decides between returning and aborting. (Under deterministic
    unit delays one writer's sequential burst keeps all replicas in
    lockstep and the local graph always answers.)
    """
    from repro.sim.adversary import UniformLatencyAdversary

    n = 5 * f + 1
    config = SystemConfig(n=n, f=f, old_vals_window=window)
    writer = "c0"
    scripts = {
        writer: [
            ScriptedOp(OpKind.WRITE, unique_value(writer, i), 0.0)
            for i in range(burst)
        ],
        "c1": [ScriptedOp(OpKind.READ, delay=1.0) for _ in range(burst)],
        "c2": [ScriptedOp(OpKind.READ, delay=0.4) for _ in range(burst)],
    }
    result = run_register_workload(
        config, scripts, seed=seed, adversary=UniformLatencyAdversary(0.3, 3.5)
    )
    concurrent_aborts = result.metrics.aborted_reads
    paths = result.system.read_path_stats()
    # After quiescence every read must succeed again.
    system = result.system
    post = [system.read_sync("c1") for _ in range(3)]
    from repro.core.client import ABORT

    post_aborts = sum(1 for v in post if v is ABORT)
    return {
        "concurrent_aborts": concurrent_aborts,
        "post_aborts": post_aborts,
        "post_values": post,
        "paths": paths,
    }
