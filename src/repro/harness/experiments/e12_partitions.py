"""E12 (extension) — availability under network partitions.

The paper's model is asynchronous with reliable channels, so a partition
is just a long delay (see :mod:`repro.sim.partitions`). The quorum
arithmetic then predicts availability exactly:

* isolating up to ``f`` servers leaves ``n - f`` reachable — operations
  proceed at full speed through the cut (the quorums never needed the
  island);
* isolating more than ``f`` servers leaves fewer than ``n - f`` reachable
  — every operation started during the cut *stalls until the heal*, then
  completes; nothing is lost, nothing is violated (CP behaviour, in CAP
  vocabulary);
* clients inside the island always stall (they cannot reach ``n - f``
  servers).

The table reports, per island size: operations completing during the cut,
operations stalled past the heal, the worst operation latency, and the
regularity verdict over the whole run.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.harness.runner import ExperimentReport
from repro.sim.partitions import PartitioningAdversary, PartitionWindow


def run_partition_scenario(
    island_size: int, f: int = 1, seed: int = 0
) -> dict:
    """One run: a partition of ``island_size`` servers during [10, 40)."""
    n = 5 * f + 1
    config = SystemConfig(n=n, f=f)
    island = frozenset(f"s{i}" for i in range(island_size))
    window = PartitionWindow(start=10.0, end=40.0, island=island)

    # The adversary needs the scheduler clock; build the system around it.
    holder = {}
    adversary = PartitioningAdversary(
        [window], clock=lambda: holder["system"].env.now
    )
    system = RegisterSystem(config, seed=seed, n_clients=2, adversary=adversary)
    holder["system"] = system

    # Warm-up before the cut.
    system.write_sync("c0", "before")
    assert system.read_sync("c1") == "before"

    # Jump inside the partition window and run operations through it.
    system.env.scheduler.call_at(12.0, lambda: None, tag="enter-cut")
    system.env.run(until=12.0)

    during: list = []
    w = system.write("c0", "during-cut")
    during.append(("write", w))
    r = system.read("c1")
    during.append(("read", r))
    # Let the cut window elapse (events drain; stalled ops stay pending).
    system.env.run(until=39.0)
    completed_during = sum(1 for _, h in during if h.done)
    # Heal: everything completes.
    system.env.run()
    system.env.tick()
    stalled = len(during) - completed_during
    assert all(h.done for _, h in during)

    system.write_sync("c0", "after")
    assert system.read_sync("c1") == "after"

    worst = max(
        (op.responded_at - op.invoked_at)
        for op in system.history
        if op.complete and op.responded_at is not None
    )
    verdict = system.check_regularity()
    return {
        "island": island_size,
        "completed_during": completed_during,
        "stalled": stalled,
        "worst_latency": worst,
        "deferred_messages": adversary.deferred,
        "regular": verdict.ok,
    }


def run(f: int = 1) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E12",
        claim=(
            "partitions are delays: cuts isolating <= f servers are free; "
            "bigger cuts stall operations until the heal — never lose or "
            "corrupt them (CP behaviour)"
        ),
        headers=[
            "island size",
            "vs f",
            "ops finished during cut",
            "ops stalled to heal",
            "worst op latency",
            "deferred msgs",
            "regular",
        ],
    )
    n = 5 * f + 1
    for island in range(0, 2 * f + 2):
        out = run_partition_scenario(island, f=f)
        rel = "<=f" if island <= f else ">f"
        report.rows.append(
            (
                island,
                rel,
                out["completed_during"],
                out["stalled"],
                round(out["worst_latency"], 1),
                out["deferred_messages"],
                out["regular"],
            )
        )
    report.notes.append(
        "island = servers cut off from the rest (clients stay with the "
        "majority side); the cut lasts 30 time units"
    )
    return report
