"""E8 — comparative matrix: protocols x fault classes.

Protocols (all on the same simulator, judged by the same checker):

* the paper's stabilizing register (``n = 5f + 1``);
* ABD majority-quorum atomic register (``n = 2f + 1``, crash model);
* Malkhi-Reiter masking-quorum safe register (``n = 4f + 1``);
* Kanjani-style BFT MWMR regular register (``n = 3f + 1``, unbounded ts).

Fault classes:

* ``clean`` — failure-free sequential workload;
* ``client-crash`` — a writer crash-stops mid-operation, others continue;
* ``byzantine`` — one server forges values with sky-high timestamps;
* ``transient+writes`` — every correct server corrupted (including a
  *twin* pair sharing one forged high-timestamp value), then a write-led
  workload; judged on the post-first-write suffix (pseudo-stabilization
  standard, applied uniformly);
* ``transient, reads only`` — same corruption but **no write ever
  happens**: judged purely on read *termination*. The paper's read
  terminates unconditionally (Lemma 6 — aborting is its answer when the
  servers are in a transitory phase); an ``f+1``-voucher read rule has
  nothing to vouch for and blocks forever;
* ``byz+transient`` — forging server plus corruption, write-led.

Cell values: ``OK``, ``violated`` (checker finds a violation), or
``stuck`` (an operation never terminates). Expected shape: ABD falls to
the forger (a lone huge timestamp wins every majority read), the
``3f+1`` regular register wedges when corruption precedes all writes,
and only the stabilizing register is OK across the row — at the price of
``5f + 1`` servers. The masking-quorum register survives these probes
but promises only *safe* semantics (and still needs ``4f + 1`` servers).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.baselines.abd import AbdSystem
from repro.baselines.kanjani import KanjaniSystem
from repro.baselines.malkhi_reiter import MrSafeSystem
from repro.byzantine.strategies import ForgingByzantine
from repro.core.config import SystemConfig
from repro.core.messages import (
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteRequest,
)
from repro.core.register import RegisterSystem
from repro.harness.runner import ExperimentReport
from repro.sim.process import Process
from repro.spec.stabilization import evaluate_stabilization


class BaselineForger(Process):
    """Adaptive Byzantine server for the (counter, id)-timestamp baselines.

    A *static* huge forged counter defeats itself: writers gather it and
    every genuine write inherits a higher counter. This forger instead
    tracks the largest counter it has witnessed and answers every read
    with a fabricated value *one step above it* — so whenever its reply
    lands inside a majority read quorum, the fabrication wins the
    max-timestamp selection. It stays honest to writers' timestamp
    queries (feeding them the truth keeps genuine timestamps low) and
    acknowledges every write.
    """

    def __init__(self, pid: str, env: Any, system: Any) -> None:
        super().__init__(pid, env)
        self._seen = 0

    def _note(self, ts: Any) -> None:
        if (
            isinstance(ts, tuple)
            and len(ts) == 2
            and isinstance(ts[0], int)
            and ts[0] > self._seen
        ):
            self._seen = ts[0]

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GetTs):
            self.send(src, TsReply(ts=(0, "")))
        elif isinstance(payload, WriteRequest):
            self._note(payload.ts)
            self.send(src, WriteAck(ts=payload.ts))
        elif isinstance(payload, ReadRequest):
            if isinstance(payload.label, int):
                self.send(
                    src,
                    ReadReply(
                        server=self.pid,
                        value="forged",
                        ts=(self._seen + 1, "zz"),
                        old_vals=(),
                        label=payload.label,
                    ),
                )


def _jitter(seed: int):
    # Jittered delays randomize reply arrival order so Byzantine/corrupt
    # replies actually land inside quorums (deterministic unit delays
    # would always sort them past the quorum cut).
    from repro.sim.adversary import UniformLatencyAdversary

    return UniformLatencyAdversary(0.5, 2.0)


def _make_ours(seed: int, byz: bool) -> RegisterSystem:
    config = SystemConfig(n=6, f=1)
    byzantine = {"s5": ForgingByzantine.factory()} if byz else None
    return RegisterSystem(
        config, seed=seed, n_clients=3, byzantine=byzantine,
        adversary=_jitter(seed),
    )


def _make_abd(seed: int, byz: bool) -> AbdSystem:
    byzantine = {"s2": lambda *a: BaselineForger(*a)} if byz else None
    return AbdSystem(
        n=3, f=1, seed=seed, n_clients=3, byzantine=byzantine,
        adversary=_jitter(seed),
    )


def _make_mr(seed: int, byz: bool) -> MrSafeSystem:
    byzantine = {"s4": lambda *a: BaselineForger(*a)} if byz else None
    return MrSafeSystem(
        n=5, f=1, seed=seed, n_clients=3, byzantine=byzantine,
        adversary=_jitter(seed),
    )


def _make_kanjani(seed: int, byz: bool) -> KanjaniSystem:
    byzantine = {"s3": lambda *a: BaselineForger(*a)} if byz else None
    return KanjaniSystem(
        n=4, f=1, seed=seed, n_clients=3, byzantine=byzantine,
        adversary=_jitter(seed),
    )


PROTOCOLS: dict[str, Callable[[int, bool], Any]] = {
    "stabilizing (paper, n=6)": _make_ours,
    "abd atomic (n=3)": _make_abd,
    "malkhi-reiter safe (n=5)": _make_mr,
    "kanjani regular (n=4)": _make_kanjani,
}

FAULT_CLASSES = [
    "clean",
    "client-crash",
    "byzantine",
    "transient+writes",
    "transient, reads only",
    "byz+transient",
]


def _corrupt(system: Any, twins: bool) -> None:
    """Corrupt every correct server; with ``twins`` two of them share one
    forged high-timestamp pair (the hardest write-led configuration, since
    ``f + 1``-voucher reads cannot tell the twins from a real write)."""
    correct = list(system.correct_servers())
    rng = system.env.spawn_rng("twin")
    for proc in correct:
        proc.corrupt_state(rng)
    if not twins:
        return
    forged_ts: Any = (1 << 39, "evil")
    if hasattr(system, "scheme") and not system.scheme.is_label(forged_ts):
        forged_ts = system.scheme.random_label(rng)
    for proc in correct[:2]:
        proc.value = "evil-twin"
        proc.ts = forged_ts
        if hasattr(proc, "old_vals"):
            proc.old_vals = [("evil-twin", forged_ts)]


def _run_ops(system: Any, ops: list[tuple[str, str, Any]]) -> bool:
    """Run a scripted op list; returns False when an op never terminates."""
    for cid, kind, value in ops:
        if system.clients[cid].crashed:
            continue  # crashed clients issue no further operations
        handle = (
            system.write(cid, value) if kind == "write" else system.read(cid)
        )
        system.env.run()
        if not handle.done:
            return False
        system.env.tick()
    return True


WRITE_LED = [
    ("c1", "write", "alpha"),
    ("c2", "read", None),
    ("c1", "write", "beta"),
    ("c2", "read", None),
    ("c0", "read", None),
]

READS_ONLY = [
    ("c2", "read", None),
    ("c1", "read", None),
    ("c0", "read", None),
]


def _classify(system: Any, terminated: bool, faulted: bool) -> str:
    if not terminated:
        return "stuck"
    if faulted:
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        if rep.anchor_write is not None:
            return "OK" if rep.stabilized else "violated"
        # Reads-only scenario: no anchor write exists, so judge the reads
        # against plain regularity — with nothing ever written the only
        # honest answers are the initial value or an abort. Fabricating a
        # corrupted value as if it were real data is a violation.
    verdict = system.check_regularity()
    return "OK" if verdict.ok else "violated"


def _one_cell(make: Callable[[int, bool], Any], fault: str, seed: int) -> str:
    byz = fault in ("byzantine", "byz+transient")
    system = make(seed, byz)
    faulted = fault.startswith("transient") or fault == "byz+transient"
    if faulted:
        # Twins stress write-led recovery; the reads-only probe uses
        # diverse corruption (twins would hand f+1-voucher readers an
        # immediate — fabricated — answer instead of exposing the wedge).
        _corrupt(system, twins=(fault != "transient, reads only"))
    if fault == "client-crash":
        system.write("c0", "doomed")
        system.env.scheduler.call_in(0.5, system.clients["c0"].crash)
        system.env.run(until=3.0)
    ops = READS_ONLY if fault == "transient, reads only" else WRITE_LED
    terminated = _run_ops(system, ops)
    return _classify(system, terminated, faulted)


def run(seeds: int = 3) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E8",
        claim=(
            "who survives which fault class: only the stabilizing register "
            "is OK across the row"
        ),
        headers=["protocol"] + FAULT_CLASSES,
    )

    def worst(statuses: list[str]) -> str:
        for bad in ("stuck", "violated"):
            if bad in statuses:
                return bad
        return "OK"

    for name, make in PROTOCOLS.items():
        cells = [
            worst([_one_cell(make, fault, seed) for seed in range(seeds)])
            for fault in FAULT_CLASSES
        ]
        report.rows.append((name, *cells))
    report.notes.append(
        "the masking-quorum register survives these probes but guarantees "
        "only SAFE semantics; 'transient, reads only' judges Lemma 6's "
        "unconditional read termination (the paper's read aborts, an "
        "f+1-voucher read blocks forever)"
    )
    return report
