"""E2 — Theorems 2-3: the protocol is an f-BTPS MWMR regular register.

Sweep: Byzantine strategies x workload shapes x seeds, every run starting
from an arbitrarily corrupted configuration (all correct servers and all
clients scrambled). Every run must pseudo-stabilize: the operation suffix
after the first post-fault write must be regular, with no aborts and no
non-termination.

Rows report, per strategy: runs, runs stabilized, total suffix reads
checked, suffix violations, suffix aborts — the paper's claim is the
all-zeros-but-stabilized shape of the last three columns.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.workloads.generators import mixed_scripts, read_heavy_scripts


def run(
    f: int = 1,
    seeds: int = 5,
    n_clients: int = 4,
    ops_per_client: int = 6,
    strategies: Optional[list[str]] = None,
) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E2",
        claim=(
            "Theorems 2-3: with n = 5f + 1 every execution from an "
            "arbitrary configuration pseudo-stabilizes to MWMR regularity"
        ),
        headers=[
            "byzantine strategy",
            "workload",
            "runs",
            "stabilized",
            "suffix reads",
            "violations",
            "suffix aborts",
        ],
    )
    n = 5 * f + 1
    names = strategies if strategies is not None else list(STRATEGY_ZOO)
    for name in names:
        cls = STRATEGY_ZOO[name]
        for workload, maker in (
            ("read-heavy", read_heavy_scripts),
            ("mixed", mixed_scripts),
        ):
            stabilized = suffix_reads = violations = aborts = 0
            for seed in range(seeds):
                config = SystemConfig(n=n, f=f)
                rng = random.Random(seed * 101 + 3)
                clients = [f"c{i}" for i in range(n_clients)]
                scripts = maker(clients, rng, ops_per_client=ops_per_client)
                byz = {f"s{n - i - 1}": cls.factory() for i in range(f)}
                result = run_register_workload(
                    config,
                    scripts,
                    seed=seed,
                    byzantine=byz,
                    corrupt_at_start=True,
                )
                rep = result.stabilization
                assert rep is not None
                if rep.stabilized:
                    stabilized += 1
                if rep.suffix_verdict is not None:
                    suffix_reads += rep.suffix_verdict.checked_reads
                    violations += len(rep.suffix_verdict.violations)
                    aborts += rep.suffix_verdict.aborted_reads
            report.rows.append(
                (name, workload, seeds, stabilized, suffix_reads, violations, aborts)
            )
    return report
