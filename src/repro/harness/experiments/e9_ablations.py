"""E9 — ablations of the protocol's design choices.

Three knobs the paper's design motivates, each toggled in isolation:

* **union WTsG** (``enable_union_graph``) — the Section IV-A machinery
  that lets reads concurrent with writes return instead of aborting.
  Measured: read abort rate under a concurrent read/write mix. Without
  the union graph every read that catches the replicas mid-write aborts.
* **FLUSH handshake** (``enable_flush``) — the Figure 3 label hygiene.
  Without it the reader trusts every server immediately and stale replies
  from previous reads (same recycled label) are indistinguishable from
  fresh ones; under jittery latencies and a stale-replaying Byzantine
  server this produces stale or inconsistent reads.
* **old_vals window length** — Assumption 2's memory/burst trade-off
  (see also E7): longer windows rescue reads concurrent with longer
  bursts.
"""

from __future__ import annotations

import random

from repro.byzantine.strategies import StaleReplayByzantine
from repro.core.config import SystemConfig
from repro.harness.parallel import parallel_map
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.sim.adversary import UniformLatencyAdversary
from repro.spec.history import OpKind
from repro.workloads.generators import ScriptedOp, mixed_scripts, unique_value


def _union_trial(task: tuple[bool, int, int]) -> tuple[int, int, int, int]:
    """One seed of the union-graph ablation (picklable for the pool).

    Reads racing writes under jitter, with a Byzantine reply occupying
    one quorum slot: a read completing inside a write's propagation window
    sees the replicas split between old and new value and *needs* the
    union graph to answer instead of aborting."""
    enable, seed, f = task
    n = 5 * f + 1
    config = SystemConfig(n=n, f=f, enable_union_graph=enable)
    rng = random.Random(seed * 5 + 2)
    scripts = mixed_scripts(
        [f"c{i}" for i in range(4)], rng, ops_per_client=8,
        write_fraction=0.5, max_gap=0.5,
    )
    result = run_register_workload(
        config,
        scripts,
        seed=seed,
        byzantine={f"s{n - 1}": StaleReplayByzantine.factory()},
        adversary=UniformLatencyAdversary(0.3, 4.0),
    )
    m = result.metrics
    violations = (
        len(result.verdict.violations) if result.verdict is not None else 0
    )
    return (
        m.aborted_reads,
        m.completed_reads + m.aborted_reads,
        violations,
        result.system.read_path_stats()["union"],
    )


def _union_ablation(enable: bool, seeds: int, f: int, jobs: int = 1) -> dict:
    outcomes = parallel_map(
        _union_trial, [(enable, seed, f) for seed in range(seeds)], jobs=jobs
    )
    aborts, reads, violations, union_hits = (
        sum(col) for col in zip(*outcomes)
    )
    return {
        "aborts": aborts,
        "reads": reads,
        "violations": violations,
        "union_hits": union_hits,
    }


class _LazyReplica:
    """Byzantine replica for the flush attack: behaves correctly until
    frozen, then keeps ACKing writes without storing them — presenting the
    frozen (stale) state to every subsequent read while still letting
    write response-quorums fill."""

    def __init__(self) -> None:
        self.frozen = False

    def factory(self):
        from repro.byzantine.base import ByzantineServer
        from repro.core.messages import WriteAck, WriteRequest

        outer = self

        class Lazy(ByzantineServer):
            strategy_name = "lazy-freeze"

            def on_write(self, src, msg):
                if outer.frozen:
                    self.send(src, WriteAck(ts=msg.ts))
                    return
                super().on_write(src, msg)

        return Lazy.factory()


def run_flush_attack(enable_flush: bool, park_delay: float, f: int = 1) -> dict:
    """The Lemma 5 scenario, scripted: a recycled read label meets its own
    stale reply.

    Timeline (single reader c1, single writer c0, ``k = 2`` read labels):

    1. ``w0`` writes ``old`` — every replica, including the (for now
       well-behaved) Byzantine one, stores it.
    2. ``r0`` reads with label 0; server s0's reply is *parked* in the
       network for ``park_delay``. r0 completes on the other replicas.
    3. ``r1`` reads with label 1 (the label set wraps: the next read
       reuses label 0).
    4. The Byzantine replica freezes (ACKs future writes, stores nothing).
    5. ``w1`` writes ``new``; its store to s1 is parked too, so s1 still
       holds ``old``. The write completes — response quorum n-f via
       s0, s2, s3, s4 + the frozen replica's fake ACK.
    6. ``r2`` reads, reusing label 0. Without the FLUSH handshake, s0's
       parked *stale* label-0 reply (value ``old``) is indistinguishable
       from a fresh one: stale-s0 + straggler-s1 + frozen-Byzantine make
       ``old`` reach 2f+1 witnesses and the completed ``w1`` is unread —
       a validity violation. With the handshake, FIFO-ness forces the
       stale reply to drain *before* s0 becomes safe, so r2 counts only
       s0's fresh reply and returns ``new`` (Lemma 5).

    The caller sweeps ``park_delay`` so the attack's race lands inside
    r2's window under either configuration's timing.
    """
    from repro.core.register import RegisterSystem
    from repro.sim.adversary import ScriptedAdversary

    n = 5 * f + 1
    parked = {"done": False}

    def policy(env, rng):
        kind = type(env.payload).__name__
        if (
            not parked["done"]
            and env.src == "s0"
            and env.dst == "c1"
            and kind == "ReadReply"
        ):
            parked["done"] = True
            return park_delay
        if policy.attack_phase and env.dst == "s1" and kind == "WriteRequest":
            return 500.0  # s1 stays a straggler holding "old"
        if (
            policy.attack_phase
            and env.src == "s4"
            and env.dst == "c1"
            and kind == "ReadReply"
        ):
            # Park s4's reply so r2's n-f quorum must wait for a fifth
            # distinct replier — which is exactly s0's parked stale reply.
            return 500.0
        return 1.0

    policy.attack_phase = False
    lazy = _LazyReplica()
    config = SystemConfig(
        n=n, f=f, enable_flush=enable_flush, read_label_count=2
    )
    system = RegisterSystem(
        config,
        seed=0,
        n_clients=2,
        adversary=ScriptedAdversary(policy),
        byzantine={f"s{n - 1}": lazy.factory()},
    )
    system.write_sync("c0", "old")
    r0 = system.read_sync("c1")
    r1 = system.read_sync("c1")
    lazy.frozen = True
    policy.attack_phase = True
    system.write_sync("c0", "new")
    r2 = system.read_sync("c1")
    verdict = system.check_regularity(check_termination=False)
    return {"r0": r0, "r1": r1, "r2": r2, "ok": verdict.ok}


def _flush_trial(task: tuple[bool, int, int]) -> tuple[int, int, int]:
    """One seed of the randomized FLUSH ablation (picklable)."""
    enable, seed, f = task
    n = 5 * f + 1
    config = SystemConfig(
        n=n, f=f, enable_flush=enable, read_label_count=2
    )
    scripts = {
        "c0": [
            ScriptedOp(OpKind.WRITE, unique_value("c0", i), 0.5)
            for i in range(6)
        ],
        "c1": [ScriptedOp(OpKind.READ, delay=0.0) for _ in range(12)],
        "c2": [ScriptedOp(OpKind.READ, delay=0.2) for _ in range(12)],
    }
    result = run_register_workload(
        config,
        scripts,
        seed=seed,
        byzantine={f"s{n - 1}": StaleReplayByzantine.factory()},
        adversary=UniformLatencyAdversary(0.2, 10.0),
    )
    m = result.metrics
    violations = (
        len(result.verdict.violations) if result.verdict is not None else 0
    )
    return (m.aborted_reads, m.completed_reads + m.aborted_reads, violations)


def _flush_ablation(enable: bool, seeds: int, f: int, jobs: int = 1) -> dict:
    outcomes = parallel_map(
        _flush_trial, [(enable, seed, f) for seed in range(seeds)], jobs=jobs
    )
    aborts, reads, violations = (sum(col) for col in zip(*outcomes))
    return {"aborts": aborts, "reads": reads, "violations": violations}


def _window_trial(task: tuple[int, int, int, int]) -> tuple[int, int, int]:
    """One seed of the old_vals-window ablation (picklable).

    Slow readers straddling a fast write burst: a union-path read needs
    a value common to every sampled replica's history window, so windows
    shorter than the number of writes a read straddles abort it."""
    window, burst, seed, f = task
    n = 5 * f + 1
    config = SystemConfig(n=n, f=f, old_vals_window=window)
    scripts = {
        "c0": [
            ScriptedOp(OpKind.WRITE, unique_value("c0", i), 0.0)
            for i in range(burst)
        ],
        "c1": [ScriptedOp(OpKind.READ, delay=0.3) for _ in range(burst)],
        "c2": [ScriptedOp(OpKind.READ, delay=0.9) for _ in range(burst)],
    }
    result = run_register_workload(
        config,
        scripts,
        seed=seed,
        byzantine={f"s{n - 1}": StaleReplayByzantine.factory()},
        adversary=UniformLatencyAdversary(0.3, 8.0),
    )
    m = result.metrics
    return (
        m.aborted_reads,
        m.completed_reads + m.aborted_reads,
        result.system.read_path_stats()["union"],
    )


def _window_ablation(
    window: int, burst: int, seeds: int, f: int, jobs: int = 1
) -> dict:
    outcomes = parallel_map(
        _window_trial,
        [(window, burst, seed, f) for seed in range(seeds)],
        jobs=jobs,
    )
    aborts, reads, union_hits = (sum(col) for col in zip(*outcomes))
    return {"aborts": aborts, "reads": reads, "union_hits": union_hits}


def _attack_trial(task: tuple[bool, float, int]) -> int:
    """One Lemma-5 park-delay step: 1 iff the read went stale (picklable)."""
    enable, park, f = task
    out = run_flush_attack(enable, park, f=f)
    return int(out["r2"] == "old" or not out["ok"])


def run(f: int = 1, seeds: int = 4, jobs: int = 1) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E9",
        claim="each design ingredient earns its place",
        headers=["ablation", "setting", "reads", "aborts", "violations", "union-path reads"],
    )
    for enable in (True, False):
        out = _union_ablation(enable, seeds, f, jobs=jobs)
        report.rows.append(
            (
                "union WTsG",
                "on" if enable else "OFF",
                out["reads"],
                out["aborts"],
                out["violations"],
                out["union_hits"] if enable else "-",
            )
        )
    for enable in (True, False):
        out = _flush_ablation(enable, seeds, f, jobs=jobs)
        report.rows.append(
            (
                "FLUSH handshake (random)",
                "on" if enable else "OFF",
                out["reads"],
                out["aborts"],
                out["violations"],
                "-",
            )
        )
    # The adversarial schedule (Lemma 5 mechanized): sweep the park delay
    # so the stale reply lands inside the label-reusing read's window.
    for enable in (True, False):
        parks = [5.0 + 0.5 * step for step in range(16)]
        stale = parallel_map(
            _attack_trial, [(enable, park, f) for park in parks], jobs=jobs
        )
        attacks = len(parks)
        stale_reads = sum(stale)
        report.rows.append(
            (
                "FLUSH handshake (Lemma 5 attack)",
                "on" if enable else "OFF",
                attacks,
                "-",
                stale_reads,
                "-",
            )
        )
    for window, burst in ((12, 10), (6, 10), (3, 10), (1, 10)):
        out = _window_ablation(window, burst, seeds, f, jobs=jobs)
        report.rows.append(
            (
                "old_vals window",
                f"window={window}, burst={burst}",
                out["reads"],
                out["aborts"],
                "-",
                out["union_hits"],
            )
        )
    return report
