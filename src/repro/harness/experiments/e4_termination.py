"""E4 — Lemmas 1, 3, 6: every operation terminates, and how fast.

Under each Byzantine strategy (clean start, unit message delays so time
counts message delays), a mixed workload runs to completion. Rows report
completed/pending operations and the latency distribution per operation
type. The claims:

* pending must be 0 everywhere (Lemmas 1/3/6 — no strategy can block
  quorums of ``n - f``);
* solo-writer write latency is 4 message delays (two round trips:
  GET_TS/TS + WRITE/ACK), reads 6 (FLUSH/FLUSH_ACK + READ/REPLY, plus the
  label-column wait which resolves with the flush round trip and the
  reply round trip... measured, not assumed);
* Byzantine silence costs nothing (quorums never wait for the silent f).
"""

from __future__ import annotations

import random

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.harness.metrics import LogHistogram
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.workloads.generators import mixed_scripts


def run(f: int = 1, seeds: int = 4, n_clients: int = 3) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E4",
        claim="Lemmas 1/3/6: termination of write, find_read_label and read",
        headers=[
            "byzantine strategy",
            "ops done",
            "pending",
            "write mean",
            "write p95",
            "read mean",
            "read p95",
            "aborts",
        ],
    )
    n = 5 * f + 1
    for name, cls in STRATEGY_ZOO.items():
        done = pending = aborts = 0
        wl = LogHistogram()
        rl = LogHistogram()
        for seed in range(seeds):
            config = SystemConfig(n=n, f=f)
            rng = random.Random(seed * 7 + 11)
            clients = [f"c{i}" for i in range(n_clients)]
            scripts = mixed_scripts(clients, rng, ops_per_client=6)
            byz = {f"s{n - i - 1}": cls.factory() for i in range(f)}
            result = run_register_workload(
                config, scripts, seed=seed, byzantine=byz
            )
            m = result.metrics
            done += m.completed_writes + m.completed_reads
            pending += m.pending_ops
            aborts += m.aborted_reads
            for op in result.history:
                if op.complete and op.responded_at is not None:
                    latency = op.responded_at - op.invoked_at
                    (wl if op.is_write else rl).add(latency)
        report.rows.append(
            (
                name,
                done,
                pending,
                round(wl.mean, 2),
                round(wl.quantile(0.95), 2),
                round(rl.mean, 2),
                round(rl.quantile(0.95), 2),
                aborts,
            )
        )
    return report
