"""E10 — cost and scalability: messages, latency, and the data-link tax.

Two sweeps:

* **Resilience scaling** — deploy at ``f = 1..3`` (``n = 5f + 1``) and a
  few super-minimal sizes, run a fixed workload, report messages per
  operation and operation latency (in message delays). Message complexity
  is Θ(n) per phase — the table shows the linear growth and the constant
  round-trip latency (asynchronous quorums don't slow down as n grows,
  they just cost more messages).
* **Substrate tax** — the same small workload over (a) reliable FIFO
  channels (the paper's assumption) and (b) fair-lossy non-FIFO channels
  with the stabilizing data-link of reference [8] rebuilding FIFO
  reliability. The data-link multiplies message counts (retransmissions,
  ack-counting) and stretches latency — quantified here.
"""

from __future__ import annotations

import random

from repro.core.config import SystemConfig
from repro.core.lossy import LossyRegisterClient, LossyRegisterServer
from repro.core.register import RegisterSystem
from repro.harness.metrics import history_metrics, messages_per_operation
from repro.harness.parallel import parallel_map
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.sim.channels import FairLossyChannel
from repro.workloads.generators import read_heavy_scripts


def _fifo_trial(task: tuple[int, int, int]) -> tuple[float, float, float, int]:
    """One (f, seed) resilience-scaling run (picklable for the pool)."""
    f, seed, n_clients = task
    n = 5 * f + 1
    config = SystemConfig(n=n, f=f)
    rng = random.Random(seed + 77)
    scripts = read_heavy_scripts(
        [f"c{i}" for i in range(n_clients)], rng, ops_per_client=6,
        write_fraction=0.4,
    )
    result = run_register_workload(config, scripts, seed=seed)
    return (
        result.messages_per_op,
        result.metrics.write_latency.mean,
        result.metrics.read_latency.mean,
        result.metrics.completed_writes + result.metrics.completed_reads,
    )


def run(seeds: int = 3, max_f: int = 3, jobs: int = 1) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E10",
        claim="message complexity grows linearly in n; latency stays flat; "
        "the fair-lossy data-link substrate costs a constant factor",
        headers=[
            "configuration",
            "n",
            "f",
            "msgs/op",
            "write mean latency",
            "read mean latency",
            "ops",
        ],
    )

    fs = list(range(1, max_f + 1))
    tasks = [(f, seed, 3) for f in fs for seed in range(seeds)]
    outcomes = parallel_map(_fifo_trial, tasks, jobs=jobs)
    for i, f in enumerate(fs):
        cell = outcomes[i * seeds : (i + 1) * seeds]
        msgs = [c[0] for c in cell]
        wl = [c[1] for c in cell]
        rl = [c[2] for c in cell]
        ops = sum(c[3] for c in cell)
        report.rows.append(
            (
                "fifo channels",
                5 * f + 1,
                f,
                round(sum(msgs) / len(msgs), 1),
                round(sum(wl) / len(wl), 2),
                round(sum(rl) / len(rl), 2),
                ops,
            )
        )

    # Substrate comparison at f=1.
    for substrate in ("fifo", "fair-lossy + data-link"):
        out = run_substrate(substrate, seeds=seeds, jobs=jobs)
        report.rows.append(
            (
                substrate,
                6,
                1,
                round(out["msgs_per_op"], 1),
                round(out["write_mean"], 2),
                round(out["read_mean"], 2),
                out["ops"],
            )
        )
    return report


def _substrate_trial(
    task: tuple[str, int, int]
) -> tuple[float, float, float, int, int]:
    """One seed of the substrate-tax comparison (picklable for the pool)."""
    substrate, seed, ops_per_client = task
    config = SystemConfig(n=6, f=1)
    kwargs: dict = {}
    if substrate != "fifo":
        kwargs = dict(
            channel_factory=lambda: FairLossyChannel(
                loss=0.15, duplication=0.05, fairness_bound=6, jitter=1.5
            ),
            server_cls=LossyRegisterServer,
            client_cls=LossyRegisterClient,
        )
    system = RegisterSystem(config, seed=seed, n_clients=2, **kwargs)
    for i in range(ops_per_client):
        system.write_sync("c0", f"s{seed}.{i}")
        system.read_sync("c1")
    metrics = history_metrics(system.history)
    return (
        messages_per_operation(system.message_stats, system.history),
        metrics.write_latency.mean,
        metrics.read_latency.mean,
        metrics.completed_writes + metrics.completed_reads,
        metrics.aborted_reads,
    )


def run_substrate(
    substrate: str, seeds: int = 3, ops_per_client: int = 4, jobs: int = 1
) -> dict:
    """One workload over a chosen channel substrate; aggregated metrics."""
    outcomes = parallel_map(
        _substrate_trial,
        [(substrate, seed, ops_per_client) for seed in range(seeds)],
        jobs=jobs,
    )
    msgs = [o[0] for o in outcomes]
    wl = [o[1] for o in outcomes]
    rl = [o[2] for o in outcomes]
    return {
        "msgs_per_op": sum(msgs) / len(msgs),
        "write_mean": sum(wl) / len(wl),
        "read_mean": sum(rl) / len(rl),
        "ops": sum(o[3] for o in outcomes),
        "aborts": sum(o[4] for o in outcomes),
    }
