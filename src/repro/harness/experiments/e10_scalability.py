"""E10 — cost and scalability: messages, latency, and the data-link tax.

Two sweeps:

* **Resilience scaling** — deploy at ``f = 1..3`` (``n = 5f + 1``) and a
  few super-minimal sizes, run a fixed workload, report messages per
  operation and operation latency (in message delays). Message complexity
  is Θ(n) per phase — the table shows the linear growth and the constant
  round-trip latency (asynchronous quorums don't slow down as n grows,
  they just cost more messages).
* **Substrate tax** — the same small workload over (a) reliable FIFO
  channels (the paper's assumption) and (b) fair-lossy non-FIFO channels
  with the stabilizing data-link of reference [8] rebuilding FIFO
  reliability. The data-link multiplies message counts (retransmissions,
  ack-counting) and stretches latency — quantified here.
"""

from __future__ import annotations

import random

from repro.core.config import SystemConfig
from repro.core.lossy import LossyRegisterClient, LossyRegisterServer
from repro.core.register import RegisterSystem
from repro.harness.metrics import history_metrics, messages_per_operation
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.sim.channels import FairLossyChannel
from repro.workloads.generators import read_heavy_scripts


def run(seeds: int = 3, max_f: int = 3) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E10",
        claim="message complexity grows linearly in n; latency stays flat; "
        "the fair-lossy data-link substrate costs a constant factor",
        headers=[
            "configuration",
            "n",
            "f",
            "msgs/op",
            "write mean latency",
            "read mean latency",
            "ops",
        ],
    )

    for f in range(1, max_f + 1):
        n = 5 * f + 1
        msgs: list[float] = []
        wl: list[float] = []
        rl: list[float] = []
        ops = 0
        for seed in range(seeds):
            config = SystemConfig(n=n, f=f)
            rng = random.Random(seed + 77)
            scripts = read_heavy_scripts(
                [f"c{i}" for i in range(3)], rng, ops_per_client=6,
                write_fraction=0.4,
            )
            result = run_register_workload(config, scripts, seed=seed)
            msgs.append(result.messages_per_op)
            wl.append(result.metrics.write_latency.mean)
            rl.append(result.metrics.read_latency.mean)
            ops += result.metrics.completed_writes + result.metrics.completed_reads
        report.rows.append(
            (
                "fifo channels",
                n,
                f,
                round(sum(msgs) / len(msgs), 1),
                round(sum(wl) / len(wl), 2),
                round(sum(rl) / len(rl), 2),
                ops,
            )
        )

    # Substrate comparison at f=1.
    for substrate in ("fifo", "fair-lossy + data-link"):
        out = run_substrate(substrate, seeds=seeds)
        report.rows.append(
            (
                substrate,
                6,
                1,
                round(out["msgs_per_op"], 1),
                round(out["write_mean"], 2),
                round(out["read_mean"], 2),
                out["ops"],
            )
        )
    return report


def run_substrate(substrate: str, seeds: int = 3, ops_per_client: int = 4) -> dict:
    """One workload over a chosen channel substrate; aggregated metrics."""
    msgs: list[float] = []
    wl: list[float] = []
    rl: list[float] = []
    ops = 0
    aborts = 0
    for seed in range(seeds):
        config = SystemConfig(n=6, f=1)
        kwargs: dict = {}
        if substrate != "fifo":
            kwargs = dict(
                channel_factory=lambda: FairLossyChannel(
                    loss=0.15, duplication=0.05, fairness_bound=6, jitter=1.5
                ),
                server_cls=LossyRegisterServer,
                client_cls=LossyRegisterClient,
            )
        system = RegisterSystem(config, seed=seed, n_clients=2, **kwargs)
        for i in range(ops_per_client):
            system.write_sync("c0", f"s{seed}.{i}")
            system.read_sync("c1")
        metrics = history_metrics(system.history)
        msgs.append(
            messages_per_operation(system.message_stats, system.history)
        )
        wl.append(metrics.write_latency.mean)
        rl.append(metrics.read_latency.mean)
        ops += metrics.completed_writes + metrics.completed_reads
        aborts += metrics.aborted_reads
    return {
        "msgs_per_op": sum(msgs) / len(msgs),
        "write_mean": sum(wl) / len(wl),
        "read_mean": sum(rl) / len(rl),
        "ops": ops,
        "aborts": aborts,
    }
