"""E13 (extension) — bounded timestamps in the long run.

The paper's headline feature is *bounded* timestamps: the label set has
``k² + k + 1`` elements, so a long-lived register must *recycle* labels —
which is exactly what unbounded-counter protocols never face, and why
Assumption 2 (write quiescence) exists (the paper's Concluding Remarks
conjecture it necessary).

This experiment runs long write streams and measures the label economy:

* how many *distinct* labels a stream of W writes consumes (boundedness
  made visible: the count saturates well below W);
* how quickly labels are reused (first-reuse distance);
* that regularity holds throughout, with interleaved quiescent reads
  (the regime Assumption 2 covers);
* the label-space pressure at different ``k`` (the protocol needs
  ``k ≥ n + 1``; larger k trades memory for slack).

There is no paper table to compare against — the paper never runs its
algorithm — so this records the reproduction's own long-run behaviour as
a reference for future implementations.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.harness.runner import ExperimentReport
from repro.labels.alon import AlonLabelingScheme


def run_label_economy(
    writes: int = 200,
    k: int | None = None,
    f: int = 1,
    seed: int = 0,
    writers: int = 1,
    corrupted_start: bool = False,
    unbounded: bool = False,
) -> dict[str, Any]:
    """One long write stream; label statistics + final regularity.

    ``writers`` alternates the stream across that many clients (their
    identities enter the MWMR timestamps but the raw *labels* still come
    from the shared k-SBLS domain); ``corrupted_start`` scrambles every
    replica first, so the chain starts from arbitrary labels;
    ``unbounded`` swaps in integer timestamps — the contrast row whose
    label consumption grows one-per-write forever.
    """
    from repro.labels.unbounded import UnboundedLabelingScheme

    n = 5 * f + 1
    if unbounded:
        scheme: Any = UnboundedLabelingScheme()
    else:
        scheme = AlonLabelingScheme(k=k if k is not None else n + 1)
    config = SystemConfig(n=n, f=f, scheme=scheme)
    system = RegisterSystem(config, seed=seed, n_clients=max(2, writers + 1))
    if corrupted_start:
        system.corrupt_servers()

    reader = f"c{max(2, writers + 1) - 1}"
    seen: dict[Any, int] = {}
    first_reuse: int | None = None
    for i in range(writes):
        writer = f"c{i % writers}"
        ts = system.write_sync(writer, f"v{i}")
        label = ts.label  # MWMR timestamp carries the raw label
        if label in seen and first_reuse is None:
            first_reuse = i - seen[label]
        seen.setdefault(label, i)
        if i % 25 == 24:
            value = system.read_sync(reader)
            assert value == f"v{i}", (value, i)

    verdict = system.check_regularity()
    return {
        "writes": writes,
        "k": scheme.k if scheme.k is not None else "∞",
        "domain": getattr(scheme, "domain_size", "∞"),
        "distinct_labels": len(seen),
        "first_reuse_distance": first_reuse,
        "regular": verdict.ok,
    }


def run(writes: int = 200) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E13",
        claim=(
            "bounded timestamps really are bounded: long write streams "
            "recycle labels from the k²+k+1 domain and stay regular under "
            "quiescent reads (Assumption 2's regime)"
        ),
        headers=[
            "configuration",
            "k",
            "|domain|",
            "writes",
            "distinct labels used",
            "first reuse after",
            "regular",
        ],
    )
    n = 6

    def add_row(name: str, out: dict[str, Any]) -> None:
        report.rows.append(
            (
                name,
                out["k"],
                out["domain"],
                out["writes"],
                out["distinct_labels"],
                out["first_reuse_distance"]
                if out["first_reuse_distance"] is not None
                else "never",
                out["regular"],
            )
        )

    for k in (n + 1, 2 * n, 4 * n):
        add_row("solo writer", run_label_economy(writes=writes, k=k))
    add_row(
        "two alternating writers",
        run_label_economy(writes=writes, writers=2),
    )
    add_row(
        "solo writer, corrupted start",
        run_label_economy(writes=writes, corrupted_start=True),
    )
    add_row(
        "unbounded integers (contrast)",
        run_label_economy(writes=writes, unbounded=True),
    )
    report.notes.append(
        "an unbounded-timestamp protocol would consume `writes` distinct "
        "labels; the k-SBLS saturates at a fraction of its finite domain"
    )
    return report
