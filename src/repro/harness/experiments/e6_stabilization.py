"""E6 — pseudo-stabilization: convergence after transient faults.

Corruption-severity sweep: a fraction of the correct servers and clients
is scrambled mid-run (optionally together with every in-flight message),
and the run continues. Per severity the table reports:

* fraction of runs whose suffix (after the first post-fault write)
  satisfies the specification — the paper predicts 1.0 at every severity,
  because convergence needs only *one* completed write (the
  pseudo-stabilization argument of Section IV-C);
* convergence latency (global-clock time from the fault to that write's
  completion) — predicted flat in severity: one write's two round trips;
* pre-convergence read anomalies — predicted to *grow* with severity
  (more corrupted replicas ⇒ more garbage visible before the anchor
  write), which is precisely the behaviour pseudo-stabilization permits.

A writer-crash row exercises Assumption 1's boundary: when the first
post-fault write crashes midway, the system converges at the *next*
completed write instead.
"""

from __future__ import annotations

import random

from repro.core.config import SystemConfig
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.workloads.generators import read_heavy_scripts


def run(f: int = 1, seeds: int = 6, n_clients: int = 3) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E6",
        claim=(
            "pseudo-stabilization: one completed write after the fault "
            "re-establishes regularity, at any corruption severity"
        ),
        headers=[
            "severity (fraction scrambled)",
            "channels",
            "runs",
            "stabilized",
            "mean convergence latency",
            "prefix anomalies",
            "suffix aborts",
        ],
    )
    n = 5 * f + 1
    fault_time = 10.0
    for severity in (0.25, 0.5, 0.75, 1.0):
        for channels in (False, True):
            stabilized = anomalies = suffix_aborts = 0
            latencies: list[float] = []
            for seed in range(seeds):
                config = SystemConfig(n=n, f=f)
                rng = random.Random(seed * 17 + int(severity * 100))
                clients = [f"c{i}" for i in range(n_clients)]
                scripts = read_heavy_scripts(
                    clients, rng, ops_per_client=8, write_fraction=0.5
                )
                result = run_register_workload(
                    config,
                    scripts,
                    seed=seed,
                    corruption_times=[fault_time],
                    corrupt_channels=channels,
                    corruption_severity=severity,
                )
                # Recovery probe: guarantee post-fault operations exist
                # whatever the random script did before the strike.
                system = result.system
                system.write_sync("c0", f"probe.{seed}")
                for _ in range(2):
                    system.read_sync("c1")
                from repro.spec.stabilization import evaluate_stabilization

                rep = evaluate_stabilization(
                    system.history, system.checker(), last_fault_time=fault_time
                )
                assert rep is not None
                if rep.stabilized:
                    stabilized += 1
                if rep.convergence_latency is not None:
                    latencies.append(rep.convergence_latency)
                anomalies += rep.prefix_read_anomalies
                if rep.suffix_verdict is not None:
                    suffix_aborts += rep.suffix_verdict.aborted_reads
            report.rows.append(
                (
                    severity,
                    "garbage" if channels else "intact",
                    seeds,
                    stabilized,
                    round(sum(latencies) / len(latencies), 2) if latencies else 0,
                    anomalies,
                    suffix_aborts,
                )
            )
    # Assumption 1 boundary: the first post-fault writer crashes mid-write;
    # convergence must simply wait for the next completed write.
    crashed_stab = 0
    crash_latencies: list[float] = []
    for seed in range(seeds):
        out = run_writer_crash_boundary(f=f, seed=seed)
        if out["stabilized"]:
            crashed_stab += 1
        if out["latency"] is not None:
            crash_latencies.append(out["latency"])
    report.rows.append(
        (
            "1.0 + writer crash",
            "intact",
            seeds,
            crashed_stab,
            round(sum(crash_latencies) / len(crash_latencies), 2)
            if crash_latencies
            else 0,
            "-",
            0,
        )
    )
    report.notes.append(
        "the writer-crash row crashes the first post-fault writer mid-write "
        "(Assumption 1 boundary); convergence anchors on the next write"
    )
    return report


def run_writer_crash_boundary(f: int = 1, seed: int = 0) -> dict:
    """Corrupt everything, crash the first writer mid-operation, recover.

    Returns stabilization facts for the E6 writer-crash row and the unit
    tests: the crashed write must not count as the convergence anchor, and
    the next client's completed write must.
    """
    from repro.core.register import RegisterSystem
    from repro.spec.stabilization import evaluate_stabilization

    config = SystemConfig(n=5 * f + 1, f=f)
    system = RegisterSystem(config, seed=seed, n_clients=3)
    system.corrupt_servers()
    system.corrupt_clients()
    # c0 starts a write and crashes before it can finish (after one event).
    system.write("c0", "doomed")
    system.env.scheduler.call_in(0.5, system.clients["c0"].crash)
    system.env.run(until=5.0)
    # c1 completes a write; c2 reads afterwards.
    system.write_sync("c1", "recovery")
    reads = [system.read_sync("c2") for _ in range(3)]
    rep = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=0.0
    )
    return {
        "stabilized": rep.stabilized,
        "latency": rep.convergence_latency,
        "anchor": rep.anchor_write.argument if rep.anchor_write else None,
        "reads": reads,
    }
