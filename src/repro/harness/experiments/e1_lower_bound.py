"""E1 — Theorem 1: the lower-bound execution, mechanized.

The proof constructs, against any ``TM_1R`` protocol on ``n = 5f``
servers, an execution from a corrupted initial configuration in which two
sequential reads receive the *same multiset* of (value, timestamp) pairs
while regularity demands different answers. This module replays that
execution move for move (``f = 1``, five servers ``s0..s4``):

==========  =======================================================
proof name  here
==========  =======================================================
s1,s2,s3    s0,s1,s2 — correct, corrupted to ``(x0, tsx=10)``
s4          s3 — correct, corrupted to ``(v2, ts2=13)``; slow for
            every timestamp query (``GET_TS``) so no write ever
            gathers ``ts2``
s5          s4 — Byzantine, the :class:`ScriptedByzantine`
w0, w1      writes of ``v0``/``v1``; ``next()`` yields ``11``/``12``
r1          read missing s2's reply → multiset {(v1,12)², (v2,13)²}
w2          write of ``v2``; the Byzantine feeds ``12`` so ``next()``
            regenerates exactly the corrupted label ``13 = ts2``;
            s2 is slow for the store phase and keeps ``(v1,12)``
r2          read missing s3's reply → multiset {(v2,13)², (v1,12)²}
==========  =======================================================

Both reads see ``{(v1,12)×2, (v2,13)×2}``; a deterministic decision rule
answers them identically, yet regularity requires ``v1`` at r1 (where
``v2`` has not been written) and ``v2`` at r2 (where ``w2`` completed).
The experiment sweeps both canonical decision rules — each is defeated at
one of the reads — and then runs the paper's protocol at ``n = 5f + 1``
under the *same* corruption, slow-server and Byzantine pressure, where
the ``2f+1``-witness rule keeps every read regular.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.baselines.tm1r import (
    DecisionRule,
    Tm1rSystem,
    newest_qualified,
    oldest_qualified,
)
from repro.byzantine.strategies import StaleReplayByzantine
from repro.byzantine.theorem1 import ScriptedByzantine
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.harness.runner import ExperimentReport
from repro.labels.modular import ModularLabelingScheme
from repro.sim.adversary import ScriptedAdversary
from repro.sim.messages import Envelope

#: The concrete corrupted configuration of the proof (modular labels).
TSX = 10  # corrupted label shared by s0..s2
TS2 = 13  # corrupted label of s3 — regenerated later by w2's next()
TB = 5  # stale label the Byzantine feeds to w0/w1


class _PhasePolicy:
    """Message-level delay script; the experiment mutates ``phase``.

    Channels are FIFO, so a long delay on one message would hold back the
    whole channel; the proof only needs *races to be lost*, which small
    reply-side delays achieve:

    * s3's answers to the writer always arrive fifth — no write ever
      gathers its timestamp, yet its phase-2 responses still count;
    * during r1, s2's reply loses the race (the reader proceeds on four);
      during r2, s3's does — handing the two reads the complementary
      halves the proof needs;
    * during w2, the store message to s2 is parked long enough that s2
      still holds ``(v1, 12)`` when r2 reads it (the writer completes on
      the other four responses).
    """

    LOSE_RACE = 7.0  # longer than an op, shorter than the next phase gap
    PARK = 120.0  # outlives the rest of the execution

    def __init__(self) -> None:
        self.phase = "w0"

    def latency(self, env: Envelope, rng: Any) -> float:
        kind = type(env.payload).__name__
        if env.src == "s3" and env.dst == "c0":
            return 3.0  # s3's timestamp replies always lose the gather race
        if self.phase == "r1" and env.src == "s2" and env.dst == "c1":
            return self.LOSE_RACE  # r1 misses s2
        if self.phase == "r2" and env.src == "s3" and env.dst == "c1":
            return self.LOSE_RACE  # r2 misses s3
        if self.phase == "w2" and env.dst == "s2" and kind == "WriteRequest":
            return self.PARK  # s2 keeps (v1, 12) through w2 and r2
        return 1.0


def run_tm1r_execution(decision: DecisionRule) -> dict[str, Any]:
    """Replay the proof's execution against TM_1R with one decision rule."""
    policy = _PhasePolicy()
    scheme = ModularLabelingScheme(modulus=64)

    def byz_factory(pid: str, env: Any, system: Any) -> ScriptedByzantine:
        return ScriptedByzantine(
            pid,
            env,
            ts_script=[TB, TB, TS2 - 1],  # w0: 5, w1: 5, w2: 12 -> next()=13
            read_script=[("v2", TS2), ("v1", TS2 - 1)],  # r1 lie, r2 lie
        )

    system = Tm1rSystem(
        n=5,
        f=1,
        decision=decision,
        scheme=scheme,
        seed=0,
        n_clients=2,
        adversary=ScriptedAdversary(policy.latency),
        byzantine={"s4": byz_factory},
    )
    # Arbitrary initial configuration (tsx, tsx, tsx, ts2, tb).
    for sid in ("s0", "s1", "s2"):
        system.servers[sid].set_state("x0", TSX)
    system.servers["s3"].set_state("v2", TS2)

    policy.phase = "w0"
    system.write_sync("c0", "v0")
    policy.phase = "w1"
    system.write_sync("c0", "v1")
    policy.phase = "r1"
    r1 = system.read_sync("c1")
    policy.phase = "w2"
    system.write_sync("c0", "v2")
    policy.phase = "r2"
    r2 = system.read_sync("c1")

    # Judge only the operations of the proof's suffix (after the first
    # successful write w0 — Assumption 1).
    verdict = system.check_regularity()
    return {
        "r1": r1,
        "r2": r2,
        "verdict": verdict,
        "violations": [v.clause for v in verdict.violations],
    }


def run_stabilizing_counterpart(seed: int = 0) -> dict[str, Any]:
    """The same adversarial pressure against the paper's protocol, n=5f+1.

    One extra server (six total): s0..s2 corrupted alike, s3 corrupted to a
    phantom pair and kept out of timestamp gathering, s5 Byzantine playing
    the stale-replay role, one server's read replies delayed per read. The
    ``2f + 1`` witness rule leaves the corrupt+Byzantine coalition (two
    votes) short, so reads follow the three honest replicas.
    """
    policy = _PhasePolicy()  # reuses the same slow rules against s2/s3
    config = SystemConfig(n=6, f=1)
    system = RegisterSystem(
        config,
        seed=seed,
        n_clients=2,
        adversary=ScriptedAdversary(policy.latency),
        byzantine={"s5": StaleReplayByzantine.factory(stale_value="v2")},
    )
    rng = system.env.spawn_rng("e1-corruption")
    for sid in ("s0", "s1", "s2", "s3"):
        system.servers[sid].corrupt_state(rng)
    # Mirror the proof's coincidence: s3's corrupted value equals a value
    # that will be written later.
    system.servers["s3"].value = "v2"

    policy.phase = "w0"
    system.write_sync("c0", "v0")
    policy.phase = "w1"
    system.write_sync("c0", "v1")
    policy.phase = "r1"
    r1 = system.read_sync("c1")
    policy.phase = "w2"
    system.write_sync("c0", "v2")
    policy.phase = "r2"
    r2 = system.read_sync("c1")

    verdict = system.check_regularity()
    return {"r1": r1, "r2": r2, "verdict": verdict}


def run() -> ExperimentReport:
    """Regenerate the E1 table."""
    report = ExperimentReport(
        experiment="E1",
        claim=(
            "Theorem 1: no TM_1R protocol implements a regular register "
            "with n = 5f; the paper's protocol survives the same execution "
            "with n = 5f + 1"
        ),
        headers=[
            "protocol",
            "n",
            "decision rule",
            "r1",
            "r2",
            "regular",
            "defeated at",
        ],
    )
    for rule, name in (
        (newest_qualified, "newest-qualified"),
        (oldest_qualified, "oldest-qualified"),
    ):
        out = run_tm1r_execution(rule)
        defeated = ""
        if not out["verdict"].ok:
            bad_reads = {
                v.read.result
                for v in out["verdict"].violations
                if v.read is not None
            }
            defeated = (
                "r1" if out["r1"] in bad_reads and out["r1"] == "v2" else "r2"
            )
        report.rows.append(
            ("tm1r", 5, name, out["r1"], out["r2"], out["verdict"].ok, defeated)
        )
    ours = run_stabilizing_counterpart()
    report.rows.append(
        (
            "stabilizing (paper)",
            6,
            "2f+1 witnesses",
            ours["r1"],
            ours["r2"],
            ours["verdict"].ok,
            "",
        )
    )
    report.notes.append(
        "both TM_1R reads receive the identical multiset "
        "{(v1,12) x2, (v2,13) x2}; any deterministic rule fails one of them"
    )
    return report
