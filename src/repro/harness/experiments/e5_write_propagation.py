"""E5 — Lemma 2: a completed write is stored by at least 3f + 1 correct servers.

The lemma's proof enumerates four Byzantine phase behaviours:

1. answer both write phases;
2. silent in phase 1 (GET_TS), answering phase 2;
3. answering phase 1, silent in phase 2 (WRITE);
4. silent in both (simulated crash);

plus the nastier ack-without-storing strategy. For each case a solo
writer performs a series of writes; immediately after each completion a
census counts the correct servers whose *current* ``(value, ts)`` pair is
exactly the written one. The lemma predicts a minimum of ``3f + 1``
everywhere.
"""

from __future__ import annotations

from repro.byzantine.base import ByzantineServer
from repro.byzantine.strategies import (
    AckWithoutStoringByzantine,
    PhaseSilentByzantine,
    SilentByzantine,
)
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.harness.runner import ExperimentReport

CASES = [
    ("1: replies in both phases", ByzantineServer.factory()),
    (
        "2: silent in phase 1",
        PhaseSilentByzantine.factory(silent_on=frozenset({"GetTs"})),
    ),
    (
        "3: silent in phase 2",
        PhaseSilentByzantine.factory(silent_on=frozenset({"WriteRequest"})),
    ),
    ("4: simulates crash", SilentByzantine.factory()),
    ("5: ACKs without storing", AckWithoutStoringByzantine.factory()),
]


def run(f: int = 1, writes: int = 8, seeds: int = 3) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E5",
        claim="Lemma 2: every completed write is current at >= 3f + 1 correct servers",
        headers=[
            "byzantine phase case",
            "writes",
            "min census",
            "mean census",
            "required (3f+1)",
            "holds",
        ],
    )
    n = 5 * f + 1
    required = 3 * f + 1
    for label, factory in CASES:
        censuses: list[int] = []
        for seed in range(seeds):
            config = SystemConfig(n=n, f=f)
            system = RegisterSystem(
                config,
                seed=seed,
                n_clients=1,
                byzantine={f"s{n - i - 1}": factory for i in range(f)},
            )
            for i in range(writes):
                value = f"v{seed}.{i}"
                ts = system.write_sync("c0", value)
                censuses.append(system.census(value, ts))
        min_census = min(censuses)
        mean_census = sum(censuses) / len(censuses)
        report.rows.append(
            (
                label,
                len(censuses),
                min_census,
                round(mean_census, 2),
                required,
                min_census >= required,
            )
        )
    return report
