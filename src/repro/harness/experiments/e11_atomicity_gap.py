"""E11 (extension) — the register is regular but NOT atomic, mechanized.

The paper implements a *regular* register and leaves atomicity open (its
reads are one-phase; classical atomicity needs read write-back or a
second phase). This experiment pins the separation down with a concrete
execution of the paper's protocol that is **MWMR regular but not
linearizable** — the canonical new/old inversion:

1. ``w0('old')`` completes everywhere; the Byzantine replica then freezes
   (keeps ACKing writes but never stores again, presenting ``old``).
2. ``w1('new')`` starts; its store messages to two correct replicas are
   parked in the network, so exactly three correct replicas adopt ``new``
   and the write cannot finish (it waits for its ``n - f``-th response).
3. ``r1`` samples the three adopters + two stragglers: ``new`` has
   ``2f+1 = 3`` witnesses and dominates — r1 returns **new**.
4. ``r2`` (strictly after r1) loses one adopter's reply to the race and
   samples two adopters + two stragglers + the frozen Byzantine replica:
   now ``old`` has the three witnesses and ``new`` only two — r2 returns
   **old**.
5. The parked messages arrive; ``w1`` completes; later reads see ``new``.

Both reads are concurrent with ``w1``, so regularity permits either value
— but no linearization can order r1 before r2 with these return values.
The history passes the :class:`RegularityChecker` and fails
:func:`check_linearizable`, separating the two specifications on a real
protocol run rather than a hand-written history.

The same scenario against the ABD baseline (whose reads write back)
returns consistent values — write-back is exactly the atomicity price the
paper's one-phase reads avoid (and why its Byzantine readers stay
harmless; see Concluding Remarks).
"""

from __future__ import annotations

from typing import Any

from repro.baselines.abd import AbdSystem
from repro.byzantine.base import ByzantineServer
from repro.core.config import SystemConfig
from repro.core.messages import WriteAck
from repro.core.register import RegisterSystem
from repro.harness.runner import ExperimentReport
from repro.sim.adversary import ScriptedAdversary
from repro.spec.atomicity import check_linearizable


class _FreezeControl:
    """Shared switch for the lazily-freezing Byzantine replica."""

    def __init__(self) -> None:
        self.frozen = False

    def factory(self):
        control = self

        class Lazy(ByzantineServer):
            strategy_name = "lazy-freeze"

            def on_write(self, src, msg):
                if control.frozen:
                    self.send(src, WriteAck(ts=msg.ts))
                    return
                super().on_write(src, msg)

        return Lazy.factory()


def run_inversion_scenario(
    f: int = 1, seed: int = 0, write_back: bool = False
) -> dict[str, Any]:
    """Drive the new/old inversion against the paper's protocol.

    With ``write_back=True`` the clients use the
    :class:`~repro.core.atomic.AtomicRegisterClient` variant — same
    adversarial schedule, but r1's write-back installs ``new`` at the
    straggler replicas before r2 samples them, so the inversion dies.
    """
    n = 5 * f + 1
    phase = {"attack": False, "drop_s0_reply": False}

    def policy(env, rng):
        kind = type(env.payload).__name__
        if phase["attack"] and kind == "WriteRequest" and env.dst in ("s3", "s4"):
            return 200.0  # park w1's store to two correct replicas
        if (
            phase["drop_s0_reply"]
            and kind == "ReadReply"
            and env.src == "s0"
            and env.dst == "c1"
        ):
            return 200.0  # r2 loses one adopter's reply to the race
        return 1.0

    freeze = _FreezeControl()
    client_kwargs: dict[str, Any] = {}
    if write_back:
        from repro.core.atomic import AtomicRegisterClient

        client_kwargs["client_cls"] = AtomicRegisterClient
    system = RegisterSystem(
        SystemConfig(n=n, f=f),
        seed=seed,
        n_clients=2,
        adversary=ScriptedAdversary(policy),
        byzantine={f"s{n - 1}": freeze.factory()},
        **client_kwargs,
    )

    system.write_sync("c0", "old")
    freeze.frozen = True
    phase["attack"] = True
    w1 = system.write("c0", "new")  # cannot finish while stores are parked
    system.env.run(until=system.env.now + 10.0)
    r1 = system.read_sync("c1")

    phase["drop_s0_reply"] = True
    r2 = system.read_sync("c1")
    phase["drop_s0_reply"] = False

    # Release the parked messages; w1 completes; the register settles.
    system.env.run_to_completion(lambda: w1.done)
    system.env.tick()
    r3 = system.read_sync("c1")

    regular = system.check_regularity()
    linearizable = check_linearizable(system.history, initial_value=None)
    return {
        "r1": r1,
        "r2": r2,
        "r3": r3,
        "regular": regular.ok,
        "linearizable": linearizable,
        "violations": regular.violations,
    }


def run_abd_counterpart(seed: int = 0) -> dict[str, Any]:
    """The same read pattern against ABD (reads write back): no inversion.

    ABD's second read phase re-installs what the first read chose, so two
    sequential reads concurrent with one write can never observe
    new-then-old — the write-back is what buys atomicity.
    """
    phase = {"attack": False}

    def policy(env, rng):
        kind = type(env.payload).__name__
        if phase["attack"] and kind == "WriteRequest" and env.src == "c0" and env.dst == "s2":
            return 200.0  # park the write's store to one replica
        return 1.0

    system = AbdSystem(
        n=3, f=1, seed=seed, n_clients=2, adversary=ScriptedAdversary(policy)
    )
    system.write_sync("c0", "old")
    phase["attack"] = True
    w1 = system.write("c0", "new")
    system.env.run(until=system.env.now + 8.0)
    r1 = system.read_sync("c1")
    r2 = system.read_sync("c1")
    system.env.run_to_completion(lambda: w1.done)
    system.env.tick()
    return {
        "r1": r1,
        "r2": r2,
        "no_inversion": not (r1 == "new" and r2 == "old"),
        "linearizable": check_linearizable(system.history, initial_value=None),
    }


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment="E11",
        claim=(
            "the paper's register is regular but not atomic: a real run "
            "exhibits the new/old inversion; ABD's write-back reads do not"
        ),
        headers=["protocol", "r1", "r2", "final read", "regular", "linearizable"],
    )
    ours = run_inversion_scenario()
    report.rows.append(
        (
            "stabilizing (paper)",
            ours["r1"],
            ours["r2"],
            ours["r3"],
            ours["regular"],
            ours["linearizable"],
        )
    )
    atomic = run_inversion_scenario(write_back=True)
    report.rows.append(
        (
            "stabilizing + write-back reads",
            atomic["r1"],
            atomic["r2"],
            atomic["r3"],
            atomic["regular"],
            atomic["linearizable"],
        )
    )
    abd = run_abd_counterpart()
    report.rows.append(
        (
            "abd (write-back reads)",
            abd["r1"],
            abd["r2"],
            "-",
            True,
            abd["linearizable"],
        )
    )
    report.notes.append(
        "both reads run concurrently with the in-flight write, so "
        "new-then-old is regular-legal; no linearization admits it"
    )
    return report
