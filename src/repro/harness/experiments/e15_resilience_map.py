"""E15 (extension) — the resilience boundary under mobility and churn.

The IPPS-2015 proofs assume a *fixed* set of ``f`` Byzantine servers and
a fixed membership. Two descendants of the paper drop exactly those
assumptions: the mobile-Byzantine register (arXiv:1609.02694, same
authors) lets the Byzantine role relocate between servers, and the
continuous-churn register (arXiv:1910.06716) lets servers leave and
join mid-run. E15 maps where the unmodified protocol keeps stabilizing
as those assumptions bend, cell by cell over a ``(n, f, regime, rate)``
grid run through the pooled chaos judge:

* ``static`` — the baseline: one pinned Byzantine strategy, rate 0.
* ``mobility`` — a :class:`~repro.chaos.nemesis.MobileByzantineNemesis`
  relocating the role ``rate`` times; every departure scrambles the
  abandoned server (a fault instant), so stabilization is judged on the
  suffix after the *last* relocation. At rate 0 the carrier possesses
  the static slot at deployment time and never moves, which reproduces
  the static cell's verdicts **bit-identically** (same pid ⇒ same
  derived RNG stream) — the map's self-calibration anchor.
* ``churn`` — ``rate`` sequential leave/rejoin windows with the
  state-transfer handshake, paired with *responsive* Byzantine
  strategies only (see
  :data:`~repro.byzantine.strategies.RESPONSIVE_STRATEGIES`).
* ``churn-hostile`` — the same windows paired with a **silent**
  Byzantine server. Arithmetic, not protocol, fails here: a departed
  server plus a silent one leaves ``n - f - 1`` responders for an
  ``n - f`` quorum, so an operation invoked inside the window wedges
  forever (the protocol never retransmits). The judge reports it as a
  ``stuck`` witness with forensics — graceful degradation, never a
  hang — and the map shrinks one such witness to a minimal reproducer.

Expectations per cell: ``clean`` at ``n >= 5f + 1`` outside the hostile
regime (each relocation/join is a transient fault the protocol must
absorb), ``fail`` for hostile churn, and ``boundary`` below the bound
(witnesses permitted, not guaranteed — that frontier is the point of
the map). Everything is seeded and consumed in plan order, so the map
is identical serial or pooled (``jobs``).
"""

from __future__ import annotations

import functools
from typing import Any, Optional

from repro.byzantine.strategies import RESPONSIVE_STRATEGIES
from repro.chaos.engine import ChaosOutcome, _plan_outcome
from repro.chaos.nemesis import ChurnNemesis, MobileByzantineNemesis, Nemesis
from repro.chaos.plan import ChaosPlan
from repro.chaos.shrink import shrink_plan
from repro.harness.runner import ExperimentReport
from repro.sim.environment import derive_seed

MAP_FORMAT = "repro-resilience-map/1"

#: (n, f, regime, rate) cells — the bounded grid CI runs.
SMALL_GRID: tuple[tuple[int, int, str, int], ...] = (
    (6, 1, "static", 0),
    (6, 1, "mobility", 0),
    (6, 1, "mobility", 2),
    (5, 1, "mobility", 2),
    (6, 1, "churn", 1),
    (6, 1, "churn-hostile", 1),
)

#: the paper-scale grid (a superset of the small one).
FULL_GRID: tuple[tuple[int, int, str, int], ...] = SMALL_GRID + (
    (5, 1, "static", 0),
    (6, 1, "mobility", 4),
    (8, 1, "mobility", 2),
    (5, 1, "churn", 1),
    (6, 1, "churn", 2),
    (8, 1, "churn", 2),
)


def expected_outcome(n: int, f: int, regime: str, rate: int) -> str:
    """``"clean"`` | ``"fail"`` | ``"boundary"`` for one cell."""
    if regime == "churn-hostile" and rate > 0:
        return "fail"
    if n >= 5 * f + 1:
        return "clean"
    return "boundary"


def _churn_windows(n: int, f: int, rate: int) -> tuple[Nemesis, ...]:
    # Disjoint absence windows early enough to overlap the workload,
    # round-robin over the correct servers (s{n-1}.. host the static
    # Byzantine strategies).
    return tuple(
        ChurnNemesis(
            time=6.0 + 14.0 * i,
            target=f"s{i % (n - f)}",
            rejoin_at=14.0 + 14.0 * i,
        )
        for i in range(rate)
    )


def cell_plans(
    n: int, f: int, regime: str, rate: int, seed: int, trials: int
) -> list[ChaosPlan]:
    """The deterministic plans for one cell.

    Trial seeds depend only on ``(n, f, trial)`` — *not* on the regime —
    so the static and mobility-rate-0 cells run byte-identical workloads
    and their verdicts are directly comparable.
    """
    pool = list(RESPONSIVE_STRATEGIES)
    plans = []
    for t in range(trials):
        strategy = pool[t % len(pool)]
        nemeses: tuple[Nemesis, ...] = ()
        if regime == "mobility":
            nemeses = (
                MobileByzantineNemesis(
                    strategy=strategy, start=6.0, period=7.0, moves=rate
                ),
            )
            strategy = ""
        elif regime == "churn":
            nemeses = _churn_windows(n, f, rate)
        elif regime == "churn-hostile":
            nemeses = _churn_windows(n, f, rate)
            strategy = "silent"
        elif regime != "static":
            raise ValueError(f"unknown regime: {regime!r}")
        horizon = 80.0 + max((nem.end_time() for nem in nemeses), default=0.0)
        plans.append(
            ChaosPlan(
                seed=derive_seed(seed, f"e15:{n}:{f}:{t}"),
                n=n,
                f=f,
                n_clients=2,
                ops_per_client=5,
                workload="mixed",
                strategy=strategy,
                latency=(1.0, 1.0),
                corrupt_at_start=False,
                nemeses=nemeses,
                horizon=horizon,
            )
        )
    return plans


def _judge_cell(
    spec: tuple[int, int, str, int], outcomes: list[ChaosOutcome]
) -> dict[str, Any]:
    n, f, regime, rate = spec
    witnesses = [o for o in outcomes if not o.ok]
    expected = expected_outcome(n, f, regime, rate)
    clean = not witnesses
    matches = (
        expected == "boundary"
        or (expected == "clean") == clean
    )
    return {
        "n": n,
        "f": f,
        "regime": regime,
        "rate": rate,
        "bound": "n>=5f+1" if n >= 5 * f + 1 else "n<5f+1",
        "trials": len(outcomes),
        "witnesses": len(witnesses),
        "kinds": sorted({o.kind for o in witnesses}),
        "outcomes": [o.kind for o in outcomes],
        "clean": clean,
        "expected": expected,
        "matches_expectation": matches,
    }


def resilience_map(
    seed: int = 0,
    trials_per_cell: int = 6,
    small: bool = True,
    jobs: int = 1,
    shrink_budget: int = 40,
) -> dict[str, Any]:
    """Run the grid; return the JSON-able resilience map.

    Plans are built serially up front and outcomes consumed in plan
    order, so the map is identical for every ``jobs`` value. When a
    ``fail``-expected cell produces witnesses, the first one is shrunk
    (``shrink_budget`` evaluations) and archived in the map.
    """
    from repro.harness.parallel import parallel_imap

    grid = SMALL_GRID if small else FULL_GRID
    flat: list[ChaosPlan] = []
    spans: list[tuple[tuple[int, int, str, int], int]] = []
    for spec in grid:
        plans = cell_plans(*spec, seed=seed, trials=trials_per_cell)
        spans.append((spec, len(plans)))
        flat.extend(plans)

    outcomes = list(
        parallel_imap(
            functools.partial(_plan_outcome, trace="off"), flat, jobs=jobs
        )
    )
    cells: list[dict[str, Any]] = []
    cell_witnesses: dict[int, list[ChaosOutcome]] = {}
    at = 0
    for i, (spec, count) in enumerate(spans):
        chunk = outcomes[at : at + count]
        at += count
        cells.append(_judge_cell(spec, chunk))
        cell_witnesses[i] = [o for o in chunk if not o.ok]

    # The rate-0 calibration: a mobility cell at rate 0 must reproduce
    # the static cell's per-trial verdicts exactly (same seeds, same
    # derived RNG streams — see the module docstring).
    rate0_matches: Optional[bool] = None
    by_key = {
        (c["n"], c["f"], c["regime"], c["rate"]): c for c in cells
    }
    for (n, f, regime, rate), cell in by_key.items():
        if regime == "mobility" and rate == 0:
            static = by_key.get((n, f, "static", 0))
            if static is not None:
                same = static["outcomes"] == cell["outcomes"]
                rate0_matches = same if rate0_matches is None else (
                    rate0_matches and same
                )

    shrunk: Optional[dict[str, Any]] = None
    for i, cell in enumerate(cells):
        if cell["expected"] == "fail" and cell_witnesses[i]:
            witness = cell_witnesses[i][0]
            # Pin the failure's character: the reproducer must keep a
            # churn window, else the shrinker slides into the unrelated
            # tiny-deployment stuck artifact (same kind, different bug).
            result = shrink_plan(
                witness.plan,
                budget=shrink_budget,
                trace="off",
                keep=lambda p: any(
                    isinstance(nem, ChurnNemesis) for nem in p.nemeses
                ),
            )
            shrunk = {
                "cell": {k: cell[k] for k in ("n", "f", "regime", "rate")},
                "kind": result.kind,
                "detail": result.detail,
                "original_size": result.original_size,
                "shrunk_size": result.shrunk_size,
                "plan": _plan_dict(result.shrunk),
            }
            break

    return {
        "format": MAP_FORMAT,
        "seed": seed,
        "trials_per_cell": trials_per_cell,
        "grid": "small" if small else "full",
        "bound": "n >= 5f + 1",
        "cells": cells,
        "rate0_matches_static": rate0_matches,
        "shrunk_witness": shrunk,
    }


def _plan_dict(plan: ChaosPlan) -> dict[str, Any]:
    from repro.chaos.plan import plan_to_dict

    return plan_to_dict(plan)


def render_map(map_data: dict[str, Any]) -> ExperimentReport:
    """Tabulate a resilience map as an :class:`ExperimentReport`."""
    report = ExperimentReport(
        experiment="E15",
        claim=(
            "the resilience boundary: where stabilization survives mobile "
            "Byzantine agents and continuous churn, and where it "
            "measurably stops"
        ),
        headers=[
            "n",
            "f",
            "regime",
            "rate",
            "vs bound",
            "expected",
            "witnesses",
            "kinds",
            "as expected",
        ],
    )
    for cell in map_data["cells"]:
        report.rows.append(
            (
                cell["n"],
                cell["f"],
                cell["regime"],
                cell["rate"],
                cell["bound"],
                cell["expected"],
                f"{cell['witnesses']}/{cell['trials']}",
                ",".join(cell["kinds"]) or "-",
                cell["matches_expectation"],
            )
        )
    if map_data.get("rate0_matches_static") is not None:
        report.notes.append(
            "mobility rate 0 reproduces the static-Byzantine verdicts "
            f"bit-identically: {map_data['rate0_matches_static']}"
        )
    shrunk = map_data.get("shrunk_witness")
    if shrunk:
        report.notes.append(
            f"shrunk witness ({shrunk['kind']}, "
            f"{shrunk['cell']['regime']} n={shrunk['cell']['n']}): size "
            f"{shrunk['original_size']} -> {shrunk['shrunk_size']}"
        )
    report.notes.append(
        "'fail' cells starve the n-f quorum by arithmetic (a departed "
        "server plus a silent Byzantine one); operations wedged inside "
        "the window surface as 'stuck' witnesses with forensics"
    )
    return report


def run(
    seed: int = 0,
    trials_per_cell: int = 6,
    small: bool = True,
    jobs: int = 1,
) -> ExperimentReport:
    data = resilience_map(
        seed=seed, trials_per_cell=trials_per_cell, small=small, jobs=jobs
    )
    return render_map(data)
