"""Experiment modules E1-E10 (see DESIGN.md §4 and EXPERIMENTS.md).

Each module exposes ``run(...)`` returning an
:class:`~repro.harness.runner.ExperimentReport`. Default parameters are
the "paper-scale" settings used in EXPERIMENTS.md; benchmarks call the
same functions (sometimes with reduced sizes) so every recorded table is
regenerable with one call.
"""

from repro.harness.experiments import (  # noqa: F401
    e1_lower_bound,
    e2_correctness,
    e3_n_sweep,
    e4_termination,
    e5_write_propagation,
    e6_stabilization,
    e7_labels,
    e8_comparison,
    e9_ablations,
    e10_scalability,
    e11_atomicity_gap,
    e12_partitions,
    e13_label_recycling,
    e15_resilience_map,
)

ALL_EXPERIMENTS = {
    "E1": e1_lower_bound,
    "E2": e2_correctness,
    "E3": e3_n_sweep,
    "E4": e4_termination,
    "E5": e5_write_propagation,
    "E6": e6_stabilization,
    "E7": e7_labels,
    "E8": e8_comparison,
    "E9": e9_ablations,
    "E10": e10_scalability,
    "E11": e11_atomicity_gap,
    "E12": e12_partitions,
    "E13": e13_label_recycling,
    "E15": e15_resilience_map,
}
