"""E3 — tightness: behaviour across the resilience boundary n = 5f + 1.

The lower bound (Theorem 1) and the matching protocol (Theorem 2) pin the
boundary at ``n = 5f + 1``. This sweep deploys the paper's protocol —
resilience check disabled — at ``n`` from ``3f + 1`` to ``6f + 1`` under
the hostile regime (arbitrary initial corruption + stale-replay Byzantine
servers) and reports, per ``n``:

* fraction of runs that pseudo-stabilize,
* suffix read-abort rate (below the bound, the corrupt+Byzantine
  coalition can permanently starve the ``2f + 1`` witness rule),
* suffix violations,
* fraction of runs with operations stuck forever.

Expected shape: clean at ``n >= 5f + 1``; below it, aborts/stuck reads
grow as ``n`` shrinks, collapsing entirely around ``3f + 1``.
"""

from __future__ import annotations

import random

from repro.byzantine.strategies import StaleReplayByzantine
from repro.core.config import SystemConfig
from repro.harness.parallel import parallel_map
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.sim.adversary import UniformLatencyAdversary
from repro.workloads.generators import read_heavy_scripts


def _one_trial(task: tuple[int, int, int, int]) -> tuple[int, int, int, int, int]:
    """One (n, seed) cell: picklable counters for the parallel sweep.

    Returns ``(stabilized, aborts, reads, violations, stuck)`` as 0/1 or
    totals for this single run.
    """
    n, f, seed, n_clients = task
    config = SystemConfig(n=n, f=f, enforce_resilience=False)
    rng = random.Random(seed * 37 + n)
    clients = [f"c{i}" for i in range(n_clients)]
    scripts = read_heavy_scripts(
        clients, rng, ops_per_client=5, write_fraction=0.4
    )
    byz = {f"s{n - i - 1}": StaleReplayByzantine.factory() for i in range(f)}
    result = run_register_workload(
        config,
        scripts,
        seed=seed,
        byzantine=byz,
        corrupt_at_start=True,
        # Jittered delays randomize reply arrival order, so the
        # Byzantine/corrupt coalition lands inside read quorums —
        # under deterministic unit delays broadcast order would
        # always push the adversary's replies past the quorum cut.
        adversary=UniformLatencyAdversary(0.5, 2.0),
    )
    rep = result.stabilization
    assert rep is not None
    stabilized = int(rep.stabilized)
    aborts = reads = violations = 0
    if rep.suffix_verdict is not None:
        reads = rep.suffix_verdict.checked_reads
        aborts = rep.suffix_verdict.aborted_reads
        violations = sum(
            1
            for v in rep.suffix_verdict.violations
            if v.clause != "termination"
        )
    stuck = int(bool(result.metrics.pending_ops))
    return stabilized, aborts, reads, violations, stuck


def run(
    f: int = 1, seeds: int = 8, n_clients: int = 3, jobs: int = 1
) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E3",
        claim="tightness of n = 5f + 1 under corruption + Byzantine pressure",
        headers=[
            "n",
            "n vs 5f+1",
            "runs",
            "stabilized",
            "suffix aborts",
            "suffix reads",
            "violations",
            "stuck runs",
        ],
    )
    ns = list(range(3 * f + 1, 6 * f + 2))
    tasks = [(n, f, seed, n_clients) for n in ns for seed in range(seeds)]
    outcomes = parallel_map(_one_trial, tasks, jobs=jobs)
    for i, n in enumerate(ns):
        cell = outcomes[i * seeds : (i + 1) * seeds]
        stabilized, aborts, reads, violations, stuck = (
            sum(col) for col in zip(*cell)
        )
        rel = "=" if n == 5 * f + 1 else ("<" if n < 5 * f + 1 else ">")
        report.rows.append(
            (n, rel, seeds, stabilized, aborts, reads, violations, stuck)
        )
    return report
