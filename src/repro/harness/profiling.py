"""Profiling helpers (the optimization-guide workflow: measure first).

``profile_callable`` wraps :mod:`cProfile` and returns the top cumulative
entries as structured rows; the CLI exposes it as
``python -m repro profile E2`` so a contributor can see where an
experiment's time goes before touching anything.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Any, Callable


def wall_clock() -> float:
    """The process wall clock, in seconds.

    This module is the *only* place allowed to read host time (lint rule
    DET001): everything on the simulation path must use simulated time, or
    schedules stop being replayable. Human-facing timing output (the CLI's
    "regenerated in N s" lines) routes through here.
    """
    return time.time()


def monotonic_clock() -> float:
    """A monotonic host clock, in seconds (arbitrary epoch).

    The live runtime (:mod:`repro.net`) timestamps history events with
    this: operation precedence needs a clock that never steps backwards,
    which :func:`wall_clock` (NTP-adjusted) does not guarantee. Same
    DET001 story as above — host time is read here and nowhere else.
    """
    return time.monotonic()


@dataclass
class ProfileRow:
    """One pstats line, structured."""

    ncalls: str
    tottime: float
    cumtime: float
    location: str


@dataclass
class ProfileResult:
    """Outcome of a profiled call."""

    value: Any
    total_time: float
    rows: list[ProfileRow]

    def table(self, limit: int = 15) -> str:
        lines = [
            f"total {self.total_time:.3f}s — top {min(limit, len(self.rows))} "
            f"by cumulative time",
            f"{'ncalls':>10s} {'tottime':>9s} {'cumtime':>9s}  location",
        ]
        for row in self.rows[:limit]:
            lines.append(
                f"{row.ncalls:>10s} {row.tottime:9.3f} {row.cumtime:9.3f}  "
                f"{row.location}"
            )
        return "\n".join(lines)


def _run_profiled(fn: Callable[[], Any]) -> tuple[cProfile.Profile, Any]:
    """Execute ``fn`` under a fresh profiler; return (profiler, value)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        value = fn()
    finally:
        profiler.disable()
    return profiler, value


def _build_result(
    profiler: cProfile.Profile, value: Any, top: int
) -> ProfileResult:
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)

    rows: list[ProfileRow] = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, lineno, name = func
        location = f"{filename.rsplit('/', 1)[-1]}:{lineno}({name})"
        ncalls = str(nc) if cc == nc else f"{nc}/{cc}"
        rows.append(
            ProfileRow(
                ncalls=ncalls,
                tottime=tottime,
                cumtime=cumtime,
                location=location,
            )
        )
    rows.sort(key=lambda r: r.cumtime, reverse=True)
    total = stats.total_tt
    return ProfileResult(value=value, total_time=total, rows=rows[:top])


def profile_callable(
    fn: Callable[[], Any], top: int = 30
) -> ProfileResult:
    """Run ``fn`` under cProfile; return its result plus the hot spots."""
    profiler, value = _run_profiled(fn)
    return _build_result(profiler, value, top)


def profile_to_file(
    fn: Callable[[], Any], path: str, top: int = 30
) -> ProfileResult:
    """Profile ``fn`` and dump the raw :mod:`pstats` data to ``path``.

    The dump is the binary format ``pstats.Stats(path)`` reloads, which is
    what flamegraph tooling (``snakeviz``, ``flameprof``, ``gprof2dot``)
    consumes. Also returns the same structured :class:`ProfileResult` as
    :func:`profile_callable`, so the CLI can both save and print.
    Exposed as ``python -m repro profile <EXP> --out prof.pstats``.
    """
    profiler, value = _run_profiled(fn)
    profiler.dump_stats(path)
    return _build_result(profiler, value, top)
