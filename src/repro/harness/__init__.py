"""Experiment harness.

Machinery shared by all experiments — per-run result bundles
(:mod:`repro.harness.runner`), latency/abort/message metrics
(:mod:`repro.harness.metrics`) and ASCII table rendering
(:mod:`repro.harness.tables`) — plus one module per experiment under
:mod:`repro.harness.experiments` (see DESIGN.md §4 for the index E1-E10).

Each experiment module exposes ``run(...)`` returning an
:class:`~repro.harness.runner.ExperimentReport` whose ``table()`` prints
the rows recorded in EXPERIMENTS.md; the benchmark suite regenerates every
one of them.
"""

from repro.harness.runner import RunResult, ExperimentReport, run_register_workload
from repro.harness.metrics import LatencyStats, history_metrics
from repro.harness.parallel import parallel_imap, parallel_map, resolve_jobs
from repro.harness.tables import render_table

__all__ = [
    "RunResult",
    "ExperimentReport",
    "run_register_workload",
    "LatencyStats",
    "history_metrics",
    "parallel_imap",
    "parallel_map",
    "resolve_jobs",
    "render_table",
]
