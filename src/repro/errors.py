"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator / protocols with one handler
while still being able to discriminate precise failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class ConfigurationError(ReproError):
    """A system configuration violates a structural requirement.

    Raised, e.g., when a protocol demanding ``n >= 5f + 1`` servers is
    instantiated with fewer, or when a labeling scheme is built with an
    inconsistent domain size.
    """


class SimulationError(ReproError):
    """The simulation kernel reached an inconsistent internal state."""


class DeadlockError(SimulationError):
    """The event queue drained while operations were still pending.

    In an asynchronous-system simulation there are no timeouts; if the queue
    empties while a client operation is still blocked in a ``wait until``,
    the run cannot make further progress and this error is raised (unless the
    caller opted into partial runs).
    """


class LabelSpaceExhaustedError(ReproError):
    """A bounded labeling scheme could not produce a fresh label.

    For a correctly-sized k-stabilizing bounded labeling system this is
    impossible for input sets of size at most ``k``; seeing it signals either
    a misconfiguration (``k`` too small for the quorum sizes in play) or a
    deliberately corrupted input set larger than ``k``.
    """


class ProtocolViolationError(ReproError):
    """A *correct* process observed something that must never happen.

    Correct processes are defensive against garbage produced by Byzantine
    peers or transient corruption, so this error is reserved for genuine
    local invariant violations (i.e. bugs), not for remote misbehaviour.
    """


class HistoryError(ReproError):
    """An operation history is malformed (e.g. response without invocation)."""
