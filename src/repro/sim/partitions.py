"""Network partitions as an asynchrony adversary.

The paper's model is fully asynchronous with reliable channels, so a
partition is not message *loss* — it is unbounded-but-finite *delay*:
messages crossing the cut are held until the partition heals. That makes
partitions expressible as an :class:`~repro.sim.adversary.Adversary`:
cross-cut messages sent during a partition window are delivered shortly
after the window closes (FIFO per channel is preserved by the channel
layer as usual).

Used by experiment E12 to measure availability: operations confined to a
big-enough side (``n - f`` servers reachable) proceed; operations needing
the far side stall exactly until the heal, then complete — nothing is
ever lost and regularity holds throughout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.adversary import Adversary, FixedLatencyAdversary
from repro.sim.messages import Envelope


@dataclass
class PartitionWindow:
    """One partition episode.

    Attributes:
        start / end: simulation-time window of the cut.
        island: process ids on the isolated side. A message crosses the
            cut iff exactly one endpoint is in the island.
    """

    start: float
    end: float
    island: frozenset[str]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"partition window must have end > start: {self.start}..{self.end}"
            )
        self.island = frozenset(self.island)

    def crosses(self, env: Envelope) -> bool:
        return (env.src in self.island) != (env.dst in self.island)


class PartitioningAdversary(Adversary):
    """Delays cross-cut messages until the partition heals.

    Args:
        windows: partition episodes (may overlap or repeat).
        base: latency policy applied to every message otherwise (and added
            on top of the heal time for deferred messages).
        clock: zero-argument callable returning the current simulation
            time (wire the scheduler's ``now`` in); required because
            latency decisions depend on *when* the message is sent.
    """

    def __init__(
        self,
        windows: Iterable[PartitionWindow],
        clock,
        base: Optional[Adversary] = None,
    ) -> None:
        self.windows = list(windows)
        self.clock = clock
        self.base = base or FixedLatencyAdversary(1.0)
        self.deferred = 0  # messages held back by a cut (observability)

    def latency(self, env: Envelope, rng: random.Random) -> float:
        now = self.clock()
        base = self.base.latency(env, rng)
        for window in self.windows:
            if window.start <= now < window.end and window.crosses(env):
                self.deferred += 1
                return (window.end - now) + base
        return base

    def describe(self) -> str:
        spans = ", ".join(
            f"[{w.start}..{w.end}]x{len(w.island)}" for w in self.windows
        )
        return f"Partitioning({spans}) over {self.base.describe()}"
