"""The network: routing, channel management, in-flight bookkeeping.

The network connects registered processes with one directed channel per
(src, dst) pair, asks the adversary for a latency, asks the channel policy
for delivery times, and schedules deliveries. It keeps a registry of
in-flight envelopes so the transient-fault injector can corrupt channel
contents — a failure mode the paper explicitly includes ("the content of
the communication channels [may be] initially corrupted in an arbitrary
manner").
"""

from __future__ import annotations

import random
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.adversary import Adversary, FixedLatencyAdversary
from repro.sim.channels import Channel, FifoChannel
from repro.sim.messages import Envelope
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import MessageStats, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


class Network:
    """Message router over per-pair channels.

    Args:
        scheduler: the simulation scheduler.
        adversary: latency policy (defaults to unit delays).
        rng: source of randomness for channels/adversary (deterministic per
            run; owned by the environment).
        channel_factory: constructs the policy object for each new (src,
            dst) pair; swap in :class:`FairLossyChannel` to run protocols
            over lossy links.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        adversary: Optional[Adversary] = None,
        rng: Optional[random.Random] = None,
        channel_factory: Callable[[], Channel] = FifoChannel,
    ) -> None:
        self.scheduler = scheduler
        self.adversary = adversary or FixedLatencyAdversary(1.0)
        self.rng = rng or random.Random(0)
        self.channel_factory = channel_factory
        self.processes: dict[str, "Process"] = {}
        self.channels: dict[tuple[str, str], Channel] = {}
        self.in_flight: dict[int, Envelope] = {}
        self._flight_seq = 0
        self.stats = MessageStats()
        self.stats_enabled = True
        self.trace = Trace()

    # ------------------------------------------------------------------
    # observability knobs
    # ------------------------------------------------------------------
    def set_trace_level(self, level: str) -> None:
        """Set the observability level: ``off`` | ``stats`` | ``full``.

        ``stats`` (the default) keeps the per-type/per-process counters but
        no event records; ``full`` additionally records every network event
        in :attr:`trace`; ``off`` silences both for maximum-throughput
        sweeps (drop/corruption counts are always kept — they are verdict
        inputs, not observability).
        """
        if level not in ("off", "stats", "full"):
            raise SimulationError(f"unknown trace level: {level!r}")
        self.stats_enabled = level != "off"
        self.trace.enabled = level == "full"

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register(self, process: "Process") -> None:
        """Attach a process; its pid must be unique."""
        if process.pid in self.processes:
            raise SimulationError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process

    def swap(self, pid: str, replacement: Any) -> "Process":
        """Replace the process registered at ``pid``; returns the old one.

        Membership machinery (mobile-Byzantine possession and its
        departure) substitutes one process object for another *in
        place*: registry insertion order — a deterministic surface every
        dict iteration over :attr:`processes` relies on — is preserved,
        and messages already in flight to ``pid`` are delivered to the
        replacement, because the channel belongs to the identity, not to
        the object.

        ``replacement`` is either an already-constructed process whose
        pid is ``pid``, or a zero-argument factory whose product
        registers itself during construction (:class:`Process`
        auto-registers) — the factory form exists because constructing
        the replacement first would trip the duplicate-pid check.
        """
        old = self.processes.get(pid)
        if old is None:
            raise SimulationError(f"cannot swap unknown process {pid!r}")
        if hasattr(replacement, "pid"):
            if replacement.pid != pid:
                raise SimulationError(
                    f"swap replacement has pid {replacement.pid!r}, "
                    f"expected {pid!r}"
                )
            self.processes[pid] = replacement
            return old
        order = list(self.processes)
        del self.processes[pid]
        product = replacement()
        if self.processes.get(pid) is not product:
            raise SimulationError(
                f"swap factory for {pid!r} produced a process that did "
                f"not register itself as {pid!r}"
            )
        self.processes = {p: self.processes[p] for p in order}
        return old

    def channel(self, src: str, dst: str) -> Channel:
        """The (lazily created) channel policy for the directed pair."""
        key = (src, dst)
        ch = self.channels.get(key)
        if ch is None:
            ch = self.channel_factory()
            self.channels[key] = ch
        return ch

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any) -> None:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Messages to unknown destinations are dropped (and counted): after
        transient corruption a server's bookkeeping may name readers that do
        not exist, and a correct server acting on that state must not crash
        the run. Crashed destinations silently absorb messages.
        """
        now = self.scheduler.now
        trace = self.trace
        if dst not in self.processes:
            self.stats.dropped += 1
            if trace.enabled:
                trace.emit(now, "drop", src, str(dst), payload, "unknown dst")
            return
        env = Envelope(src=src, dst=dst, payload=payload, send_time=now)
        if self.stats_enabled:
            self.stats.note_send(src, payload)
        if trace.enabled:
            trace.emit(now, "send", src, dst, payload)
        latency = self.adversary.latency(env, self.rng)
        times = self.channel(src, dst).plan(env, now, latency, self.rng)
        if not times:
            self.stats.dropped += 1
            if trace.enabled:
                trace.emit(now, "drop", src, dst, payload)
            return
        for t in times:
            self._flight_seq += 1
            token = self._flight_seq
            self.in_flight[token] = env
            self.scheduler.call_at(
                t, lambda tok=token: self._deliver(tok), tag=f"deliver:{src}->{dst}"
            )

    def broadcast(self, src: str, dsts: Iterable[str], payload: Any) -> None:
        """Transmit ``payload`` from ``src`` to every process in ``dsts``.

        Byte-identical to calling :meth:`send` per destination — same drop
        handling, same RNG consumption order (adversary latency then
        channel plan, in ``dsts`` order), same event tie-breaking — but the
        fan-out is planned first and handed to the scheduler as **one
        batched insertion** (:meth:`Scheduler.call_at_many`), and the stats
        counters are bumped once per broadcast instead of once per
        destination. This is the hot path: every protocol phase opens with
        a broadcast to all n servers.
        """
        now = self.scheduler.now
        trace = self.trace
        traced = trace.enabled
        processes = self.processes
        adversary_latency = self.adversary.latency
        rng = self.rng
        stats = self.stats
        in_flight = self.in_flight
        token = self._flight_seq
        entries: list[tuple[float, Callable[[], None], str]] = []
        sent = 0
        for dst in dsts:
            if dst not in processes:
                stats.dropped += 1
                if traced:
                    trace.emit(now, "drop", src, str(dst), payload, "unknown dst")
                continue
            env = Envelope(src=src, dst=dst, payload=payload, send_time=now)
            sent += 1
            if traced:
                trace.emit(now, "send", src, dst, payload)
            latency = adversary_latency(env, rng)
            times = self.channel(src, dst).plan(env, now, latency, rng)
            if not times:
                stats.dropped += 1
                if traced:
                    trace.emit(now, "drop", src, dst, payload)
                continue
            tag = f"deliver:{src}->{dst}"
            for t in times:
                token += 1
                in_flight[token] = env
                entries.append((t, partial(self._deliver, token), tag))
        self._flight_seq = token
        if self.stats_enabled and sent:
            stats.note_sends(src, payload, sent)
        if entries:
            self.scheduler.call_at_many(entries)

    def _deliver(self, token: int) -> None:
        env = self.in_flight.pop(token, None)
        if env is None:  # pragma: no cover - defensive; tokens are unique
            return
        proc = self.processes.get(env.dst)
        if proc is None or proc.crashed:
            return
        if self.stats_enabled:
            self.stats.note_delivery(env.payload)
        if self.trace.enabled:
            self.trace.emit(self.scheduler.now, "deliver", env.src, env.dst, env.payload)
        proc.receive(env.src, env.payload)

    def reset_channels(self) -> None:
        """Reset every channel policy's ordering/fairness state.

        Restarted runs (same network, fresh workload) must see channels as
        if freshly created — FIFO high-water marks and consecutive-drop
        counters carried across restarts would make the second run depend
        on the first.
        """
        for ch in self.channels.values():
            ch.reset()

    # ------------------------------------------------------------------
    # fault-injection surface
    # ------------------------------------------------------------------
    def in_flight_envelopes(self) -> list[Envelope]:
        """Mutable view of messages currently in flight.

        The injector mutates ``payload`` in place (or swaps it) to model
        corrupted channel contents; deliveries pick up the mutated payload.
        """
        return list(self.in_flight.values())

    def inject(self, src: str, dst: str, payload: Any, delay: float = 0.0) -> None:
        """Place a spurious message on the (src, dst) channel.

        Models stale/forged messages present in channels at start-up: the
        receiver will observe it exactly as if ``src`` had sent it.
        """
        if dst not in self.processes:
            self.stats.dropped += 1
            return
        env = Envelope(src=src, dst=dst, payload=payload, send_time=self.scheduler.now)
        self.stats.corrupted += 1
        self.trace.emit(self.scheduler.now, "corrupt", src, dst, payload, "injected")
        times = self.channel(src, dst).plan(
            env, self.scheduler.now, delay, self.rng
        )
        for t in times:
            self._flight_seq += 1
            token = self._flight_seq
            self.in_flight[token] = env
            self.scheduler.call_at(
                t, lambda tok=token: self._deliver(tok), tag=f"inject:{src}->{dst}"
            )
