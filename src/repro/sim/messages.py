"""Message envelopes and the corruption surface.

The network transports opaque *payloads* (protocol-defined dataclasses)
inside :class:`Envelope` records. Transient channel corruption operates on
envelopes: it can mutate payload fields in a type-respecting way or replace
the payload wholesale with :class:`Garbage`, which correct processes must
tolerate (drop) without crashing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any


@dataclass(slots=True)
class Envelope:
    """A message in flight.

    Slotted: simulations allocate one envelope per transmission (millions
    per sweep), and the fault injector only ever touches the declared
    fields, so dropping the per-instance ``__dict__`` is free memory and
    faster attribute access.

    Attributes:
        src: sender process id.
        dst: destination process id.
        payload: protocol message (arbitrary object).
        send_time: simulation time at which :meth:`Network.send` was called
            (metrics only — invisible to protocol code).
    """

    src: str
    dst: str
    payload: Any
    send_time: float = 0.0


@dataclass(frozen=True)
class Garbage:
    """An unparseable blob produced by transient channel corruption.

    Correct processes receiving :class:`Garbage` must silently drop it;
    the defensive-parsing tests assert exactly that.
    """

    noise: int = 0


def is_message_dataclass(payload: Any) -> bool:
    """True when ``payload`` is a dataclass instance (the normal case)."""
    return dataclasses.is_dataclass(payload) and not isinstance(payload, type)


def payload_fields(payload: Any) -> dict[str, Any]:
    """Shallow field map of a dataclass payload (for corruption/tracing)."""
    if not is_message_dataclass(payload):
        return {}
    return {f.name: getattr(payload, f.name) for f in dataclasses.fields(payload)}
