"""Asynchrony adversaries: who decides message delays.

In an asynchronous system, message delays are finite but arbitrary; proofs
quantify over *all* admissible schedules. The simulator delegates each
message's delay to an :class:`Adversary`, so an experiment can plug in

* benign randomized delays (:class:`UniformLatencyAdversary`),
* deterministic unit delays (:class:`FixedLatencyAdversary`) for
  message-delay-counting metrics, or
* targeted schedules (:class:`TargetedSlowAdversary`,
  :class:`ScriptedAdversary`) that realize the exact interleavings used by
  the paper's Theorem 1 lower-bound construction (e.g. "server s4 is slow
  during writes w0 and w1").

Delays only shape *performance and interleaving*; FIFO per-channel order is
enforced by the channel, not the adversary.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.sim.messages import Envelope


class Adversary(ABC):
    """Strategy object choosing the network delay of each envelope."""

    @abstractmethod
    def latency(self, env: Envelope, rng: random.Random) -> float:
        """Return the delay (>= 0) the network applies to ``env``."""

    def describe(self) -> str:
        """Human-readable description used in experiment tables."""
        return type(self).__name__


class FixedLatencyAdversary(Adversary):
    """Every message takes exactly ``delay`` time units.

    With ``delay = 1.0`` the simulation clock counts message delays, which
    is the latency unit used throughout EXPERIMENTS.md.
    """

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.delay = delay

    def latency(self, env: Envelope, rng: random.Random) -> float:
        return self.delay


class UniformLatencyAdversary(Adversary):
    """Delays drawn i.i.d. from ``Uniform[lo, hi]``."""

    def __init__(self, lo: float = 0.5, hi: float = 1.5) -> None:
        if not (0 <= lo <= hi):
            raise ValueError(f"invalid latency bounds: [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def latency(self, env: Envelope, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)


class TargetedSlowAdversary(Adversary):
    """Slow down traffic touching selected processes.

    Messages to or from a process in ``slow`` get ``slow_delay``; everything
    else uses the wrapped ``base`` adversary. The membership test consults a
    mutable set, so a scripted experiment can change who is slow between
    operations — exactly what the Theorem 1 execution needs (s4 slow for
    w0/w1, s3 slow for w2).
    """

    def __init__(
        self,
        slow: set[str],
        slow_delay: float = 50.0,
        base: Optional[Adversary] = None,
    ) -> None:
        self.slow = slow
        self.slow_delay = slow_delay
        self.base = base or FixedLatencyAdversary(1.0)

    def latency(self, env: Envelope, rng: random.Random) -> float:
        if env.src in self.slow or env.dst in self.slow:
            return self.slow_delay
        return self.base.latency(env, rng)

    def describe(self) -> str:
        return f"TargetedSlow(slow={sorted(self.slow)}, delay={self.slow_delay})"


class ScriptedAdversary(Adversary):
    """Fully programmable delays via a callback.

    ``fn(env, rng)`` returns the delay; used by lower-bound executions that
    need per-message control beyond "this process is slow".
    """

    def __init__(self, fn: Callable[[Envelope, random.Random], float]) -> None:
        self.fn = fn

    def latency(self, env: Envelope, rng: random.Random) -> float:
        d = self.fn(env, rng)
        if d < 0:
            raise ValueError(f"scripted adversary returned negative delay {d}")
        return d
