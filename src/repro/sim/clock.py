"""Simulation clock.

The clock is owned by the scheduler and advances only when events fire.
Protocol code must never consult it — the paper's algorithms are
asynchronous and clock-free; only specification checkers and metrics
(the "fictional global clock" of Section II) may read it.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic simulation clock measured in abstract time units.

    One time unit is roughly "one typical message delay" under the default
    adversaries, which makes latency metrics directly interpretable as
    message-delay counts.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises :class:`SimulationError` on attempts to move backwards, which
        would indicate a scheduler bug (events must pop in time order).
        """
        if t < self._now:
            raise SimulationError(
                f"clock moving backwards: {self._now} -> {t}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
