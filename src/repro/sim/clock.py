"""Simulation clock.

The clock is owned by the scheduler and advances only when events fire.
Protocol code must never consult it — the paper's algorithms are
asynchronous and clock-free; only specification checkers and metrics
(the "fictional global clock" of Section II) may read it.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic simulation clock measured in abstract time units.

    One time unit is roughly "one typical message delay" under the default
    adversaries, which makes latency metrics directly interpretable as
    message-delay counts.
    """

    #: ``now`` is a plain slot attribute (not a property): the scheduler's
    #: hot loop reads it once per event and the property trampoline was a
    #: measurable fraction of event dispatch. Treat it as read-only outside
    #: this class — all legitimate writes go through :meth:`advance_to`.
    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises :class:`SimulationError` on attempts to move backwards, which
        would indicate a scheduler bug (events must pop in time order).
        """
        if t < self.now:
            raise SimulationError(
                f"clock moving backwards: {self.now} -> {t}"
            )
        self.now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self.now:.6f})"
