"""Structured run tracing and message statistics.

The tracer is optional and cheap when disabled. Experiments use
:class:`MessageStats` for the message-complexity tables; debugging uses the
full :class:`Trace` record stream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced network event."""

    time: float
    kind: str  # "send" | "deliver" | "drop" | "corrupt" | "crash" | "note"
    src: str
    dst: str
    payload_type: str
    detail: str = ""


class MessageStats:
    """Counts of sends/deliveries per payload type and per process.

    All counters are plain :class:`collections.Counter` so experiment code
    can aggregate them across runs with ``+``.
    """

    def __init__(self) -> None:
        self.sent_by_type: Counter[str] = Counter()
        self.delivered_by_type: Counter[str] = Counter()
        self.sent_by_process: Counter[str] = Counter()
        self.dropped = 0
        self.corrupted = 0
        # type -> __name__ memo: `type(payload).__name__` materializes a
        # fresh str per call, which shows up in profiles at millions of
        # messages; payload types per run number a dozen at most.
        self._type_names: dict[type, str] = {}

    @property
    def total_sent(self) -> int:
        return sum(self.sent_by_type.values())

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered_by_type.values())

    def _type_name(self, payload: Any) -> str:
        tp = type(payload)
        name = self._type_names.get(tp)
        if name is None:
            name = tp.__name__
            self._type_names[tp] = name
        return name

    def note_send(self, src: str, payload: Any) -> None:
        # Memo inlined: these two run once per message on the live tier's
        # hot path, where even one extra function call is visible.
        tp = type(payload)
        name = self._type_names.get(tp)
        if name is None:
            name = self._type_names[tp] = tp.__name__
        self.sent_by_type[name] += 1
        self.sent_by_process[src] += 1

    def note_sends(self, src: str, payload: Any, count: int) -> None:
        """Record ``count`` transmissions of one payload (broadcast batch)."""
        self.sent_by_type[self._type_name(payload)] += count
        self.sent_by_process[src] += count

    def note_delivery(self, payload: Any) -> None:
        tp = type(payload)
        name = self._type_names.get(tp)
        if name is None:
            name = self._type_names[tp] = tp.__name__
        self.delivered_by_type[name] += 1

    def merged_with(self, other: "MessageStats") -> "MessageStats":
        out = MessageStats()
        out.sent_by_type = self.sent_by_type + other.sent_by_type
        out.delivered_by_type = self.delivered_by_type + other.delivered_by_type
        out.sent_by_process = self.sent_by_process + other.sent_by_process
        out.dropped = self.dropped + other.dropped
        out.corrupted = self.corrupted + other.corrupted
        return out


@dataclass
class Trace:
    """Append-only trace of network-level events.

    Disabled by default; enabling it has a per-message cost, so large sweeps
    keep it off and rely on :class:`MessageStats`.
    """

    enabled: bool = False
    records: list[TraceRecord] = field(default_factory=list)
    limit: Optional[int] = None

    def emit(
        self,
        time: float,
        kind: str,
        src: str,
        dst: str,
        payload: Any,
        detail: str = "",
    ) -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            return
        self.records.append(
            TraceRecord(
                time=time,
                kind=kind,
                src=src,
                dst=dst,
                payload_type=type(payload).__name__,
                detail=detail,
            )
        )

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.kind == kind)

    def __len__(self) -> int:
        return len(self.records)
