"""Process actors and the ``wait until`` coroutine runtime.

The paper's pseudo-code mixes reactive handlers ("when REPLY(...) is
delivered") with blocking operations ("wait until |replies| >= n - f").
Processes here mirror that structure exactly:

* :meth:`Process.on_message` is the reactive handler, invoked by the
  network for every delivery;
* client operations are Python *generators* that ``yield Wait(predicate)``
  objects; the runtime re-evaluates pending predicates after every delivery
  and resumes the generator once its condition holds.

This keeps the implementation line-for-line comparable with Figures 1-3 of
the paper while remaining single-threaded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import SimEnvironment


@dataclass
class Wait:
    """A blocking condition yielded by an operation generator.

    Attributes:
        predicate: zero-argument callable; the operation resumes when it
            returns truthy. Predicates must be cheap and side-effect free —
            they are re-evaluated after every message delivery.
        label: diagnostic name shown when a run deadlocks while blocked here.
    """

    predicate: Callable[[], bool]
    label: str = ""


@dataclass
class OperationHandle:
    """Tracks one in-flight client operation (coroutine)."""

    name: str
    done: bool = False
    result: Any = None
    failed: bool = False  # True when the owning process crashed mid-operation
    waiting_on: str = ""
    _gen: Optional[Generator[Wait, None, Any]] = field(default=None, repr=False)
    _callbacks: list[Callable[["OperationHandle"], None]] = field(
        default_factory=list, repr=False
    )

    def on_done(self, fn: Callable[["OperationHandle"], None]) -> None:
        """Register a completion callback (fires immediately if already done)."""
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)


class Process:
    """Base class for every simulated process (servers and clients).

    Subclasses implement :meth:`on_message`; client subclasses also define
    operation generators and start them via :meth:`start_operation`.

    Each process owns a private :class:`random.Random` stream derived
    deterministically from the environment seed and the pid, so adding or
    reordering processes does not perturb other processes' randomness.
    """

    def __init__(self, pid: str, env: "SimEnvironment") -> None:
        self.pid = pid
        self.env = env
        self.crashed = False
        self.rng: random.Random = env.spawn_rng(pid)
        self._pending_ops: list[OperationHandle] = []
        self.restarts = 0
        self._restart_hooks: list[Callable[[], None]] = []
        env.network.register(self)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, dst: str, payload: Any) -> None:
        """Send ``payload`` to process ``dst`` (no-op once crashed)."""
        if self.crashed:
            return
        self.env.network.send(self.pid, dst, payload)

    def broadcast(self, dsts: Iterable[str], payload: Any) -> None:
        """Send ``payload`` to every process in ``dsts`` (batched fan-out).

        Semantically identical to calling :meth:`send` per destination;
        the network plans the whole fan-out in one scheduler insertion.
        """
        if self.crashed:
            return
        self.env.network.broadcast(self.pid, dsts, payload)

    def receive(self, src: str, payload: Any) -> None:
        """Network entry point: dispatch to the handler, then poll waits."""
        if self.crashed:
            return
        self.on_message(src, payload)
        self._poll_waits()

    def on_message(self, src: str, payload: Any) -> None:
        """Reactive handler; override in subclasses. Default: ignore."""

    # ------------------------------------------------------------------
    # coroutine operations
    # ------------------------------------------------------------------
    def start_operation(
        self, gen: Generator[Wait, None, Any], name: str = "op"
    ) -> OperationHandle:
        """Begin driving an operation generator.

        The generator runs synchronously until its first unsatisfied
        :class:`Wait` (or completion). Afterwards it is resumed from
        :meth:`receive` whenever a delivery makes its predicate true.
        """
        handle = OperationHandle(name=name, _gen=gen)
        self._pending_ops.append(handle)
        self._advance(handle)
        return handle

    def _advance(self, handle: OperationHandle) -> None:
        gen = handle._gen
        if gen is None or handle.done:
            return
        try:
            while True:
                wait = next(gen)
                if not isinstance(wait, Wait):
                    raise SimulationError(
                        f"{self.pid}: operation {handle.name!r} yielded "
                        f"{type(wait).__name__}, expected Wait"
                    )
                if not wait.predicate():
                    handle.waiting_on = wait.label
                    handle._blocked = wait  # type: ignore[attr-defined]
                    return
        except StopIteration as stop:
            handle.done = True
            handle.result = stop.value
            handle.waiting_on = ""
            if handle in self._pending_ops:
                self._pending_ops.remove(handle)
            for fn in handle._callbacks:
                fn(handle)
            handle._callbacks.clear()

    def _poll_waits(self) -> None:
        if not self._pending_ops:
            return  # servers: every delivery pays this check, nothing more
        # Iterate over a copy: resuming an operation may complete it (and
        # remove it) or, in principle, start new ones.
        for handle in list(self._pending_ops):
            if handle.done:
                continue
            wait: Optional[Wait] = getattr(handle, "_blocked", None)
            if wait is None or wait.predicate():
                self._advance(handle)

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop the process: all pending operations fail.

        Failed handles are *settled*: their completion callbacks fire with
        ``failed=True`` set, so drivers chaining work off a handle (the
        workload runner, the client's active-operation bookkeeping) observe
        the crash instead of waiting forever on a handle that can never
        complete.
        """
        if self.crashed:
            return
        self.crashed = True
        settled = self._pending_ops
        self._pending_ops = []
        for handle in settled:
            handle.failed = True
            handle.waiting_on = ""
            handle._gen = None
            callbacks = handle._callbacks
            handle._callbacks = []
            for fn in callbacks:
                fn(handle)

    def restart(self, rng: Optional[random.Random] = None) -> None:
        """Recover a crashed process (crash–restart fault model).

        The recovered process resumes with whatever state the subclass left
        behind; passing ``rng`` additionally scrambles it via
        :meth:`corrupt_state` — a recovering process whose volatile memory
        is arbitrary, which is exactly the transient-fault model the
        protocol must stabilize from. Hooks registered through
        :meth:`when_restarted` fire after the state is settled (drivers use
        them to resume parked workload scripts). No-op unless crashed.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.restarts += 1
        if rng is not None:
            self.corrupt_state(rng)
        hooks = self._restart_hooks
        self._restart_hooks = []
        for fn in hooks:
            fn()

    def when_restarted(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` after the next restart (immediately if not crashed)."""
        if not self.crashed:
            fn()
            return
        self._restart_hooks.append(fn)

    def corrupt_state(self, rng: random.Random) -> None:
        """Scramble local volatile state (transient fault).

        Subclasses override this to corrupt every protocol variable within
        its type domain; the base class has no protocol state.
        """

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def blocked_operations(self) -> list[OperationHandle]:
        """Operations currently stuck in a Wait (for deadlock reports)."""
        return [h for h in self._pending_ops if not h.done]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(pid={self.pid!r})"
