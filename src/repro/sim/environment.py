"""The simulation environment: one object tying a run together.

A :class:`SimEnvironment` owns the scheduler, the network and the master
seed. Every run is a pure function of ``(configuration, seed)`` — the
environment derives all per-process and per-channel randomness from the
master seed with stable hashing, so adding a process never perturbs the
random streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Optional

from repro.errors import DeadlockError
from repro.sim.adversary import Adversary, FixedLatencyAdversary
from repro.sim.channels import Channel, FifoChannel
from repro.sim.network import Network
from repro.sim.scheduler import Scheduler


def derive_seed(master: int, name: str) -> int:
    """Stable 64-bit sub-seed for ``name`` under master seed ``master``."""
    digest = hashlib.blake2b(
        f"{master}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class SimEnvironment:
    """Container for one simulated execution.

    Args:
        seed: master seed; all randomness in the run derives from it.
        adversary: message-delay policy (default: unit delays, so latency
            metrics count message delays).
        channel_factory: per-pair channel policy constructor (default:
            reliable FIFO, the paper's baseline assumption).
        max_events: scheduler safety cap.
        trace: observability level — ``"off"`` (no stats, no records, the
            fastest), ``"stats"`` (message counters only; the default) or
            ``"full"`` (counters plus a per-event trace record stream).
    """

    def __init__(
        self,
        seed: int = 0,
        adversary: Optional[Adversary] = None,
        channel_factory: Callable[[], Channel] = FifoChannel,
        max_events: int = 50_000_000,
        trace: str = "stats",
    ) -> None:
        self.seed = seed
        self.scheduler = Scheduler(max_events=max_events)
        self.network = Network(
            self.scheduler,
            adversary=adversary or FixedLatencyAdversary(1.0),
            rng=random.Random(derive_seed(seed, "network")),
            channel_factory=channel_factory,
        )
        self.network.set_trace_level(trace)

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def spawn_rng(self, name: str) -> random.Random:
        """Private deterministic RNG stream for component ``name``."""
        return random.Random(derive_seed(self.seed, name))

    # ------------------------------------------------------------------
    # execution helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(self, until: Optional[float] = None) -> int:
        """Drain the event queue (optionally up to time ``until``)."""
        return self.scheduler.run(until=until)

    def run_until(self, predicate: Callable[[], bool], max_steps: Optional[int] = None) -> bool:
        return self.scheduler.run_until(predicate, max_steps=max_steps)

    def tick(self, dt: float = 1e-3) -> None:
        """Advance the clock by ``dt`` via a no-op event.

        Synchronous drivers call this between operations so that an
        operation invoked right after another completes is *strictly*
        after it on the fictional global clock (the paper's model assumes
        distinct event instants).
        """
        fired = {"done": False}
        self.scheduler.call_in(dt, lambda: fired.__setitem__("done", True), tag="tick")
        self.scheduler.run_until(lambda: fired["done"])

    def drain_bounded(self, max_steps: int) -> bool:
        """Pop at most ``max_steps`` events; True iff the queue drained.

        The chaos/fuzz watchdogs use this instead of :meth:`run` for the
        final drain: a livelocked protocol (messages begetting messages
        forever) would otherwise churn until the scheduler's global event
        cap — minutes of wall clock — before the run could be declared
        stuck.
        """
        self.scheduler.run_until(lambda: False, max_steps=max_steps)
        return self.scheduler.idle()

    def run_op_bounded(
        self, predicate: Callable[[], bool], max_steps: int
    ) -> str:
        """Run until ``predicate``, a drained queue, or the step budget.

        Returns ``"done"`` (predicate holds), ``"wedged"`` (queue drained
        first) or ``"budget"`` (still churning after ``max_steps`` events
        — the watchdog's livelock verdict).
        """
        if self.scheduler.run_until(predicate, max_steps=max_steps):
            return "done"
        return "wedged" if self.scheduler.idle() else "budget"

    def run_to_completion(self, predicate: Callable[[], bool]) -> None:
        """Run until ``predicate`` holds; raise :class:`DeadlockError` if the
        queue drains first, with a report of who is blocked on what.
        """
        if self.scheduler.run_until(predicate):
            return
        blocked = []
        for proc in self.network.processes.values():
            for handle in proc.blocked_operations():
                blocked.append(
                    f"{proc.pid}: {handle.name} waiting on {handle.waiting_on!r}"
                )
        detail = "; ".join(blocked) if blocked else "no blocked operations recorded"
        raise DeadlockError(
            f"event queue drained before condition was met ({detail})"
        )
