"""Transient-fault and crash injection.

The paper's failure model (Section II) lets *every* process start in an
arbitrarily corrupted state and lets channel contents be corrupted too.
This module provides:

* :func:`scramble_processes` — invoke each process's
  :meth:`~repro.sim.process.Process.corrupt_state` (protocol classes
  override it to randomize every local variable within its type domain);
* :class:`ChannelCorruptor` — mutate or replace in-flight payloads and
  inject stale/forged messages into channels;
* :class:`FaultSchedule` — a declarative timeline of fault actions applied
  at chosen simulation times, so experiments can hit the system mid-run
  (transient faults "of finite duration ... not too often").

Corruption of protocol payloads is delegated to a pluggable *forger*
callable because only the protocol package knows what a well-typed-but-
wrong message looks like; a :class:`~repro.sim.messages.Garbage` payload is
always available as the fully-unparseable case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.sim.environment import SimEnvironment
from repro.sim.messages import Envelope, Garbage
from repro.sim.network import Network
from repro.sim.process import Process

# A forger receives (envelope, rng) and returns a replacement payload.
Forger = Callable[[Envelope, random.Random], Any]

# ---------------------------------------------------------------------------
# The corruption registry: the injector's declared reach over process state.
# ---------------------------------------------------------------------------
#
# The stabilization experiments (E6, E13) are sound only if the transient-
# fault injector can reach *every* piece of process-local state — a state
# variable outside the corruption surface would let the system "recover"
# in runs that were never actually corrupted where it hurts. This registry
# declares, attribute by attribute, what each process class carries and
# how the fault model treats it; the STAB-series lint rules
# (:mod:`repro.analysis.rules.stab`) cross-check it against the class
# definitions on every CI run, so code and registry cannot drift apart.
#
# State kinds:

#: Protocol state the injector scrambles — must be assigned by the class's
#: ``corrupt_state``/``_corrupt*`` method (enforced by STAB002).
CORRUPTIBLE = "corruptible"
#: In-operation temporaries, unconditionally reset at the top of each
#: operation (Figures 1-3, lines 01-03); corruption *during* an operation
#: is modelled by crashing the client instead (see
#: ``RegisterClient.corrupt_state``). Still scrambled where cheap.
EPHEMERAL = "ephemeral"
#: Simulation plumbing (pids, env handles, RNG streams, crash flags) —
#: part of the *model*, not of the modelled process memory. Corrupting the
#: crash flag would violate the "at most f faulty" bound, and corrupting
#: an RNG stream changes the adversary, not the protocol.
INFRASTRUCTURE = "infrastructure"
#: Counters and diagnostics read only by experiment reports; they never
#: feed back into protocol decisions.
OBSERVABILITY = "observability"
#: Byzantine-strategy state. A Byzantine server's behaviour is already
#: arbitrary (Section II), so corrupting its private script adds no
#: adversarial power — the strategies *are* the corruption.
ADVERSARIAL = "adversarial"

#: class name -> {attribute -> kind}, or a ``"exempt: reason"`` string for
#: whole classes that are not simulated processes at all.
CORRUPTION_REGISTRY: dict[str, Any] = {
    # --- simulation base (sim/process.py) ------------------------------
    "Process": {
        "pid": INFRASTRUCTURE,
        "env": INFRASTRUCTURE,
        "crashed": INFRASTRUCTURE,
        "rng": INFRASTRUCTURE,
        "_pending_ops": INFRASTRUCTURE,
        # Crash–restart machinery (chaos nemesis layer): corrupting the
        # restart counter or the parked-script hooks would change the
        # *fault model*, not the modelled process memory.
        "restarts": OBSERVABILITY,
        "_restart_hooks": INFRASTRUCTURE,
    },
    # --- correct servers (core/server.py) ------------------------------
    "RegisterServer": {
        "config": INFRASTRUCTURE,
        "scheme": INFRASTRUCTURE,
        "value": CORRUPTIBLE,
        "ts": CORRUPTIBLE,
        "old_vals": CORRUPTIBLE,
        "running_read": CORRUPTIBLE,
        # Churn state-transfer handshake (begin_join/on_state_reply): a
        # corrupted joiner may believe it is mid-transfer with arbitrary
        # collected snapshots. The handlers tolerate any shape, so these
        # are ordinary corruptible state, not infrastructure.
        "_join_nonce": CORRUPTIBLE,
        "_join_replies": CORRUPTIBLE,
        "_join_quorum": CORRUPTIBLE,
    },
    # --- correct clients (core/client.py + mixins) ---------------------
    "RegisterClient": {
        "config": INFRASTRUCTURE,
        "scheme": INFRASTRUCTURE,
        "servers": INFRASTRUCTURE,
        "recorder": INFRASTRUCTURE,
        "_active_op": EPHEMERAL,
    },
    "ReaderMixin": {
        "recent_labels": CORRUPTIBLE,
        "recent_vals": CORRUPTIBLE,
        "last_label": CORRUPTIBLE,
        "r_label": CORRUPTIBLE,
        "reading": CORRUPTIBLE,
        "safe": CORRUPTIBLE,
        "slow": CORRUPTIBLE,
        "_replies": CORRUPTIBLE,
        "_reply_servers": CORRUPTIBLE,
        "read_path_stats": OBSERVABILITY,
    },
    "WriterMixin": {
        "write_ts": CORRUPTIBLE,
        "_wts_by_server": CORRUPTIBLE,
        "_collecting_ts": CORRUPTIBLE,
        "_ack_from": CORRUPTIBLE,
        "_nack_from": CORRUPTIBLE,
        "_pending_write_ts": CORRUPTIBLE,
    },
    "AtomicRegisterClient": {
        "_wb_responders": CORRUPTIBLE,
        "_wb_ts": CORRUPTIBLE,
    },
    # --- Byzantine strategies (byzantine/) -----------------------------
    "PhaseSilentByzantine": {"silent_on": ADVERSARIAL},
    "StaleReplayByzantine": {"stale_value": ADVERSARIAL, "stale_ts": ADVERSARIAL},
    "InflatingByzantine": {"_seen": ADVERSARIAL},
    "EquivocatingByzantine": {"stale_ts": ADVERSARIAL},
    "ScriptedByzantine": {
        "ts_script": ADVERSARIAL,
        "read_script": ADVERSARIAL,
        "_ts_cursor": ADVERSARIAL,
        "_read_cursor": ADVERSARIAL,
    },
    # --- non-process classes under the scoped paths --------------------
    "RegisterSystem": (
        "exempt: experiment-harness orchestrator, not a simulated process; "
        "it owns the injector rather than being subject to it"
    ),
    "MobileByzantineCarrier": (
        "exempt: the mobile-Byzantine adversary itself (byzantine/mobile.py) "
        "— fault machinery that performs the possess/depart swaps; its "
        "bookkeeping (current host, stashed original, itinerary) is the "
        "fault model's state, not modelled process memory, and corrupting "
        "it would change which servers are Byzantine, i.e. the f bound"
    ),
    # --- live hosting layer (net/, cross-checked by WIRE003) -----------
    # The live tier hosts the *unmodified* protocol classes, so the
    # corruption surface is still theirs (RegisterServer/RegisterClient
    # entries above). Everything a host carries is plumbing around that
    # process — corrupting a socket handle or a codec object models an
    # infrastructure crash, not a transient memory fault, and the paper's
    # fault model covers crashes separately.
    "ServerDaemon": {
        "sid": INFRASTRUCTURE,
        "config": INFRASTRUCTURE,
        "_address_spec": INFRASTRUCTURE,
        "codec": INFRASTRUCTURE,
        "flush_watermark": INFRASTRUCTURE,
        "transport": INFRASTRUCTURE,
        "env": INFRASTRUCTURE,
        "scheme": INFRASTRUCTURE,
        # The hosted RegisterServer: its own attributes are the actual
        # corruption surface, declared under "RegisterServer" above.
        "process": INFRASTRUCTURE,
        "server": INFRASTRUCTURE,
        "address": INFRASTRUCTURE,
        "_conns": INFRASTRUCTURE,
        "_handshakes": INFRASTRUCTURE,
    },
    "ClientEndpoint": {
        "cid": INFRASTRUCTURE,
        "config": INFRASTRUCTURE,
        "_addresses": INFRASTRUCTURE,
        "op_timeout": INFRASTRUCTURE,
        "codec": INFRASTRUCTURE,
        "flush_watermark": INFRASTRUCTURE,
        "transport": INFRASTRUCTURE,
        "clock": INFRASTRUCTURE,
        "env": INFRASTRUCTURE,
        "history": OBSERVABILITY,
        "recorder": OBSERVABILITY,
        "scheme": INFRASTRUCTURE,
        # The hosted RegisterClient (surface declared above).
        "client": INFRASTRUCTURE,
        "timeouts": OBSERVABILITY,
        "_conns": INFRASTRUCTURE,
    },
    "LiveClock": {"_epoch": INFRASTRUCTURE},
    "_BridgeNetwork": {
        "transport": INFRASTRUCTURE,
        "processes": INFRASTRUCTURE,
        "stats": OBSERVABILITY,
    },
    "NetEnvironment": {
        "seed": INFRASTRUCTURE,
        "transport": INFRASTRUCTURE,
        "network": INFRASTRUCTURE,
        "clock": INFRASTRUCTURE,
    },
    "LiveRegisterCluster": (
        "exempt: live-deployment orchestrator (boots daemons, proxies and "
        "endpoints); like RegisterSystem it runs the experiment rather "
        "than being part of the modelled process memory"
    ),
    # --- sharded fabric (fabric/, cross-checked by WIRE003) ------------
    # Same stance as the hosting layer above: every shard hosts the
    # unmodified protocol classes inside ServerDaemon/ClientEndpoint, so
    # the corruption surface stays theirs. Fabric classes are routing and
    # lifecycle plumbing around those hosts; their state is infrastructure
    # (corrupting a hash ring or a pipe handle models an operator error /
    # crash, not the paper's transient memory fault).
    "HashRing": {
        "shard_ids": INFRASTRUCTURE,
        "vnodes": INFRASTRUCTURE,
        "_points": INFRASTRUCTURE,
        "_hashes": INFRASTRUCTURE,
    },
    "FabricTopology": {
        "specs": INFRASTRUCTURE,
        "vnodes": INFRASTRUCTURE,
        "addresses": INFRASTRUCTURE,
        "ring": INFRASTRUCTURE,
        "_by_id": INFRASTRUCTURE,
    },
    "ShardServerGroup": {
        "spec": INFRASTRUCTURE,
        "config": INFRASTRUCTURE,
        "scheme": INFRASTRUCTURE,
        "clock": INFRASTRUCTURE,
        "byzantine_ids": INFRASTRUCTURE,
        "_factories": INFRASTRUCTURE,
        # The hosted ServerDaemons (each wrapping a RegisterServer whose
        # surface is declared above) plus their fault proxies.
        "daemons": INFRASTRUCTURE,
        "proxies": INFRASTRUCTURE,
        "addresses": INFRASTRUCTURE,
        "departed": INFRASTRUCTURE,
        "_generations": INFRASTRUCTURE,
        "started": INFRASTRUCTURE,
    },
    "InlineShardHost": {
        "spec": INFRASTRUCTURE,
        "group": INFRASTRUCTURE,
    },
    "ProcessShardHost": {
        "spec": INFRASTRUCTURE,
        "process": INFRASTRUCTURE,
        "_conn": INFRASTRUCTURE,
        "_lock": INFRASTRUCTURE,
    },
    "FabricSupervisor": (
        "exempt: fabric orchestrator (spawns shard hosts, relays control "
        "verbs); like LiveRegisterCluster it runs the deployment rather "
        "than being part of the modelled process memory"
    ),
    "FabricClient": {
        "topology": INFRASTRUCTURE,
        "clients_per_shard": INFRASTRUCTURE,
        "seed": INFRASTRUCTURE,
        "op_timeout": INFRASTRUCTURE,
        "clock": INFRASTRUCTURE,
        "histories": OBSERVABILITY,
        "schemes": INFRASTRUCTURE,
        # The per-shard ClientEndpoints (surface declared above).
        "endpoints": INFRASTRUCTURE,
        "started": INFRASTRUCTURE,
    },
    "FabricKV": (
        "exempt: synchronous facade over FabricSupervisor + FabricClient "
        "for the KV store's shard_factory seam; orchestrator, not modelled "
        "process memory"
    ),
    "_LiveShardBackend": {
        "fabric": INFRASTRUCTURE,
        "key": INFRASTRUCTURE,
        "shard_id": INFRASTRUCTURE,
        "clients": INFRASTRUCTURE,
        "_endpoints": INFRASTRUCTURE,
    },
}


def state_kinds(cls: type) -> dict[str, str]:
    """Merged attribute->kind declarations over ``cls``'s MRO."""
    merged: dict[str, str] = {}
    for base in reversed(cls.__mro__):
        entry = CORRUPTION_REGISTRY.get(base.__name__)
        if isinstance(entry, dict):
            merged.update(entry)
    return merged


def corruption_surface(cls: type) -> frozenset[str]:
    """Attributes of ``cls`` the fault injector is declared to reach."""
    return frozenset(
        attr for attr, kind in state_kinds(cls).items() if kind == CORRUPTIBLE
    )


def garbage_forger(env: Envelope, rng: random.Random) -> Any:
    """Default forger: replace the payload with unparseable garbage."""
    return Garbage(noise=rng.getrandbits(32))


def field_scrambler(env: Envelope, rng: random.Random) -> Any:
    """Type-respecting forger: corrupt one field of a protocol message.

    Keeps the message *parseable* (same dataclass, one field replaced with
    junk of a random shape), which exercises receivers' per-field
    validation rather than their top-level type dispatch. Falls back to
    :func:`garbage_forger` for non-dataclass payloads or frozen rejects.
    """
    import dataclasses

    from repro.sim.messages import is_message_dataclass, payload_fields

    payload = env.payload if env is not None else None
    if not is_message_dataclass(payload):
        return garbage_forger(env, rng)
    fields = payload_fields(payload)
    if not fields:
        return garbage_forger(env, rng)
    victim = rng.choice(sorted(fields))
    junk_pool: list[Any] = [
        None,
        rng.getrandbits(16),
        -rng.getrandbits(8),
        f"junk-{rng.getrandbits(12):03x}",
        (),
        True,
    ]
    fields[victim] = rng.choice(junk_pool)
    try:
        return dataclasses.replace(payload, **{victim: fields[victim]})
    except (TypeError, ValueError):  # pragma: no cover - exotic payloads
        return garbage_forger(env, rng)


def scramble_processes(
    processes: Iterable[Process], rng: random.Random
) -> list[str]:
    """Corrupt the volatile state of every given process.

    Returns the pids touched (for experiment logs).
    """
    touched = []
    for proc in processes:
        proc.corrupt_state(rng)
        touched.append(proc.pid)
    return touched


class ChannelCorruptor:
    """Corrupts channel contents.

    Args:
        network: the network whose in-flight messages are attacked.
        rng: randomness source (derive from the environment for
            reproducibility).
        forger: produces well-typed-but-wrong payloads; defaults to
            :func:`garbage_forger`.
    """

    def __init__(
        self,
        network: Network,
        rng: random.Random,
        forger: Optional[Forger] = None,
    ) -> None:
        self.network = network
        self.rng = rng
        self.forger = forger or garbage_forger

    def corrupt_in_flight(self, fraction: float = 1.0) -> int:
        """Replace the payload of a random ``fraction`` of in-flight messages.

        Returns the number of messages corrupted. Mutation happens on the
        shared envelope, so scheduled deliveries observe the forged payload.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        count = 0
        for env in self.network.in_flight_envelopes():
            if self.rng.random() < fraction:
                env.payload = self.forger(env, self.rng)
                self.network.stats.corrupted += 1
                count += 1
        return count

    def inject_stale(
        self,
        src: str,
        dst: str,
        payload_factory: Callable[[random.Random], Any],
        count: int = 1,
        max_delay: float = 1.0,
    ) -> None:
        """Plant ``count`` spurious messages on the (src, dst) channel.

        Models stale messages present in channels at start-up, one of the
        corruptions the stabilization proof must survive.
        """
        for _ in range(count):
            self.network.inject(
                src, dst, payload_factory(self.rng), delay=self.rng.uniform(0.0, max_delay)
            )


@dataclass
class FaultAction:
    """One scheduled fault: fires ``apply(env)`` at simulation ``time``."""

    time: float
    apply: Callable[[SimEnvironment], None]
    label: str = ""


@dataclass
class FaultSchedule:
    """A declarative fault timeline.

    Example::

        schedule = FaultSchedule()
        schedule.at(0.0, lambda env: scramble_processes(servers, rng),
                    label="initial corruption")
        schedule.at(42.0, lambda env: clients[0].crash(), label="crash c0")
        schedule.arm(env)
    """

    actions: list[FaultAction] = field(default_factory=list)

    def at(
        self,
        time: float,
        apply: Callable[[SimEnvironment], None],
        label: str = "",
    ) -> "FaultSchedule":
        self.actions.append(FaultAction(time=time, apply=apply, label=label))
        return self

    def arm(self, env: SimEnvironment) -> None:
        """Schedule every action on the environment's scheduler."""
        for action in self.actions:
            env.scheduler.call_at(
                action.time,
                lambda a=action: a.apply(env),
                tag=f"fault:{action.label}",
            )


def crash_at(env: SimEnvironment, process: Process, time: float) -> None:
    """Convenience: schedule a crash-stop of ``process`` at ``time``."""
    env.scheduler.call_at(time, process.crash, tag=f"crash:{process.pid}")


def random_subset(
    items: Sequence[Any], rng: random.Random, fraction: float
) -> list[Any]:
    """Sample each item independently with probability ``fraction``.

    Used by corruption-severity sweeps (experiment E6).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    return [x for x in items if rng.random() < fraction]
