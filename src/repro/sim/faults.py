"""Transient-fault and crash injection.

The paper's failure model (Section II) lets *every* process start in an
arbitrarily corrupted state and lets channel contents be corrupted too.
This module provides:

* :func:`scramble_processes` — invoke each process's
  :meth:`~repro.sim.process.Process.corrupt_state` (protocol classes
  override it to randomize every local variable within its type domain);
* :class:`ChannelCorruptor` — mutate or replace in-flight payloads and
  inject stale/forged messages into channels;
* :class:`FaultSchedule` — a declarative timeline of fault actions applied
  at chosen simulation times, so experiments can hit the system mid-run
  (transient faults "of finite duration ... not too often").

Corruption of protocol payloads is delegated to a pluggable *forger*
callable because only the protocol package knows what a well-typed-but-
wrong message looks like; a :class:`~repro.sim.messages.Garbage` payload is
always available as the fully-unparseable case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.sim.environment import SimEnvironment
from repro.sim.messages import Envelope, Garbage
from repro.sim.network import Network
from repro.sim.process import Process

# A forger receives (envelope, rng) and returns a replacement payload.
Forger = Callable[[Envelope, random.Random], Any]


def garbage_forger(env: Envelope, rng: random.Random) -> Any:
    """Default forger: replace the payload with unparseable garbage."""
    return Garbage(noise=rng.getrandbits(32))


def field_scrambler(env: Envelope, rng: random.Random) -> Any:
    """Type-respecting forger: corrupt one field of a protocol message.

    Keeps the message *parseable* (same dataclass, one field replaced with
    junk of a random shape), which exercises receivers' per-field
    validation rather than their top-level type dispatch. Falls back to
    :func:`garbage_forger` for non-dataclass payloads or frozen rejects.
    """
    import dataclasses

    from repro.sim.messages import is_message_dataclass, payload_fields

    payload = env.payload if env is not None else None
    if not is_message_dataclass(payload):
        return garbage_forger(env, rng)
    fields = payload_fields(payload)
    if not fields:
        return garbage_forger(env, rng)
    victim = rng.choice(sorted(fields))
    junk_pool: list[Any] = [
        None,
        rng.getrandbits(16),
        -rng.getrandbits(8),
        f"junk-{rng.getrandbits(12):03x}",
        (),
        True,
    ]
    fields[victim] = rng.choice(junk_pool)
    try:
        return dataclasses.replace(payload, **{victim: fields[victim]})
    except (TypeError, ValueError):  # pragma: no cover - exotic payloads
        return garbage_forger(env, rng)


def scramble_processes(
    processes: Iterable[Process], rng: random.Random
) -> list[str]:
    """Corrupt the volatile state of every given process.

    Returns the pids touched (for experiment logs).
    """
    touched = []
    for proc in processes:
        proc.corrupt_state(rng)
        touched.append(proc.pid)
    return touched


class ChannelCorruptor:
    """Corrupts channel contents.

    Args:
        network: the network whose in-flight messages are attacked.
        rng: randomness source (derive from the environment for
            reproducibility).
        forger: produces well-typed-but-wrong payloads; defaults to
            :func:`garbage_forger`.
    """

    def __init__(
        self,
        network: Network,
        rng: random.Random,
        forger: Optional[Forger] = None,
    ) -> None:
        self.network = network
        self.rng = rng
        self.forger = forger or garbage_forger

    def corrupt_in_flight(self, fraction: float = 1.0) -> int:
        """Replace the payload of a random ``fraction`` of in-flight messages.

        Returns the number of messages corrupted. Mutation happens on the
        shared envelope, so scheduled deliveries observe the forged payload.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        count = 0
        for env in self.network.in_flight_envelopes():
            if self.rng.random() < fraction:
                env.payload = self.forger(env, self.rng)
                self.network.stats.corrupted += 1
                count += 1
        return count

    def inject_stale(
        self,
        src: str,
        dst: str,
        payload_factory: Callable[[random.Random], Any],
        count: int = 1,
        max_delay: float = 1.0,
    ) -> None:
        """Plant ``count`` spurious messages on the (src, dst) channel.

        Models stale messages present in channels at start-up, one of the
        corruptions the stabilization proof must survive.
        """
        for _ in range(count):
            self.network.inject(
                src, dst, payload_factory(self.rng), delay=self.rng.uniform(0.0, max_delay)
            )


@dataclass
class FaultAction:
    """One scheduled fault: fires ``apply(env)`` at simulation ``time``."""

    time: float
    apply: Callable[[SimEnvironment], None]
    label: str = ""


@dataclass
class FaultSchedule:
    """A declarative fault timeline.

    Example::

        schedule = FaultSchedule()
        schedule.at(0.0, lambda env: scramble_processes(servers, rng),
                    label="initial corruption")
        schedule.at(42.0, lambda env: clients[0].crash(), label="crash c0")
        schedule.arm(env)
    """

    actions: list[FaultAction] = field(default_factory=list)

    def at(
        self,
        time: float,
        apply: Callable[[SimEnvironment], None],
        label: str = "",
    ) -> "FaultSchedule":
        self.actions.append(FaultAction(time=time, apply=apply, label=label))
        return self

    def arm(self, env: SimEnvironment) -> None:
        """Schedule every action on the environment's scheduler."""
        for action in self.actions:
            env.scheduler.call_at(
                action.time,
                lambda a=action: a.apply(env),
                tag=f"fault:{action.label}",
            )


def crash_at(env: SimEnvironment, process: Process, time: float) -> None:
    """Convenience: schedule a crash-stop of ``process`` at ``time``."""
    env.scheduler.call_at(time, process.crash, tag=f"crash:{process.pid}")


def random_subset(
    items: Sequence[Any], rng: random.Random, fraction: float
) -> list[Any]:
    """Sample each item independently with probability ``fraction``.

    Used by corruption-severity sweeps (experiment E6).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    return [x for x in items if rng.random() < fraction]
