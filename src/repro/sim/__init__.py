"""Discrete-event simulation substrate for asynchronous message passing.

This package provides everything the paper assumes about the execution
environment:

* a deterministic, seeded discrete-event :class:`~repro.sim.scheduler.Scheduler`;
* :class:`~repro.sim.process.Process` actors with reactive message handlers
  and coroutine-style blocking operations (``wait until`` semantics);
* reliable FIFO point-to-point channels
  (:class:`~repro.sim.channels.FifoChannel`) as well as fair-lossy,
  reordering channels (:class:`~repro.sim.channels.FairLossyChannel`) with a
  stabilization-preserving data-link protocol
  (:mod:`repro.sim.datalink`) layered on top — mirroring the paper's
  reference [8];
* latency/scheduling adversaries (:mod:`repro.sim.adversary`) which realize
  arbitrary admissible asynchronous interleavings, including the targeted
  "slow server" schedules used in the Theorem 1 lower-bound proof;
* transient-fault and crash injection (:mod:`repro.sim.faults`).

Protocol code never reads the simulation clock; only the specification
checkers and metrics do, mirroring the paper's *fictional global clock*.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.scheduler import Scheduler
from repro.sim.process import Process, Wait
from repro.sim.channels import Channel, FifoChannel, FairLossyChannel
from repro.sim.network import Network
from repro.sim.environment import SimEnvironment
from repro.sim.adversary import (
    Adversary,
    FixedLatencyAdversary,
    UniformLatencyAdversary,
    TargetedSlowAdversary,
)

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Scheduler",
    "Process",
    "Wait",
    "Channel",
    "FifoChannel",
    "FairLossyChannel",
    "Network",
    "SimEnvironment",
    "Adversary",
    "FixedLatencyAdversary",
    "UniformLatencyAdversary",
    "TargetedSlowAdversary",
]
