"""Point-to-point channel models.

Two channel families are provided, mirroring Section II of the paper:

* :class:`FifoChannel` — the reliable FIFO channel the protocol assumes:
  no creation, modification or loss, deliveries in send order.
* :class:`FairLossyChannel` — bounded, non-reliable but *fair*, non-FIFO
  channel: messages may be dropped, duplicated and reordered, but a message
  retransmitted forever is eventually delivered (fairness is modelled as a
  hard bound on consecutive drops per channel). The stabilizing data-link
  (:mod:`repro.sim.datalink`) rebuilds FIFO-reliable semantics on top of
  this, reproducing the paper's reference [8].

A channel is a *policy* object: given an envelope, the current time and an
adversary-chosen latency, it returns the delivery times (possibly none, for
a drop; possibly several, for duplication) and enforces ordering
constraints. The network does the actual scheduling.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.sim.messages import Envelope


class Channel(ABC):
    """Delivery policy for one directed (src, dst) pair."""

    @abstractmethod
    def plan(
        self, env: Envelope, now: float, latency: float, rng: random.Random
    ) -> list[float]:
        """Return the absolute delivery time(s) for ``env``.

        An empty list means the message is lost. The list may contain more
        than one time when the channel duplicates.
        """

    def reset(self) -> None:
        """Forget ordering state (used when a run is restarted)."""


class FifoChannel(Channel):
    """Reliable FIFO channel.

    Delivery time is ``max(now + latency, last_delivery + epsilon)`` so that
    per-channel order always matches send order regardless of the latencies
    the adversary picks. ``epsilon`` keeps same-instant deliveries strictly
    ordered in time (the event queue would also tie-break by insertion, but
    a strict gap keeps traces unambiguous).
    """

    __slots__ = ("epsilon", "_last")

    def __init__(self, epsilon: float = 1e-9) -> None:
        self.epsilon = epsilon
        self._last = -1.0

    def plan(
        self, env: Envelope, now: float, latency: float, rng: random.Random
    ) -> list[float]:
        t = now + latency
        if t <= self._last:
            t = self._last + self.epsilon
        self._last = t
        return [t]

    def reset(self) -> None:
        self._last = -1.0


class FairLossyChannel(Channel):
    """Bounded, fair, non-FIFO, lossy and duplicating channel.

    Args:
        loss: probability that a given transmission is dropped.
        duplication: probability that a delivered transmission is delivered
            twice (at independent times).
        fairness_bound: maximum number of *consecutive* drops; after that
            many losses in a row the next transmission is forcibly
            delivered. This realizes the "fair" requirement — infinitely
            many sends of a message imply its eventual delivery — in a form
            that terminates within finite simulations.
        jitter: extra uniform delay spread applied per delivery, which is
            what makes the channel non-FIFO (later sends can overtake
            earlier ones).
    """

    __slots__ = (
        "loss",
        "duplication",
        "fairness_bound",
        "jitter",
        "_consecutive_drops",
        "_last_jittered",
    )

    def __init__(
        self,
        loss: float = 0.2,
        duplication: float = 0.05,
        fairness_bound: int = 10,
        jitter: float = 2.0,
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss probability out of range: {loss}")
        if not 0.0 <= duplication <= 1.0:
            raise ValueError(f"duplication probability out of range: {duplication}")
        if fairness_bound < 1:
            raise ValueError(f"fairness bound must be >= 1: {fairness_bound}")
        self.loss = loss
        self.duplication = duplication
        self.fairness_bound = fairness_bound
        self.jitter = jitter
        self._consecutive_drops = 0
        self._last_jittered = -1.0  # latest planned delivery (diagnostics)

    def plan(
        self, env: Envelope, now: float, latency: float, rng: random.Random
    ) -> list[float]:
        if (
            self._consecutive_drops < self.fairness_bound
            and rng.random() < self.loss
        ):
            self._consecutive_drops += 1
            return []
        self._consecutive_drops = 0
        times = [now + latency + rng.uniform(0.0, self.jitter)]
        if rng.random() < self.duplication:
            times.append(now + latency + rng.uniform(0.0, self.jitter))
        last = max(times)
        if last > self._last_jittered:
            self._last_jittered = last
        return times

    def reset(self) -> None:
        self._consecutive_drops = 0
        self._last_jittered = -1.0
