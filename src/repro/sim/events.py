"""Event objects and the scheduler's priority queue.

Events are totally ordered by ``(time, seq)`` where ``seq`` is a global
insertion counter: two events scheduled for the same instant fire in
insertion order. This makes every run a pure function of ``(config, seed)``
— the property all reproduction experiments rely on.

The heap stores plain ``(time, seq, event)`` tuples rather than the
:class:`Event` handles themselves: tuple comparison runs entirely in C
(``seq`` is unique, so the comparison never reaches the event object),
while ordered dataclasses pay a Python-level ``__lt__`` call per sift
step. The cancellable :class:`Event` handle API is unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Event:
    """A scheduled callback (the cancellable handle returned by ``push``).

    Attributes:
        time: simulation time at which the callback fires.
        seq: global tie-breaking sequence number (assigned by the queue).
        fn: zero-argument callable executed when the event fires.
        tag: free-form label for tracing/diagnostics (not compared).
        cancelled: events may be cancelled in place; the queue skips them.
    """

    __slots__ = ("time", "seq", "fn", "tag", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[[], None],
        tag: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.tag = tag
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}, tag={self.tag!r}{state})"


class EventQueue:
    """Binary-heap event queue with stable same-time ordering.

    The queue never shrinks its heap on cancellation (cancelled events are
    lazily skipped on pop), which keeps cancellation O(1).
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``fn`` at ``time`` and return the (cancellable) event."""
        seq = next(self._counter)
        ev = Event(time, seq, fn, tag)
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def push_many(
        self, entries: list[tuple[float, Callable[[], None], str]]
    ) -> list[Event]:
        """Schedule ``(time, fn, tag)`` entries in order; one heap pass each.

        Sequence numbers are assigned in list order, so the result is
        indistinguishable from calling :meth:`push` in a loop — the batched
        form exists for hot callers (broadcast fan-out) that want to skip
        per-call attribute lookups and bounds checks.
        """
        heap = self._heap
        counter = self._counter
        events = []
        for time, fn, tag in entries:
            seq = next(counter)
            ev = Event(time, seq, fn, tag)
            heapq.heappush(heap, (time, seq, ev))
            events.append(ev)
        self._live += len(events)
        return events

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def note_cancelled(self) -> None:
        """Account for an event cancelled externally via :meth:`Event.cancel`.

        Callers that cancel events directly must inform the queue so that
        ``len`` stays accurate. :meth:`cancel_event` does both steps.
        """
        self._live -= 1

    def cancel_event(self, ev: Event) -> None:
        """Cancel ``ev`` if still live and update the live count."""
        if not ev.cancelled:
            ev.cancel()
            self._live -= 1

    def snapshot(self) -> list[Event]:
        """Return live events sorted by firing order (for fault injection).

        Transient channel corruption rewrites in-flight delivery events; the
        injector uses this view to find them. The returned list is a copy —
        mutating it does not affect the queue, but mutating the *events*
        (e.g. replacing a message payload captured in ``fn`` via its
        ``payload`` attribute) does. Sorting happens on the heap's
        ``(time, seq)`` keys, never on the event objects.
        """
        return [
            entry[2]
            for entry in sorted(self._heap)
            if not entry[2].cancelled
        ]
