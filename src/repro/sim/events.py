"""Event objects and the scheduler's priority queue.

Events are totally ordered by ``(time, seq)`` where ``seq`` is a global
insertion counter: two events scheduled for the same instant fire in
insertion order. This makes every run a pure function of ``(config, seed)``
— the property all reproduction experiments rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time at which the callback fires.
        seq: global tie-breaking sequence number (assigned by the queue).
        fn: zero-argument callable executed when the event fires.
        tag: free-form label for tracing/diagnostics (not compared).
        cancelled: events may be cancelled in place; the queue skips them.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    tag: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """Binary-heap event queue with stable same-time ordering.

    The queue never shrinks its heap on cancellation (cancelled events are
    lazily skipped on pop), which keeps cancellation O(1).
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``fn`` at ``time`` and return the (cancellable) event."""
        ev = Event(time=time, seq=next(self._counter), fn=fn, tag=tag)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Account for an event cancelled externally via :meth:`Event.cancel`.

        Callers that cancel events directly must inform the queue so that
        ``len`` stays accurate. :meth:`cancel_event` does both steps.
        """
        self._live -= 1

    def cancel_event(self, ev: Event) -> None:
        """Cancel ``ev`` if still live and update the live count."""
        if not ev.cancelled:
            ev.cancel()
            self._live -= 1

    def snapshot(self) -> list[Event]:
        """Return live events sorted by firing order (for fault injection).

        Transient channel corruption rewrites in-flight delivery events; the
        injector uses this view to find them. The returned list is a copy —
        mutating it does not affect the queue, but mutating the *events*
        (e.g. replacing a message payload captured in ``fn`` via its
        ``payload`` attribute) does.
        """
        return sorted(e for e in self._heap if not e.cancelled)
