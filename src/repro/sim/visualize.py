"""ASCII rendering of network traces.

Turns a recorded :class:`~repro.sim.tracing.Trace` into a message-sequence
chart — one column per process, one line per event — which makes the
proof schedules (Theorem 1's races, the Lemma 5 flush attack) readable:

    time   c0           s0           s1
    0.00   GetTs ------------------> .
    1.00   .  <------- TsReply       .

Only trace *rendering* lives here; recording is the network's job (enable
with ``system.env.network.trace.enabled = True`` before the run).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.sim.tracing import Trace, TraceRecord


def render_sequence_chart(
    trace: Trace,
    processes: Optional[Sequence[str]] = None,
    kinds: Iterable[str] = ("send", "deliver", "drop"),
    limit: Optional[int] = None,
    col_width: int = 14,
) -> str:
    """Render the trace as a message-sequence chart.

    Args:
        trace: the recorded trace.
        processes: column order; defaults to first-seen order.
        kinds: which record kinds to show.
        limit: cap on rendered records.
        col_width: column width per process.
    """
    records = [r for r in trace.records if r.kind in set(kinds)]
    if limit is not None:
        records = records[:limit]

    if processes is None:
        seen: list[str] = []
        for rec in records:
            for pid in (rec.src, rec.dst):
                if pid and pid not in seen:
                    seen.append(pid)
        processes = seen
    index = {pid: i for i, pid in enumerate(processes)}

    lines = []
    header = "time".ljust(9) + "".join(p.ljust(col_width) for p in processes)
    lines.append(header)
    lines.append("-" * len(header))

    for rec in records:
        cells = ["." .ljust(col_width) for _ in processes]
        label = rec.payload_type
        src_i = index.get(rec.src)
        dst_i = index.get(rec.dst)
        if src_i is None and dst_i is None:
            continue
        if rec.kind == "send" and src_i is not None:
            cells[src_i] = f"{label} >".ljust(col_width)
        elif rec.kind == "deliver" and dst_i is not None:
            cells[dst_i] = f"> {label}".ljust(col_width)
        elif rec.kind == "drop":
            where = dst_i if dst_i is not None else src_i
            cells[where] = f"x {label}".ljust(col_width)
        arrow = ""
        if rec.src and rec.dst:
            arrow = f"  [{rec.src}->{rec.dst}]"
        lines.append(f"{rec.time:<9.2f}" + "".join(cells) + arrow)
    return "\n".join(lines)


def summarize_trace(trace: Trace) -> str:
    """Aggregate view: counts per (kind, payload type)."""
    from collections import Counter

    counts: Counter[tuple[str, str]] = Counter()
    for rec in trace.records:
        counts[(rec.kind, rec.payload_type)] += 1
    lines = ["kind       payload                count"]
    lines.append("-" * 40)
    for (kind, payload), count in sorted(
        counts.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        lines.append(f"{kind:<10s} {payload:<22s} {count}")
    return "\n".join(lines)
