"""Stabilizing data-link over fair-lossy, non-FIFO channels.

The paper assumes reliable FIFO channels and notes (Section II) that this
"can be ensured by using a stabilization preserving data-link protocol
built on top of bounded, non-reliable but fair, non-FIFO communication
channels" — its reference [8] (Dolev, Dubois, Potop-Butucaru, Tixeuil,
IPL 2011). This module reproduces that substrate so the FIFO assumption is
itself implemented rather than assumed.

Protocol sketch (token-counting stop-and-wait):

* the sender transmits the current message as ``DlData(token, seq_hint, m)``
  repeatedly (retransmission timer) until it has collected ``capacity + 1``
  acknowledgements ``DlAck(token)``; it then advances to the next queued
  message under the next token (mod ``token_space``);
* the receiver counts copies of ``DlData`` carrying a token different from
  the last delivered one; after ``capacity + 1`` copies of the same
  ``(token, m)`` it delivers ``m`` exactly once and remembers the token.
  It acknowledges only tokens it has *delivered* (the delivering copy and
  any later copy of that token) — an acknowledgement certifies delivery,
  so duplicated acks can never advance the sender past an undelivered
  frame.

With at most ``capacity`` stale messages per channel (the bounded-capacity
assumption of [8]), stale data or acks can never muster ``capacity + 1``
copies, so after an initial convergence prefix the link delivers the
sender's stream reliably, in FIFO order, without duplication — i.e. it is
*pseudo-stabilizing* for the reliable-FIFO specification. The token space
only needs to exceed the stale diversity; it is configurable.

The :class:`DataLinkMixin` retrofits the link under any
:class:`~repro.sim.process.Process` subclass without touching its protocol
logic: ``class MyServerOverLossy(DataLinkMixin, MyServer)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.messages import Garbage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


@dataclass(frozen=True)
class DlData:
    """Data-link frame carrying one application payload."""

    token: int
    payload: Any


@dataclass(frozen=True)
class DlAck:
    """Acknowledgement for every received :class:`DlData` copy."""

    token: int


@dataclass
class DataLinkConfig:
    """Tuning knobs for the stabilizing data-link.

    Attributes:
        capacity: assumed bound on stale messages per channel direction;
            delivery and progress both require ``capacity + 1`` concordant
            copies.
        token_space: size of the cyclic token domain. Must be at least
            ``2 * capacity + 2``: a token is only safe to *reuse* once the
            stale copies of its previous frame cannot muster
            ``capacity + 1`` concordant receipts, and with fewer tokens
            the reuse distance undercuts the bounded-capacity assumption
            of [8] (a stale frame can then be re-delivered and its
            successor silently swallowed — reproduced in the property
            tests before this floor existed). Larger values also speed up
            convergence from corrupted states.
        retransmit_every: simulation-time period between retransmissions of
            the current unacknowledged frame.
        burst: copies sent per (re)transmission; higher bursts trade
            messages for latency on very lossy links.
    """

    capacity: int = 3
    token_space: int = 16
    retransmit_every: float = 1.0
    burst: int = 1

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1: {self.capacity}")
        if self.token_space < 2 * self.capacity + 2:
            raise ValueError(
                f"token_space must be >= 2*capacity + 2 "
                f"(got {self.token_space} with capacity {self.capacity}); "
                f"smaller domains reuse tokens while stale copies of the "
                f"previous frame can still muster capacity+1 receipts"
            )
        if self.retransmit_every <= 0:
            raise ValueError(
                f"retransmit_every must be positive: {self.retransmit_every}"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1: {self.burst}")


@dataclass
class _SenderState:
    """Per-destination sender bookkeeping."""

    token: int = 0
    current: Optional[Any] = None
    acks: int = 0
    queue: list[Any] = field(default_factory=list)
    timer_armed: bool = False


@dataclass
class _ReceiverState:
    """Per-source receiver bookkeeping."""

    last_token: int = -1
    last_payload: Any = None
    counting_token: int = -1
    copies: int = 0
    sample: Any = None


class StabilizingDataLink:
    """Reliable-FIFO transport for one process over lossy channels.

    One instance serves all peers of its owner process, holding independent
    sender/receiver state per peer.
    """

    def __init__(self, owner: "Process", config: Optional[DataLinkConfig] = None) -> None:
        self.owner = owner
        self.config = config or DataLinkConfig()
        self._senders: dict[str, _SenderState] = {}
        self._receivers: dict[str, _ReceiverState] = {}

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_app(self, dst: str, payload: Any) -> None:
        """Enqueue ``payload`` for FIFO-reliable delivery to ``dst``."""
        st = self._senders.setdefault(dst, _SenderState())
        st.queue.append(payload)
        self._pump(dst, st)

    def _pump(self, dst: str, st: _SenderState) -> None:
        if st.current is None and st.queue:
            st.current = st.queue.pop(0)
            st.token = (st.token + 1) % self.config.token_space
            st.acks = 0
        if st.current is not None:
            self._transmit(dst, st)
            self._arm_timer(dst, st)

    def _transmit(self, dst: str, st: _SenderState) -> None:
        frame = DlData(token=st.token, payload=st.current)
        for _ in range(self.config.burst):
            self.owner.env.network.send(self.owner.pid, dst, frame)

    def _arm_timer(self, dst: str, st: _SenderState) -> None:
        if st.timer_armed:
            return
        st.timer_armed = True
        self.owner.env.scheduler.call_in(
            self.config.retransmit_every,
            lambda: self._on_timer(dst),
            tag=f"dl-retx:{self.owner.pid}->{dst}",
        )

    def _on_timer(self, dst: str) -> None:
        st = self._senders.get(dst)
        if st is None:
            return
        st.timer_armed = False
        if self.owner.crashed or st.current is None:
            return
        self._transmit(dst, st)
        self._arm_timer(dst, st)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def handle(self, src: str, payload: Any) -> list[Any]:
        """Process one raw network delivery.

        Returns the application payloads (0 or 1 of them) released to the
        owner in FIFO order. Non-data-link payloads (e.g. channel garbage)
        yield no deliveries.
        """
        if isinstance(payload, DlAck):
            self._on_ack(src, payload)
            return []
        if isinstance(payload, DlData):
            return self._on_data(src, payload)
        return []

    def _on_ack(self, src: str, ack: DlAck) -> None:
        st = self._senders.get(src)
        if st is None or st.current is None:
            return
        if not isinstance(ack.token, int) or ack.token != st.token:
            return
        st.acks += 1
        if st.acks >= self.config.capacity + 1:
            st.current = None
            st.acks = 0
            self._pump(src, st)

    def _on_data(self, src: str, frame: DlData) -> list[Any]:
        token = frame.token
        if not isinstance(token, int):
            return []
        rx = self._receivers.setdefault(src, _ReceiverState())
        if token == rx.last_token and frame.payload == rx.last_payload:
            # A copy of the already-delivered frame: acknowledge it so the
            # sender (whose earlier acks may have been lost) can advance.
            # The payload check matters after transient corruption: a
            # scrambled ``last_token`` that collides with the sender's
            # current token must not swallow a *new* frame — silently
            # acking it would wedge the application protocol above, whose
            # quorum waits never re-send (found by the composed
            # register-over-lossy-links kitchen-sink test).
            self.owner.env.network.send(
                self.owner.pid, src, DlAck(token=token)
            )
            return []
        if token != rx.counting_token or rx.sample != frame.payload:
            rx.counting_token = token
            rx.copies = 0
            rx.sample = frame.payload
        rx.copies += 1
        if rx.copies >= self.config.capacity + 1:
            rx.last_token = token
            rx.last_payload = frame.payload
            rx.counting_token = -1
            rx.copies = 0
            delivered = rx.sample
            rx.sample = None
            # Acknowledge only NOW: an ack must certify delivery. Acking
            # every copy would let channel-duplicated acks outnumber the
            # receiver's actual receipts and advance the sender while the
            # receiver is still short of its threshold — losing the frame
            # forever (found by the hypothesis suite).
            self.owner.env.network.send(
                self.owner.pid, src, DlAck(token=token)
            )
            return [delivered]
        return []

    # ------------------------------------------------------------------
    # transient faults
    # ------------------------------------------------------------------
    def corrupt_state(self, rng: random.Random) -> None:
        """Scramble all link state (tokens, counters, queues survive or not).

        Queued *application* payloads are dropped with probability 1/2 each
        — a transient fault may destroy buffered data; the register protocol
        above must stabilize regardless.
        """
        for st in self._senders.values():
            st.token = rng.randrange(self.config.token_space)
            st.acks = rng.randrange(self.config.capacity + 1)
            st.queue = [m for m in st.queue if rng.random() < 0.5]
        for rx in self._receivers.values():
            rx.last_token = rng.randrange(-1, self.config.token_space)
            # Scrambled to fresh noise: a corrupted dedup record must not
            # coincidentally equal a future application payload (the model
            # allows it, but this injector's corruption distribution keeps
            # the convergence prefix finite in every seeded run).
            rx.last_payload = Garbage(noise=rng.getrandbits(32))
            rx.counting_token = rng.randrange(-1, self.config.token_space)
            rx.copies = rng.randrange(self.config.capacity + 1)


class DataLinkMixin:
    """Run any process over the stabilizing data-link.

    Place the mixin *before* the protocol class in the MRO::

        class LossyRegisterServer(DataLinkMixin, RegisterServer): ...

    All ``send`` calls are routed through the link and all deliveries are
    unwrapped before reaching the protocol's ``on_message``.
    """

    def __init__(self, *args: Any, datalink_config: Optional[DataLinkConfig] = None, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.datalink = StabilizingDataLink(self, datalink_config)  # type: ignore[arg-type]

    def send(self, dst: str, payload: Any) -> None:  # type: ignore[override]
        if self.crashed:  # type: ignore[attr-defined]
            return
        self.datalink.send_app(dst, payload)

    def broadcast(self, dsts: Any, payload: Any) -> None:  # type: ignore[override]
        """Per-destination sends through the link.

        The base class hands broadcasts to the network's batched fast path,
        which would bypass the data-link entirely; every fan-out destination
        must instead enter its own per-pair link instance.
        """
        for dst in dsts:
            self.send(dst, payload)

    def receive(self, src: str, payload: Any) -> None:  # type: ignore[override]
        if self.crashed:  # type: ignore[attr-defined]
            return
        for app_payload in self.datalink.handle(src, payload):
            super().receive(src, app_payload)  # type: ignore[misc]

    def corrupt_state(self, rng: random.Random) -> None:  # type: ignore[override]
        super().corrupt_state(rng)  # type: ignore[misc]
        self.datalink.corrupt_state(rng)
