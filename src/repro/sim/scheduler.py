"""The discrete-event scheduler.

A :class:`Scheduler` owns the clock and the event queue and exposes the
usual ``call_at`` / ``call_in`` / ``run`` interface. It is deliberately
minimal: processes, channels and fault injectors are all just event
producers; the scheduler knows nothing about them.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue


class Scheduler:
    """Deterministic discrete-event scheduler.

    Args:
        max_events: hard cap on the number of events executed over the
            scheduler's lifetime; exceeding it raises
            :class:`SimulationError`. This is a safety net against protocol
            bugs that generate unbounded message storms, sized far above any
            legitimate experiment.
    """

    def __init__(self, max_events: int = 50_000_000) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.max_events = max_events
        self.executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (checker/metric use only)."""
        return self.clock.now

    def call_at(self, time: float, fn: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``fn`` at absolute time ``time`` (>= now)."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < {self.clock.now}"
            )
        return self.queue.push(time, fn, tag=tag)

    def call_at_many(
        self, entries: list[tuple[float, Callable[[], None], str]]
    ) -> list[Event]:
        """Schedule a batch of ``(time, fn, tag)`` events in one insertion.

        Equivalent to calling :meth:`call_at` per entry (same validation,
        same tie-breaking order) with the per-call overhead paid once —
        the network's broadcast fast path plans a whole fan-out this way.
        """
        now = self.clock.now
        for time, _fn, _tag in entries:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event in the past: {time} < {now}"
                )
        return self.queue.push_many(entries)

    def call_in(self, delay: float, fn: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``fn`` after ``delay`` time units (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.queue.push(self.clock.now + delay, fn, tag=tag)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        ev = self.queue.pop()
        if ev is None:
            return False
        self.clock.advance_to(ev.time)
        self.executed += 1
        if self.executed > self.max_events:
            raise SimulationError(
                f"event budget exhausted ({self.max_events} events) — "
                "likely a message storm or livelock"
            )
        ev.fn()
        return True

    def run(self, until: Optional[float] = None) -> int:
        """Drain the queue, optionally stopping at simulation time ``until``.

        Returns the number of events executed by this call. With ``until``
        set, events scheduled strictly after it remain queued and the clock
        is left at the last executed event's time (or unchanged if none ran).
        """
        if self._running:
            raise SimulationError("re-entrant Scheduler.run")
        self._running = True
        count = 0
        # The unbounded drain is the simulator's hottest loop (hundreds of
        # thousands of events per experiment): inline `step` to skip one
        # peek and one function call per event. Semantics are identical —
        # pop, advance, budget-check, fire.
        queue = self.queue
        clock = self.clock
        try:
            if until is None:
                while True:
                    ev = queue.pop()
                    if ev is None:
                        break
                    clock.advance_to(ev.time)
                    self.executed += 1
                    if self.executed > self.max_events:
                        raise SimulationError(
                            f"event budget exhausted ({self.max_events} "
                            "events) — likely a message storm or livelock"
                        )
                    ev.fn()
                    count += 1
            else:
                while True:
                    t = queue.peek_time()
                    if t is None or t > until:
                        break
                    self.step()
                    count += 1
        finally:
            self._running = False
        return count

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_steps: Optional[int] = None,
    ) -> bool:
        """Run until ``predicate()`` holds (checked after every event).

        Returns ``True`` when the predicate became true, ``False`` if the
        queue drained (or ``max_steps`` elapsed) first.
        """
        if predicate():
            return True
        steps = 0
        while self.step():
            if predicate():
                return True
            steps += 1
            if max_steps is not None and steps >= max_steps:
                return False
        return False

    def idle(self) -> bool:
        """True when no live events remain."""
        return len(self.queue) == 0
