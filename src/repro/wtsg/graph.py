"""The weighted timestamp graph data structure.

Nodes are ``(timestamp, value)`` pairs rather than bare timestamps: a
Byzantine server may report a genuine timestamp with a forged value, and
demanding ``2f + 1`` witnesses *per pair* guarantees at least ``f + 1``
correct witnesses for the value actually returned. Weights count distinct
witnessing servers (a server contributes at most once per node however many
times it repeats itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Optional

from repro.labels.base import LabelingScheme


@dataclass(frozen=True)
class WtsgNode:
    """A vertex: one (timestamp, value) pair seen in replies."""

    timestamp: Hashable
    value: Hashable

    def __repr__(self) -> str:
        return f"Node(ts={self.timestamp!r}, v={self.value!r})"


class WeightedTimestampGraph:
    """Weighted directed graph over reported write timestamps.

    Construction is incremental (``add_witness``); edges follow the
    labeling scheme's ``≺`` and are materialized on demand since the reader
    only ever needs precedence among *qualified* nodes.

    Malformed timestamps (failing ``scheme.is_label``) are rejected at
    insertion — a corrupted or Byzantine reply can never crash the reader
    or pollute the graph with un-comparable vertices.
    """

    def __init__(self, scheme: LabelingScheme) -> None:
        self.scheme = scheme
        self._witnesses: dict[WtsgNode, set[str]] = {}
        self._current_witnesses: dict[WtsgNode, set[str]] = {}
        # Pairwise ≺ memo keyed by (timestamp, timestamp). Labels are
        # frozen and the scheme is immutable, so a verdict never changes;
        # the cache lets the O(V²) passes in `edges`/`maximal_among`/
        # `_terminal_scc_members` evaluate each ordered pair at most once
        # per graph however many of them a read executes.
        self._precedes_cache: dict[tuple[Hashable, Hashable], bool] = {}

    def _precedes(self, a: WtsgNode, b: WtsgNode) -> bool:
        """Memoized ``scheme.precedes`` on the nodes' timestamps."""
        key = (a.timestamp, b.timestamp)
        cached = self._precedes_cache.get(key)
        if cached is None:
            cached = self.scheme.precedes(a.timestamp, b.timestamp)
            self._precedes_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_witness(
        self, server_id: str, timestamp: Any, value: Any, current: bool = True
    ) -> bool:
        """Record that ``server_id`` vouches for ``(timestamp, value)``.

        ``current`` marks a witness reporting the pair as its *current*
        register copy (a reply) as opposed to a pair from its ``old_vals``
        history; the distinction feeds the return-node tie-break.

        Returns ``True`` when accepted, ``False`` when the timestamp is
        structurally invalid (defensively dropped) or the value unhashable.
        """
        if not self.scheme.is_label(timestamp):
            return False
        try:
            node = WtsgNode(timestamp=timestamp, value=value)
            bucket = self._witnesses.setdefault(node, set())
        except TypeError:
            return False  # unhashable garbage value
        bucket.add(server_id)
        if current:
            self._current_witnesses.setdefault(node, set()).add(server_id)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._witnesses)

    def nodes(self) -> Iterator[WtsgNode]:
        return iter(self._witnesses)

    def weight(self, node: WtsgNode) -> int:
        """Number of distinct servers witnessing ``node``."""
        return len(self._witnesses.get(node, ()))

    def witnesses(self, node: WtsgNode) -> frozenset[str]:
        return frozenset(self._witnesses.get(node, ()))

    def qualified(self, threshold: int) -> list[WtsgNode]:
        """Nodes with at least ``threshold`` witnesses."""
        return [
            node
            for node, servers in self._witnesses.items()
            if len(servers) >= threshold
        ]

    def edges(self) -> list[tuple[WtsgNode, WtsgNode]]:
        """All ≺-edges among *all witnessed* nodes (diagnostics / tests).

        O(V²) — the reader's hot path never calls this; it only compares
        qualified nodes, of which there are at most a handful.
        """
        nodes = list(self._witnesses)
        out = []
        for a in nodes:
            for b in nodes:
                if a is not b and self._precedes(a, b):
                    out.append((a, b))
        return out

    def maximal_among(self, nodes: Iterable[WtsgNode]) -> list[WtsgNode]:
        """Nodes of ``nodes`` not preceded by another node of ``nodes``."""
        pool = list(nodes)
        out = []
        for a in pool:
            if not any(
                b is not a and self._precedes(a, b) for b in pool
            ):
                out.append(a)
        return out

    def current_weight(self, node: WtsgNode) -> int:
        """Witnesses reporting ``node`` as their *current* register copy."""
        return len(self._current_witnesses.get(node, ()))

    def _terminal_scc_members(self, nodes: list[WtsgNode]) -> list[WtsgNode]:
        """Nodes in terminal SCCs of the ≺-subgraph induced by ``nodes``.

        The bounded labeling relation is *not transitive*, so stale
        qualified nodes can form precedence cycles with recent ones (an old
        label may accidentally dominate a much newer one whose ``next``
        computation never saw it). Plain maximality can then be empty or
        point at a stale node. Condensing the qualified subgraph into
        strongly connected components and keeping the *terminal* components
        (no outgoing edges) generalizes maximality soundly: with coherent
        labels every SCC is a singleton and this reduces to the usual
        maxima; under accidental cycles the most recent write is always
        inside a terminal component.
        """
        index = {node: i for i, node in enumerate(nodes)}
        succ: list[list[int]] = [[] for _ in nodes]
        for a in nodes:
            for b in nodes:
                if a is not b and self._precedes(a, b):
                    succ[index[a]].append(index[b])

        # Tarjan SCC (iterative; qualified sets are tiny, but recursion-free
        # keeps the checker safe under pathological corrupted inputs).
        n = len(nodes)
        ids = [-1] * n
        low = [0] * n
        on_stack = [False] * n
        stack: list[int] = []
        comp = [-1] * n
        counter = 0
        comp_count = 0
        for root in range(n):
            if ids[root] != -1:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                v, pi = work[-1]
                if pi == 0:
                    ids[v] = low[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack[v] = True
                advanced = False
                while pi < len(succ[v]):
                    w = succ[v][pi]
                    pi += 1
                    if ids[w] == -1:
                        work[-1] = (v, pi)
                        work.append((w, 0))
                        advanced = True
                        break
                    if on_stack[w]:
                        low[v] = min(low[v], ids[w])
                if advanced:
                    continue
                work[-1] = (v, pi)
                if pi >= len(succ[v]):
                    if low[v] == ids[v]:
                        while True:
                            w = stack.pop()
                            on_stack[w] = False
                            comp[w] = comp_count
                            if w == v:
                                break
                        comp_count += 1
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        low[parent] = min(low[parent], low[v])

        terminal = [True] * comp_count
        for v in range(n):
            for w in succ[v]:
                if comp[v] != comp[w]:
                    terminal[comp[v]] = False
        return [node for node in nodes if terminal[comp[index[node]]]]

    def select_maximal_qualified(self, threshold: int) -> Optional[WtsgNode]:
        """The node a read returns, or ``None`` (transitory phase).

        Among nodes with ``>= threshold`` witnesses, keep those in terminal
        strongly connected components of the precedence subgraph (see
        :meth:`_terminal_scc_members`), then pick the candidate most
        witnessed as *current*, breaking remaining ties deterministically
        by the scheme's structural sort key and the value representation —
        every correct reader facing the same evidence picks the same node,
        which the Consistency clause of the specification needs.
        """
        qualified = self.qualified(threshold)
        if not qualified:
            return None
        candidates = self._terminal_scc_members(qualified)
        if not candidates:  # pragma: no cover - SCC condensation is acyclic
            candidates = qualified
        return max(
            candidates,
            key=lambda n: (
                self.current_weight(n),
                tuple(self.scheme.sort_key(n.timestamp)),
                repr(n.value),
            ),
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_networkx(self):  # pragma: no cover - optional dependency path
        """Export to a ``networkx.DiGraph`` (node attr ``weight``)."""
        import networkx as nx

        g = nx.DiGraph()
        for node, servers in self._witnesses.items():
            g.add_node(node, weight=len(servers))
        for a, b in self.edges():
            g.add_edge(a, b)
        return g
