"""Weighted Timestamp Graphs (Definition 3 of the paper).

A WTsG is a node-weighted directed graph whose vertices are the write
timestamps reported by servers, whose node weight counts how many servers
witness that timestamp, and whose edges follow the labeling scheme's
precedence relation ``≺``. Readers build

* a *local* WTsG from the current ``(value, timestamp)`` replies, and
* a *union* WTsG that also folds in each server's reported history of
  recent writes (``old_vals``),

and return a value only when some node gathers at least ``2f + 1``
witnesses — enough to contain ``f + 1`` correct servers, so the value is
authentic. When several nodes qualify, the reader picks a *maximal*
qualified node (one not preceded by another qualified node), realizing
"return the last written value".
"""

from repro.wtsg.graph import WtsgNode, WeightedTimestampGraph
from repro.wtsg.analysis import (
    build_local_graph,
    build_union_graph,
    select_return_node,
)

__all__ = [
    "WtsgNode",
    "WeightedTimestampGraph",
    "build_local_graph",
    "build_union_graph",
    "select_return_node",
]
