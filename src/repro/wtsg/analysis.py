"""Builders and selection helpers for weighted timestamp graphs.

These free functions are the reader protocol's lines 09/15 (Figure 2a):
``compute_ts_graph`` and ``compute_ts_union_graph``, plus the
return-value selection rule shared by both phases.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping, Optional, Sequence

from repro.labels.base import LabelingScheme
from repro.wtsg.graph import WeightedTimestampGraph, WtsgNode

# One reply as the reader stores it: (server_id, value, timestamp).
Reply = tuple[str, Any, Hashable]
# One history entry as servers report them: (value, timestamp).
HistoryEntry = tuple[Any, Hashable]


def build_local_graph(
    scheme: LabelingScheme, replies: Iterable[Reply]
) -> WeightedTimestampGraph:
    """The local WTsG: current (value, timestamp) pairs only.

    Mirrors ``compute_ts_graph(replies_i)`` — each server witnesses exactly
    the single pair it reported as its current register copy.
    """
    graph = WeightedTimestampGraph(scheme)
    for server_id, value, timestamp in replies:
        graph.add_witness(server_id, timestamp, value)
    return graph


def build_union_graph(
    scheme: LabelingScheme,
    replies: Iterable[Reply],
    recent_vals: Mapping[str, Sequence[HistoryEntry]],
) -> WeightedTimestampGraph:
    """The union WTsG: current pairs plus each server's reported history.

    Mirrors ``compute_ts_union_graph(replies_i ∪ recent_vals_i[])`` — a
    server witnesses its current pair *and* every pair in the ``old_vals``
    window it sent. A server still counts once per node even when a pair
    appears both as its current value and in its history.
    """
    graph = WeightedTimestampGraph(scheme)
    for server_id, value, timestamp in replies:
        graph.add_witness(server_id, timestamp, value, current=True)
    for server_id, history in recent_vals.items():
        if not isinstance(history, (list, tuple)):
            continue  # corrupted history blob — ignore defensively
        for entry in history:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                continue
            value, timestamp = entry
            graph.add_witness(server_id, timestamp, value, current=False)
    return graph


def select_return_node(
    graph: WeightedTimestampGraph, threshold: int
) -> Optional[WtsgNode]:
    """The value-bearing node a read returns, or ``None`` to abort.

    Thin alias of :meth:`WeightedTimestampGraph.select_maximal_qualified`
    kept as a free function so experiment code reads like the paper
    ("if ∃ node ∈ TSG: node.weight >= 2f+1 then return node.value").
    """
    return graph.select_maximal_qualified(threshold)
