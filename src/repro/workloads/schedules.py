"""Fault schedules composing with any workload.

Thin wrappers over :class:`repro.sim.faults.FaultSchedule` specialized to
register systems: transient corruption hitting chosen fractions of servers
and clients at chosen instants, and client crash-stops.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence

from repro.sim.faults import FaultSchedule, random_subset


def corruption_schedule(
    system: Any,
    times: Sequence[float],
    server_fraction: float = 1.0,
    client_fraction: float = 1.0,
    corrupt_channels: bool = False,
    rng: Optional[random.Random] = None,
) -> FaultSchedule:
    """Transient corruption at each instant in ``times``.

    At every instant, each correct server (resp. client) is scrambled
    independently with probability ``server_fraction`` (``client_fraction``),
    and with ``corrupt_channels`` stale garbage messages are *injected*
    into the channels. Injection (not replacement) is the model-compliant
    channel corruption: the paper's channels are reliable — arbitrary
    *content* may sit in them at the initial configuration, but messages
    legitimately in flight are never destroyed (the stabilizing data-link
    of reference [8] guarantees exactly that). Destroying in-flight
    messages would exceed the fault model and can wedge the operation
    straddling the strike; :meth:`ChannelCorruptor.corrupt_in_flight`
    remains available to experiments that explore that regime explicitly
    (over the data-link substrate, which repairs it).
    The schedule must be armed before the run: ``schedule.arm(system.env)``.
    """
    rng = rng or system.env.spawn_rng("fault-schedule")
    schedule = FaultSchedule()
    for t in times:
        def strike(env: Any, _t: float = t) -> None:
            servers = random_subset(
                [p.pid for p in system.correct_servers()], rng, server_fraction
            )
            # Client corruption targets persistent cross-operation state;
            # in-operation temporaries are re-initialized at every
            # operation start (Figures 1-3, lines 01-03), so corruption is
            # applied between operations — a client hit *mid-operation* is
            # modelled by the separate crash schedule (see the client
            # corruption model note in DESIGN.md).
            clients = [
                cid
                for cid in random_subset(
                    list(system.clients), rng, client_fraction
                )
                if getattr(system.clients[cid], "idle", True)
            ]
            if servers:
                system.corrupt_servers(servers)
            if clients:
                system.corrupt_clients(clients)
            if corrupt_channels:
                from repro.sim.faults import ChannelCorruptor, garbage_forger

                corruptor = ChannelCorruptor(system.env.network, rng)
                pids = list(system.env.network.processes)
                for src in pids:
                    for dst in pids:
                        if src != dst and rng.random() < 0.3:
                            corruptor.inject_stale(
                                src,
                                dst,
                                lambda r: garbage_forger(None, r),
                                count=1,
                            )

        schedule.at(t, strike, label=f"corruption@{t}")
    return schedule


def crash_schedule(
    system: Any,
    crashes: Sequence[tuple],
    scramble_on_restart: bool = True,
) -> FaultSchedule:
    """Crash (and optionally restart) chosen clients at chosen times.

    Each event is ``(time, cid)`` — a crash-stop, the client stays down —
    or ``(time, cid, restart_at)`` with ``restart_at`` either ``None``
    (same thing) or an absolute instant ``> time`` at which the client
    recovers. A client crashed mid-operation settles that operation as
    ``CRASHED`` in the history at crash time (it is never left pending);
    a recovering client restarts with scrambled state by default (see
    :meth:`~repro.core.register.RegisterSystem.restart_client`) — the
    crash–restart transient-fault model the chaos nemeses exercise.
    """
    schedule = FaultSchedule()
    for event in crashes:
        t, cid = event[0], event[1]
        restart_at = event[2] if len(event) > 2 else None
        schedule.at(
            t,
            lambda env, c=cid: system.clients[c].crash(),
            label=f"crash {cid}@{t}",
        )
        if restart_at is None:
            continue
        if restart_at <= t:
            raise ValueError(
                f"restart must follow the crash: {restart_at} <= {t} "
                f"for client {cid!r}"
            )
        schedule.at(
            restart_at,
            lambda env, c=cid: system.restart_client(
                c, scramble=scramble_on_restart
            ),
            label=f"restart {cid}@{restart_at}",
        )
    return schedule
