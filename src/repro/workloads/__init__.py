"""Workload generation and execution.

Workloads are per-client *scripts* of operations with inter-operation
delays; the driver chains each client's script (respecting the protocol's
sequential-client rule) while different clients run concurrently, which is
how the experiments produce genuine read/write concurrency under the
deterministic scheduler.

Generators cover the paper's motivating patterns: read-heavy cloud
workloads, write bursts followed by quiescence (Assumption 2), and mixed
concurrent access. Fault schedules (transient corruption instants, client
crashes) compose with any workload.
"""

from repro.workloads.generators import (
    ScriptedOp,
    run_scripts,
    read_heavy_scripts,
    write_burst_scripts,
    mixed_scripts,
    unique_value,
)
from repro.workloads.schedules import corruption_schedule, crash_schedule

__all__ = [
    "ScriptedOp",
    "run_scripts",
    "read_heavy_scripts",
    "write_burst_scripts",
    "mixed_scripts",
    "unique_value",
    "corruption_schedule",
    "crash_schedule",
]
