"""Workload scripts and the concurrent script driver.

A script is a list of :class:`ScriptedOp` per client. The driver starts
each client's first operation after its delay, then chains the next
operation once the previous completes (plus its delay) — clients stay
sequential, the fleet runs concurrently.

Write values are globally unique (``unique_value``) so the regularity
checker can map read results back to writes unambiguously.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.process import OperationHandle
from repro.spec.history import OpKind


@dataclass
class ScriptedOp:
    """One scripted operation.

    Attributes:
        kind: read or write.
        value: the written value (ignored for reads).
        delay: simulation-time gap between the previous operation's
            completion (or the run start) and this invocation.
    """

    kind: OpKind
    value: Any = None
    delay: float = 0.0


def unique_value(client: str, index: int) -> str:
    """Globally unique write value, e.g. ``"c2.w7"``."""
    return f"{client}.w{index}"


def run_scripts(
    system: Any,
    scripts: dict[str, list[ScriptedOp]],
    drain: bool = True,
) -> list[OperationHandle]:
    """Execute per-client scripts concurrently; return all handles.

    ``system`` is any register system exposing ``clients``/``env`` and
    per-client ``write``/``read`` starters (the core system and every
    baseline do). With ``drain`` the scheduler runs until the event queue
    empties; a script whose operation never completes (a baseline wedged
    by corruption) leaves its handle pending — callers inspect handles or
    the history rather than crashing.

    Crash–restart semantics: a client crashing mid-operation settles that
    operation as ``CRASHED`` in the history (the crash path releases the
    handle), and the *rest* of its script is parked on the client via
    :meth:`~repro.sim.process.Process.when_restarted`. A client that never
    restarts simply loses its remaining script (crash-stop, the old
    behaviour); a restarted one resumes from the next scripted operation.
    """
    handles: list[OperationHandle] = []

    def start_next(cid: str, remaining: list[ScriptedOp]) -> None:
        if not remaining:
            return
        op, rest = remaining[0], remaining[1:]

        def begin() -> None:
            client = system.clients[cid]
            if client.crashed:
                # Park this and every later op until a restart (if ever).
                client.when_restarted(lambda: start_next(cid, remaining))
                return
            if op.kind is OpKind.WRITE:
                handle = client.write(op.value)
            else:
                handle = client.read()
            handles.append(handle)
            handle.on_done(lambda h: schedule_next(cid, h, rest))

        system.env.scheduler.call_in(op.delay, begin, tag=f"wl:{cid}")

    def schedule_next(
        cid: str, done: OperationHandle, rest: list[ScriptedOp]
    ) -> None:
        if done.failed:
            # The client crashed mid-operation: the op is already CRASHED
            # in the history; park the remainder for a possible restart.
            system.clients[cid].when_restarted(
                lambda: start_next(cid, rest)
            )
            return
        start_next(cid, rest)

    for cid, ops in scripts.items():
        if cid not in system.clients:
            raise SimulationError(f"script for unknown client {cid!r}")
        start_next(cid, list(ops))

    if drain:
        system.env.run()
    return handles


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def read_heavy_scripts(
    clients: list[str],
    rng: random.Random,
    ops_per_client: int = 10,
    write_fraction: float = 0.2,
    writer_clients: Optional[list[str]] = None,
    max_gap: float = 3.0,
) -> dict[str, list[ScriptedOp]]:
    """A read-dominated mix (the motivating cloud-storage pattern).

    Only ``writer_clients`` (default: the first client) issue writes, each
    with a unique value; everyone reads. Each writer's first operation is
    always a write, so every run contains the anchor write that
    pseudo-stabilization converges on (Assumption 1).
    """
    writers = set(writer_clients if writer_clients is not None else clients[:1])
    scripts: dict[str, list[ScriptedOp]] = {}
    for cid in clients:
        ops: list[ScriptedOp] = []
        for i in range(ops_per_client):
            delay = rng.uniform(0.0, max_gap)
            first_writer_op = cid in writers and i == 0
            if cid in writers and (
                first_writer_op or rng.random() < write_fraction
            ):
                ops.append(
                    ScriptedOp(OpKind.WRITE, unique_value(cid, i), delay)
                )
            else:
                ops.append(ScriptedOp(OpKind.READ, delay=delay))
        scripts[cid] = ops
    return scripts


def write_burst_scripts(
    writer: str,
    readers: list[str],
    burst_len: int = 5,
    quiescence: float = 30.0,
    bursts: int = 2,
    reads_per_reader: int = 6,
    rng: Optional[random.Random] = None,
) -> dict[str, list[ScriptedOp]]:
    """Write bursts separated by quiescence (Assumption 2's regime).

    The writer fires ``bursts`` back-to-back bursts of ``burst_len`` writes
    with a long quiet gap after each; readers read throughout. Bursts no
    longer than the servers' ``old_vals`` window are the regime the
    correctness proof covers; E7 pushes past the window deliberately.
    """
    rng = rng or random.Random(0)
    scripts: dict[str, list[ScriptedOp]] = {}
    wops: list[ScriptedOp] = []
    index = 0
    for _ in range(bursts):
        for b in range(burst_len):
            wops.append(
                ScriptedOp(OpKind.WRITE, unique_value(writer, index), 0.0)
            )
            index += 1
        if wops:
            wops[-1] = ScriptedOp(
                OpKind.WRITE, wops[-1].value, wops[-1].delay
            )
        wops.append(ScriptedOp(OpKind.READ, delay=quiescence))
    scripts[writer] = wops
    for cid in readers:
        scripts[cid] = [
            ScriptedOp(OpKind.READ, delay=rng.uniform(1.0, 8.0))
            for _ in range(reads_per_reader)
        ]
    return scripts


def mixed_scripts(
    clients: list[str],
    rng: random.Random,
    ops_per_client: int = 8,
    write_fraction: float = 0.5,
    max_gap: float = 2.0,
) -> dict[str, list[ScriptedOp]]:
    """Aggressive concurrent read/write mix — every client does both.

    Small delays maximize overlap between clients, stressing concurrent
    MWMR ordering (Lemma 8) and the union-graph read path. The first
    client's first operation is always a write (the Assumption 1 anchor).
    """
    scripts: dict[str, list[ScriptedOp]] = {}
    for ci, cid in enumerate(clients):
        ops: list[ScriptedOp] = []
        for i in range(ops_per_client):
            delay = rng.uniform(0.0, max_gap)
            if (ci == 0 and i == 0) or rng.random() < write_fraction:
                ops.append(ScriptedOp(OpKind.WRITE, unique_value(cid, i), delay))
            else:
                ops.append(ScriptedOp(OpKind.READ, delay=delay))
        scripts[cid] = ops
    return scripts
