"""A stabilizing BFT key-value store, sharded over register deployments.

The paper builds one register; a storage *service* needs many named
objects. :class:`~repro.kvstore.store.StabilizingKVStore` composes them:
each key gets its own register deployment (servers + clients under a
per-key namespace), all sharing one simulation environment — faults,
adversaries and the clock are global, exactly like one cloud provider
hosting many customers' objects.

Every per-key register inherits the paper's guarantees independently:
``n >= 5f + 1`` replicas per shard, pseudo-stabilization after transient
corruption, tolerance of ``f`` Byzantine replicas per shard.
"""

from repro.kvstore.store import StabilizingKVStore

__all__ = ["StabilizingKVStore"]
