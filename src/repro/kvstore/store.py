"""The key-value store facade.

Design: one register deployment per key, created lazily, all on one
shared :class:`~repro.sim.environment.SimEnvironment`. Shards are
independent failure domains (per-shard Byzantine budget and state), but
share the global clock and network adversary — a fault schedule striking
"the datacenter" can scramble every shard at once, and each shard then
re-stabilizes on its own next write.

This is deliberately a *composition*, not a new protocol: the correctness
story is exactly the paper's, applied per key. The store adds the service
plumbing a downstream user expects — ``put``/``get``/``keys``, store-wide
fault injection, and a store-wide audit that checks every shard's history.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.client import ABORT
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem, ServerFactory
from repro.sim.adversary import Adversary
from repro.sim.environment import SimEnvironment
from repro.spec.regularity import RegularityVerdict
from repro.spec.stabilization import StabilizationReport, evaluate_stabilization


class StabilizingKVStore:
    """A keyspace of stabilizing BFT registers.

    Args:
        n / f: per-shard replication (validated per the paper's bound).
        seed: master seed for the shared environment.
        clients_per_key: clients provisioned per shard (``put``/``get``
            take a client index below this).
        adversary: shared network-delay policy.
        byzantine_factory: optional — when given, every shard gets ``f``
            Byzantine replicas built by this factory (the "compromised
            provider" scenario).
        trace: observability level for the shared environment (``off`` |
            ``stats`` | ``full``), reaching every shard — they all ride
            one network.
        shard_factory: optional hook replacing the shard *backend*: called
            as ``shard_factory(store, key, byzantine)`` and returning a
            register deployment exposing the :class:`RegisterSystem`
            operations surface (``write_sync``/``read_sync``/history/
            checker). This is the seam a live deployment tier plugs into —
            sharding ``put``/``get`` over
            :class:`~repro.net.cluster.LiveRegisterCluster` wrappers
            instead of simulated shards — without the store knowing which
            world it is in.
    """

    def __init__(
        self,
        n: int = 6,
        f: int = 1,
        seed: int = 0,
        clients_per_key: int = 2,
        adversary: Optional[Adversary] = None,
        byzantine_factory: Optional[ServerFactory] = None,
        trace: str = "stats",
        shard_factory: Optional[
            Callable[["StabilizingKVStore", str, Optional[dict]], Any]
        ] = None,
    ) -> None:
        self.n = n
        self.f = f
        self.seed = seed
        self.clients_per_key = clients_per_key
        self.byzantine_factory = byzantine_factory
        self.trace = trace
        self.shard_factory = shard_factory
        self.env = SimEnvironment(seed=seed, adversary=adversary, trace=trace)
        self.shards: dict[str, RegisterSystem] = {}
        self._fault_times: list[float] = []

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------
    def shard(self, key: str) -> RegisterSystem:
        """The register deployment backing ``key`` (created on first use)."""
        system = self.shards.get(key)
        if system is None:
            if ":" in key:
                raise ValueError(f"keys must not contain ':': {key!r}")
            byz = None
            if self.byzantine_factory is not None:
                byz = {
                    f"s{self.n - i - 1}": self.byzantine_factory
                    for i in range(self.f)
                }
            if self.shard_factory is not None:
                system = self.shard_factory(self, key, byz)
            else:
                system = RegisterSystem(
                    SystemConfig(n=self.n, f=self.f),
                    seed=self.seed,
                    n_clients=self.clients_per_key,
                    byzantine=byz,
                    env=self.env,
                    namespace=f"{key}:",
                )
            self.shards[key] = system
        return system

    def keys(self) -> list[str]:
        return sorted(self.shards)

    def _client(self, key: str, client: int) -> str:
        if not 0 <= client < self.clients_per_key:
            raise ValueError(
                f"client index {client} out of range "
                f"(clients_per_key={self.clients_per_key})"
            )
        return f"{key}:c{client}"

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, client: int = 0) -> Any:
        """Write ``value`` under ``key``; returns the write timestamp."""
        system = self.shard(key)
        return system.write_sync(self._client(key, client), value)

    def get(self, key: str, client: int = 0) -> Any:
        """Read ``key``; returns the value, :data:`ABORT`, or the initial
        ``None`` when nothing was ever written."""
        system = self.shard(key)
        return system.read_sync(self._client(key, client))

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def strike(self, corrupt_clients: bool = True) -> float:
        """Datacenter-wide transient fault: scramble every shard now.

        Returns the strike time (pass it to :meth:`audit`).
        """
        when = self.env.now
        for system in self.shards.values():
            system.corrupt_servers()
            if corrupt_clients:
                system.corrupt_clients()
        self._fault_times.append(when)
        return when

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------
    def audit(
        self, last_fault_time: Optional[float] = None
    ) -> dict[str, StabilizationReport | RegularityVerdict]:
        """Judge every shard's history.

        With a fault time (default: the last strike, if any) shards are
        held to the pseudo-stabilization standard; otherwise to plain
        regularity.
        """
        if last_fault_time is None and self._fault_times:
            last_fault_time = self._fault_times[-1]
        verdicts: dict[str, Any] = {}
        for key, system in self.shards.items():
            if last_fault_time is not None:
                verdicts[key] = evaluate_stabilization(
                    system.history,
                    system.checker(),
                    last_fault_time=last_fault_time,
                )
            else:
                verdicts[key] = system.check_regularity()
        return verdicts

    def all_ok(self, last_fault_time: Optional[float] = None) -> bool:
        """True when every shard passes its audit."""
        return all(
            getattr(v, "stabilized", None)
            if hasattr(v, "stabilized")
            else v.ok
            for v in self.audit(last_fault_time).values()
        )

    @property
    def message_stats(self):
        return self.env.network.stats
