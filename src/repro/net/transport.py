"""The transport seam: where simulated and live deployments diverge.

Everything above this module — the protocol automata, the history
recorder, the spec checkers — is transport-agnostic. A
:class:`Transport` moves ``(src, dst, payload)`` triples between named
processes and tells locally attached processes about arrivals; the two
backends are:

* :class:`SimTransport` — the existing simulator. Deliveries run through
  the scheduler, the latency adversary and the per-pair channel policies,
  so code written against the seam inherits every deterministic-replay
  guarantee of the sim.
* :class:`StreamTransport` — asyncio TCP or unix-domain streams framed by
  the ``repro-wire/1`` codec (:mod:`repro.net.wire`). Deliveries are
  whenever the kernel says so; determinism of the *schedule* is
  explicitly not promised (see ``docs/LIVE.md``), only faithfulness of
  the payloads.

Both directions share :class:`~repro.sim.tracing.MessageStats`, so the
message-complexity accounting of live runs is comparable with simulated
ones.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from repro.net.wire import (
    FrameAssembler,
    WireError,
    decode_envelope,
    decode_hello,
    encode_envelope,
    hello_frame,
)
from repro.sim.environment import SimEnvironment
from repro.sim.messages import Envelope
from repro.sim.process import Process
from repro.sim.tracing import MessageStats

__all__ = [
    "Transport",
    "SimTransport",
    "StreamConnection",
    "StreamTransport",
    "parse_address",
    "format_address",
]

ReceiveFn = Callable[[str, Any], None]


class Transport(ABC):
    """Moves payloads between named processes.

    A transport instance serves one *host* — the group of processes living
    in the caller's address space (one daemon's server, one endpoint's
    client). ``attach`` declares those local processes; ``send`` routes to
    anyone reachable, local or remote.
    """

    def __init__(self) -> None:
        self.stats = MessageStats()

    @abstractmethod
    def attach(self, pid: str, receive: ReceiveFn) -> None:
        """Register a local process; ``receive(src, payload)`` on arrival."""

    @abstractmethod
    def send(self, src: str, dst: str, payload: Any) -> None:
        """Best-effort delivery of ``payload`` to ``dst``.

        Unroutable destinations are dropped and counted, mirroring
        :meth:`repro.sim.network.Network.send` — corrupted server state
        can name phantom readers, and that must not crash a live daemon
        any more than it crashes the sim.
        """


# ----------------------------------------------------------------------
# backend 1: the simulator
# ----------------------------------------------------------------------
class _SimStub(Process):
    """A sim process standing in for a transport-attached endpoint."""

    def __init__(self, pid: str, env: SimEnvironment, receive: ReceiveFn) -> None:
        super().__init__(pid, env)
        self._receive = receive

    def on_message(self, src: str, payload: Any) -> None:
        self._receive(src, payload)


class SimTransport(Transport):
    """The deterministic simulator as a transport backend.

    Attached processes become first-class sim processes: deliveries obey
    the environment's adversary, channel policies and event ordering, and
    draining ``env`` drives all pending traffic. Useful for exercising
    transport-seam machinery under the full replay discipline before
    pointing it at real sockets.
    """

    def __init__(self, env: SimEnvironment) -> None:
        super().__init__()
        self.env = env
        self.stats = env.network.stats  # share the sim's accounting

    def attach(self, pid: str, receive: ReceiveFn) -> None:
        _SimStub(pid, self.env, receive)

    def send(self, src: str, dst: str, payload: Any) -> None:
        self.env.network.send(src, dst, payload)


# ----------------------------------------------------------------------
# backend 2: asyncio streams
# ----------------------------------------------------------------------
class StreamConnection:
    """One framed, identified stream to a peer.

    Owns the read pump: every inbound frame is decoded and handed to
    ``on_envelope``; frames that fail to decode are counted as corrupted
    and dropped (a live channel can carry garbage; correct hosts shrug).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: MessageStats,
        on_envelope: Callable[["StreamConnection", Envelope], None],
        on_close: Optional[Callable[["StreamConnection"], None]] = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.stats = stats
        self.peer_pid: Optional[str] = None
        self._on_envelope = on_envelope
        self._on_close = on_close
        self._assembler = FrameAssembler()
        self._extra: list[bytes] = []  # frames read past the HELLO
        self._pump: Optional[asyncio.Task] = None
        self.closed = False

    # -- handshake -----------------------------------------------------
    def send_hello(self, pid: str) -> None:
        self.writer.write(hello_frame(pid))

    async def expect_hello(self, timeout: float = 10.0) -> str:
        """Read frames until the peer identifies itself (or fails to)."""
        frame = await asyncio.wait_for(self._read_frame(), timeout)
        if frame is None:
            raise WireError("connection closed before HELLO")
        self.peer_pid = decode_hello(frame)
        return self.peer_pid

    # -- frames --------------------------------------------------------
    async def _read_frame(self) -> Optional[bytes]:
        while True:
            data = await self.reader.read(65536)
            if not data:
                return None
            frames = self._assembler.feed(data)
            if frames:
                # Frames that arrived piggybacked on the HELLO bytes are
                # replayed by the pump in order.
                self._extra = frames[1:]
                return frames[0]

    def send_envelope(self, env: Envelope) -> None:
        """Queue one envelope on the stream (no await: writes are buffered
        and flushed by the event loop; loopback benches never build enough
        backlog for backpressure to matter, and the proxy throttles the
        adversarial cases)."""
        if self.closed:
            return
        self.writer.write(encode_envelope(env))

    # -- pump ----------------------------------------------------------
    def start_pump(self) -> None:
        self._pump = asyncio.get_running_loop().create_task(self._run_pump())

    async def _run_pump(self) -> None:
        try:
            for frame in self._extra:
                self._dispatch(frame)
            self._extra = []
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                try:
                    frames = self._assembler.feed(data)
                except WireError:
                    # Desynchronized stream (garbage length word): the
                    # connection is unrecoverable, but the host is not.
                    self.stats.corrupted += 1
                    break
                for frame in frames:
                    self._dispatch(frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await self.close()

    def _dispatch(self, frame: bytes) -> None:
        try:
            env = decode_envelope(frame)
        except WireError:
            self.stats.corrupted += 1
            return
        self.stats.note_delivery(env.payload)
        self._on_envelope(self, env)

    # -- lifecycle -----------------------------------------------------
    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._pump is not None and self._pump is not asyncio.current_task():
            self._pump.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        if self._on_close is not None:
            self._on_close(self)


class StreamTransport(Transport):
    """Routing over a set of identified :class:`StreamConnection` peers.

    Subclass-free: daemons and endpoints both use it, differing only in
    how connections come to exist (accepted vs dialed — that wiring lives
    in :mod:`repro.net.daemon`).
    """

    def __init__(self) -> None:
        super().__init__()
        self._local: dict[str, ReceiveFn] = {}
        self._peers: dict[str, StreamConnection] = {}

    # -- Transport -----------------------------------------------------
    def attach(self, pid: str, receive: ReceiveFn) -> None:
        self._local[pid] = receive

    def send(self, src: str, dst: str, payload: Any) -> None:
        local = self._local.get(dst)
        if local is not None:
            # Same-host shortcut (a daemon forwarding to itself); still
            # counted, never serialized.
            self.stats.note_send(src, payload)
            self.stats.note_delivery(payload)
            local(src, payload)
            return
        conn = self._peers.get(dst)
        if conn is None or conn.closed:
            self.stats.dropped += 1
            return
        self.stats.note_send(src, payload)
        conn.send_envelope(Envelope(src=src, dst=dst, payload=payload))

    # -- peer management -----------------------------------------------
    def bind_peer(self, pid: str, conn: StreamConnection) -> None:
        """Route traffic for ``pid`` over ``conn`` (latest wins)."""
        self._peers[pid] = conn

    def drop_peer(self, conn: StreamConnection) -> None:
        for pid, existing in list(self._peers.items()):
            if existing is conn:
                del self._peers[pid]

    def peers(self) -> list[str]:
        return sorted(self._peers)

    def deliver_local(self, dst: str, src: str, payload: Any) -> bool:
        """Hand an inbound payload to an attached process (False: no such
        process — the live analogue of the sim's unknown-dst drop)."""
        local = self._local.get(dst)
        if local is None:
            self.stats.dropped += 1
            return False
        local(src, payload)
        return True

    async def close(self) -> None:
        for conn in list(self._peers.values()):
            await conn.close()
        self._peers.clear()


# ----------------------------------------------------------------------
# addresses
# ----------------------------------------------------------------------
def parse_address(spec: str) -> tuple[str, Any]:
    """Parse ``tcp:HOST:PORT`` or ``unix:PATH`` into (family, detail)."""
    if spec.startswith("unix:"):
        return ("unix", spec[len("unix:") :])
    body = spec[len("tcp:") :] if spec.startswith("tcp:") else spec
    host, sep, port = body.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad address {spec!r}; want tcp:HOST:PORT or unix:PATH")
    return ("tcp", (host or "127.0.0.1", int(port)))


def format_address(family: str, detail: Any) -> str:
    if family == "unix":
        return f"unix:{detail}"
    host, port = detail
    return f"tcp:{host}:{port}"


async def open_connection(address: str) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``address`` (either family)."""
    family, detail = parse_address(address)
    if family == "unix":
        return await asyncio.open_unix_connection(detail)
    host, port = detail
    return await asyncio.open_connection(host, port)


async def start_server(address: str, handler) -> tuple[asyncio.AbstractServer, str]:
    """Listen on ``address``; returns (server, actual address).

    ``tcp:HOST:0`` binds an ephemeral port; the returned address carries
    the real one so callers can wire clients to it.
    """
    family, detail = parse_address(address)
    if family == "unix":
        server = await asyncio.start_unix_server(handler, path=detail)
        return server, format_address("unix", detail)
    host, port = detail
    server = await asyncio.start_server(handler, host=host, port=port)
    bound = server.sockets[0].getsockname()
    return server, format_address("tcp", (host, bound[1]))
