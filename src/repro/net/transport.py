"""The transport seam: where simulated and live deployments diverge.

Everything above this module — the protocol automata, the history
recorder, the spec checkers — is transport-agnostic. A
:class:`Transport` moves ``(src, dst, payload)`` triples between named
processes and tells locally attached processes about arrivals; the two
backends are:

* :class:`SimTransport` — the existing simulator. Deliveries run through
  the scheduler, the latency adversary and the per-pair channel policies,
  so code written against the seam inherits every deterministic-replay
  guarantee of the sim.
* :class:`StreamTransport` — asyncio TCP or unix-domain streams framed by
  a ``repro-wire`` codec (:mod:`repro.net.wire`; v2 binary by default,
  v1 JSON by configuration). Deliveries are whenever the kernel says so;
  determinism of the *schedule* is explicitly not promised (see
  ``docs/LIVE.md``), only faithfulness of the payloads.

Both directions share :class:`~repro.sim.tracing.MessageStats`, so the
message-complexity accounting of live runs is comparable with simulated
ones.

:class:`StreamConnection` is an :class:`asyncio.Protocol`, not a
StreamReader pump: inbound bytes dispatch synchronously from
``data_received`` (no per-frame task wakeups), and outbound envelopes
*coalesce* — encoded frames accumulate in a buffer that flushes either on
the next event-loop tick (``call_soon``) or as soon as it crosses a
tunable watermark, so a burst of n messages to one peer costs one
``send(2)`` instead of n. TCP_NODELAY (asyncio's default) makes the
flush leave the host immediately; the watermark bounds latency under
sustained load.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from repro.net.wire import (
    DEFAULT_WIRE,
    FrameAssembler,
    WireError,
    get_codec,
)
from repro.sim.environment import SimEnvironment
from repro.sim.messages import Envelope
from repro.sim.process import Process
from repro.sim.tracing import MessageStats

__all__ = [
    "Transport",
    "SimTransport",
    "StreamConnection",
    "StreamTransport",
    "HostFlusher",
    "DEFAULT_FLUSH_WATERMARK",
    "parse_address",
    "format_address",
    "open_frame_connection",
    "start_frame_server",
]

ReceiveFn = Callable[[str, Any], None]


class Transport(ABC):
    """Moves payloads between named processes.

    A transport instance serves one *host* — the group of processes living
    in the caller's address space (one daemon's server, one endpoint's
    client). ``attach`` declares those local processes; ``send`` routes to
    anyone reachable, local or remote.
    """

    def __init__(self) -> None:
        self.stats = MessageStats()

    @abstractmethod
    def attach(self, pid: str, receive: ReceiveFn) -> None:
        """Register a local process; ``receive(src, payload)`` on arrival."""

    @abstractmethod
    def send(self, src: str, dst: str, payload: Any) -> None:
        """Best-effort delivery of ``payload`` to ``dst``.

        Unroutable destinations are dropped and counted, mirroring
        :meth:`repro.sim.network.Network.send` — corrupted server state
        can name phantom readers, and that must not crash a live daemon
        any more than it crashes the sim.
        """


# ----------------------------------------------------------------------
# backend 1: the simulator
# ----------------------------------------------------------------------
class _SimStub(Process):
    """A sim process standing in for a transport-attached endpoint."""

    def __init__(self, pid: str, env: SimEnvironment, receive: ReceiveFn) -> None:
        super().__init__(pid, env)
        self._receive = receive

    def on_message(self, src: str, payload: Any) -> None:
        self._receive(src, payload)


class SimTransport(Transport):
    """The deterministic simulator as a transport backend.

    Attached processes become first-class sim processes: deliveries obey
    the environment's adversary, channel policies and event ordering, and
    draining ``env`` drives all pending traffic. Useful for exercising
    transport-seam machinery under the full replay discipline before
    pointing it at real sockets.
    """

    def __init__(self, env: SimEnvironment) -> None:
        super().__init__()
        self.env = env
        self.stats = env.network.stats  # share the sim's accounting

    def attach(self, pid: str, receive: ReceiveFn) -> None:
        _SimStub(pid, self.env, receive)

    def send(self, src: str, dst: str, payload: Any) -> None:
        self.env.network.send(src, dst, payload)


# ----------------------------------------------------------------------
# backend 2: asyncio protocols
# ----------------------------------------------------------------------
#: Flush the coalescing buffer immediately once it holds this many bytes;
#: below it, frames batch until the end of the current dispatch burst. 64
#: KiB keeps a full quorum round's worth of replies in one syscall without
#: letting an open-loop burst build unbounded latency in user space.
DEFAULT_FLUSH_WATERMARK = 64 * 1024


class HostFlusher:
    """End-of-burst write coalescing shared by one host's connections.

    A protocol step usually emits its sends *synchronously* — a server
    answers from inside ``data_received``, a client fires the next phase's
    broadcast from inside the reply dispatch. Connections mark themselves
    dirty as frames accumulate; whoever finishes a dispatch burst calls
    :meth:`flush` and every buffered frame leaves in one write per
    connection. A ``call_soon`` backstop covers sends that originate
    outside any burst (an operation's opening broadcast from a coroutine),
    costing one loop callback per burst instead of one per frame.
    """

    __slots__ = ("_dirty", "_scheduled", "_in_burst")

    def __init__(self) -> None:
        self._dirty: list["StreamConnection"] = []
        self._scheduled = False
        # True while a connection of this host is inside data_received:
        # the end-of-burst flush is guaranteed, so marks need no backstop.
        self._in_burst = False

    def mark(self, conn: "StreamConnection") -> None:
        if not conn._dirty:
            conn._dirty = True
            self._dirty.append(conn)
            if not (self._scheduled or self._in_burst):
                self._scheduled = True
                conn._loop.call_soon(self.flush)

    def flush(self) -> None:
        self._scheduled = False
        dirty = self._dirty
        if not dirty:
            return
        self._dirty = []
        for conn in dirty:
            conn._dirty = False
            conn._flush()


class StreamConnection(asyncio.Protocol):
    """One framed, identified, *pipelined* stream to a peer.

    Inbound: ``data_received`` feeds the assembler and dispatches every
    complete frame synchronously — no reader task, no pump wakeups.
    Frames that fail to decode are counted as corrupted and dropped (a
    live channel can carry garbage; correct hosts shrug).

    Outbound: :meth:`send_envelope` appends the encoded frame to a
    coalescing buffer. The buffer flushes as one ``transport.write`` when
    it crosses ``flush_watermark``, otherwise on the next loop tick — so
    the burst of messages a protocol step emits (a broadcast, a quorum of
    replies) leaves in a single writev-style send with no per-frame drain
    stalls.

    Construction is factory-style (the asyncio protocol contract): make
    the instance, hand it to ``loop.create_connection``/``create_server``
    via :func:`open_frame_connection`/:func:`start_frame_server`, then
    handshake with :meth:`send_hello`/:meth:`expect_hello` and finally
    :meth:`start_pump` to begin dispatching envelopes.
    """

    def __init__(
        self,
        stats: MessageStats,
        on_message: Callable[["StreamConnection", str, str, Any], None],
        on_close: Optional[Callable[["StreamConnection"], None]] = None,
        codec: Optional[Any] = None,
        flush_watermark: int = DEFAULT_FLUSH_WATERMARK,
        on_connected: Optional[Callable[["StreamConnection"], None]] = None,
        flusher: Optional[HostFlusher] = None,
    ) -> None:
        self.stats = stats
        self.codec = codec if codec is not None else get_codec(DEFAULT_WIRE)
        self.flush_watermark = flush_watermark
        self._flusher = flusher
        self._dirty = False
        self.peer_pid: Optional[str] = None
        self.transport: Optional[asyncio.Transport] = None
        self.closed = False
        self._on_message = on_message
        self._on_close = on_close
        self._on_connected = on_connected
        self._assembler = FrameAssembler()
        self._pending: list[bytes] = []  # frames received before start_pump
        self._pumping = False
        self._frame_waiter: Optional[asyncio.Future] = None
        self._out = bytearray()
        self._flush_scheduled = False
        self._close_notified = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Created in connection_made: an Event built here would bind the
        # loop that happens to be current (or, on 3.10+, none at all) at
        # construction time, not the loop the connection runs on.
        self._closed_event: Optional[asyncio.Event] = None

    # -- asyncio.Protocol ----------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        self._loop = asyncio.get_running_loop()
        self._closed_event = asyncio.Event()
        if self._on_connected is not None:
            self._on_connected(self)

    def data_received(self, data: bytes) -> None:
        try:
            frames = self._assembler.feed(data)
        except WireError:
            # Desynchronized stream (garbage length word): the connection
            # is unrecoverable, but the host is not.
            self.stats.corrupted += 1
            self._teardown()
            return
        flusher = self._flusher
        if flusher is not None:
            flusher._in_burst = True
        try:
            for frame in frames:
                waiter = self._frame_waiter
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame)
                elif self._pumping:
                    self._dispatch(frame)
                else:
                    # Piggybacked on the HELLO bytes; replayed by start_pump.
                    self._pending.append(frame)
        finally:
            # End of this dispatch burst: everything the protocol replied
            # with (on this or any sibling connection of the host) leaves
            # now, one coalesced write per connection — no per-frame loop
            # callbacks.
            if flusher is not None:
                flusher._in_burst = False
                flusher.flush()

    def connection_lost(self, exc: Optional[Exception]) -> None:
        self.closed = True
        if self._closed_event is not None:
            self._closed_event.set()
        waiter = self._frame_waiter
        if waiter is not None and not waiter.done():
            waiter.set_exception(WireError("connection closed before HELLO"))
        self._notify_close()

    # -- handshake -----------------------------------------------------
    def send_hello(self, pid: str) -> None:
        # The handshake is latency-bound, not throughput-bound: bypass
        # the coalescing buffer so the peer sees it on the first segment.
        if self.transport is not None:
            self.transport.write(self.codec.hello_frame(pid))

    async def expect_hello(self, timeout: float = 10.0) -> str:
        """Wait for the peer to identify itself (or fail to)."""
        frame = await asyncio.wait_for(self._next_frame(), timeout)
        self.peer_pid = self.codec.decode_hello(frame)
        return self.peer_pid

    async def _next_frame(self) -> bytes:
        if self._pending:
            return self._pending.pop(0)
        if self.closed:
            raise WireError("connection closed before HELLO")
        loop = asyncio.get_running_loop()
        self._frame_waiter = loop.create_future()
        try:
            return await self._frame_waiter
        finally:
            self._frame_waiter = None

    # -- outbound ------------------------------------------------------
    def send_envelope(self, env: Envelope) -> None:
        """Queue one envelope; see :meth:`send_payload`."""
        self.send_payload(env.src, env.dst, env.payload, env.send_time)

    def send_payload(
        self, src: str, dst: str, payload: Any, send_time: float = 0.0
    ) -> None:
        """Queue one message; coalesced with whatever else this tick
        produces (no await: backpressure never builds on loopback benches,
        and the fault proxy throttles the adversarial cases)."""
        if self.closed:
            return
        out = self._out
        self.codec.encode_payload_into(src, dst, send_time, payload, out)
        if len(out) >= self.flush_watermark:
            self._flush()
        elif self._flusher is not None:
            self._flusher.mark(self)
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._out or self.closed or self.transport is None:
            return
        # bytes() copy: uvloop keeps a reference to the buffer until the
        # kernel takes it, so handing over the mutable bytearray races.
        self.transport.write(bytes(self._out))
        self._out.clear()

    # -- inbound dispatch ----------------------------------------------
    def start_pump(self) -> None:
        """Begin dispatching envelopes (replaying any buffered frames)."""
        self._pumping = True
        pending, self._pending = self._pending, []
        for frame in pending:
            self._dispatch(frame)

    def _dispatch(self, frame: bytes) -> None:
        try:
            src, dst, _send_time, payload = self.codec.decode_parts(frame)
        except WireError:
            self.stats.corrupted += 1
            return
        self.stats.note_delivery(payload)
        self._on_message(self, src, dst, payload)

    # -- lifecycle -----------------------------------------------------
    def _notify_close(self) -> None:
        if not self._close_notified:
            self._close_notified = True
            if self._on_close is not None:
                self._on_close(self)

    def _teardown(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.transport is not None:
            self.transport.close()
        self._notify_close()

    async def close(self) -> None:
        if not self.closed:
            self._flush()  # drain coalesced frames before FIN
            self._teardown()
        if self._closed_event is None:
            return  # never connected: nothing to wait out
        try:
            await asyncio.wait_for(self._closed_event.wait(), 1.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass


class StreamTransport(Transport):
    """Routing over a set of identified :class:`StreamConnection` peers.

    Subclass-free: daemons and endpoints both use it, differing only in
    how connections come to exist (accepted vs dialed — that wiring lives
    in :mod:`repro.net.daemon`).
    """

    def __init__(self) -> None:
        super().__init__()
        self._local: dict[str, ReceiveFn] = {}
        self._peers: dict[str, StreamConnection] = {}
        #: Shared end-of-burst write coalescer for this host's connections
        #: (pass to every StreamConnection the host creates).
        self.flusher = HostFlusher()

    # -- Transport -----------------------------------------------------
    def attach(self, pid: str, receive: ReceiveFn) -> None:
        self._local[pid] = receive

    def send(self, src: str, dst: str, payload: Any) -> None:
        local = self._local.get(dst)
        if local is not None:
            # Same-host shortcut (a daemon forwarding to itself); still
            # counted, never serialized.
            self.stats.note_send(src, payload)
            self.stats.note_delivery(payload)
            local(src, payload)
            return
        conn = self._peers.get(dst)
        if conn is None or conn.closed:
            self.stats.dropped += 1
            return
        self.stats.note_send(src, payload)
        conn.send_payload(src, dst, payload)

    # -- peer management -----------------------------------------------
    def bind_peer(self, pid: str, conn: StreamConnection) -> None:
        """Route traffic for ``pid`` over ``conn`` (latest wins)."""
        self._peers[pid] = conn

    def drop_peer(self, conn: StreamConnection) -> None:
        for pid, existing in list(self._peers.items()):
            if existing is conn:
                del self._peers[pid]

    def peers(self) -> list[str]:
        return sorted(self._peers)

    def deliver_local(self, dst: str, src: str, payload: Any) -> bool:
        """Hand an inbound payload to an attached process (False: no such
        process — the live analogue of the sim's unknown-dst drop)."""
        local = self._local.get(dst)
        if local is None:
            self.stats.dropped += 1
            return False
        local(src, payload)
        return True

    async def close(self) -> None:
        for conn in list(self._peers.values()):
            await conn.close()
        self._peers.clear()


# ----------------------------------------------------------------------
# addresses
# ----------------------------------------------------------------------
def parse_address(spec: str) -> tuple[str, Any]:
    """Parse ``tcp:HOST:PORT`` or ``unix:PATH`` into (family, detail)."""
    if spec.startswith("unix:"):
        return ("unix", spec[len("unix:") :])
    body = spec[len("tcp:") :] if spec.startswith("tcp:") else spec
    host, sep, port = body.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad address {spec!r}; want tcp:HOST:PORT or unix:PATH")
    return ("tcp", (host or "127.0.0.1", int(port)))


def format_address(family: str, detail: Any) -> str:
    if family == "unix":
        return f"unix:{detail}"
    host, port = detail
    return f"tcp:{host}:{port}"


async def open_connection(address: str) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``address`` (either family)."""
    family, detail = parse_address(address)
    if family == "unix":
        return await asyncio.open_unix_connection(detail)
    host, port = detail
    return await asyncio.open_connection(host, port)


async def start_server(address: str, handler) -> tuple[asyncio.AbstractServer, str]:
    """Listen on ``address``; returns (server, actual address).

    ``tcp:HOST:0`` binds an ephemeral port; the returned address carries
    the real one so callers can wire clients to it.
    """
    family, detail = parse_address(address)
    if family == "unix":
        server = await asyncio.start_unix_server(handler, path=detail)
        return server, format_address("unix", detail)
    host, port = detail
    server = await asyncio.start_server(handler, host=host, port=port)
    bound = server.sockets[0].getsockname()
    return server, format_address("tcp", (host, bound[1]))


async def open_frame_connection(
    address: str, protocol_factory: Callable[[], StreamConnection]
) -> StreamConnection:
    """Dial ``address`` with a :class:`StreamConnection` protocol."""
    loop = asyncio.get_running_loop()
    family, detail = parse_address(address)
    if family == "unix":
        _, conn = await loop.create_unix_connection(protocol_factory, detail)
    else:
        host, port = detail
        _, conn = await loop.create_connection(protocol_factory, host, port)
    return conn


async def start_frame_server(
    address: str, protocol_factory: Callable[[], StreamConnection]
) -> tuple[asyncio.AbstractServer, str]:
    """Listen on ``address`` with :class:`StreamConnection` protocols.

    Same address contract as :func:`start_server`; connection setup (the
    HELLO handshake) belongs to the factory's ``on_connected`` hook.
    """
    loop = asyncio.get_running_loop()
    family, detail = parse_address(address)
    if family == "unix":
        server = await loop.create_unix_server(protocol_factory, detail)
        return server, format_address("unix", detail)
    host, port = detail
    server = await loop.create_server(protocol_factory, host=host, port=port)
    bound = server.sockets[0].getsockname()
    return server, format_address("tcp", (host, bound[1]))
