"""Event-loop selection for the live tier: uvloop when present, stdlib always.

uvloop is an optional accelerator (the ``perf`` extra in pyproject), not a
dependency: every live-tier feature runs identically on the stdlib loop,
and the codebase never imports uvloop outside this module. Callers ask
once, before any loop exists, and get told which runtime they got — the
benchmark artifact records it so numbers are never compared across
runtimes unknowingly.
"""

from __future__ import annotations

import asyncio

__all__ = ["install_event_loop"]


def install_event_loop(policy: str = "auto") -> str:
    """Install the asyncio event-loop policy; returns the runtime name.

    ``policy`` is ``"auto"`` (uvloop if importable, else stdlib),
    ``"uvloop"`` (require it; ImportError if absent) or ``"asyncio"``
    (force the stdlib loop even when uvloop is installed). Call before
    ``asyncio.run``; returns ``"uvloop"`` or ``"asyncio"``.
    """
    if policy not in ("auto", "uvloop", "asyncio"):
        raise ValueError(f"unknown loop policy {policy!r}")
    if policy == "asyncio":
        asyncio.set_event_loop_policy(asyncio.DefaultEventLoopPolicy())
        return "asyncio"
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        if policy == "uvloop":
            raise
        # auto: the advertised fallback — stdlib loop, identical semantics.
        asyncio.set_event_loop_policy(asyncio.DefaultEventLoopPolicy())
        return "asyncio"
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return "uvloop"
