"""Hosting the unmodified protocol classes behind real sockets.

A :class:`ServerDaemon` is one listening socket plus one
:class:`~repro.core.server.RegisterServer` (or a Byzantine zoo product —
the factory signature is the same ``ServerFactory`` the simulator's
:class:`~repro.core.register.RegisterSystem` takes). A
:class:`ClientEndpoint` is one :class:`~repro.core.client.RegisterClient`
plus a dialed connection to every server, with the client's
:class:`~repro.sim.process.OperationHandle` completions adapted onto
asyncio futures.

Identity is connection-scoped: each side names itself exactly once, in
the HELLO that opens the stream, and every subsequent inbound payload is
attributed to that pid regardless of what ``src`` the envelope claims.
That mirrors the simulator's authenticated per-process channels — a
Byzantine server can lie about *values* but cannot impersonate another
server mid-stream — which is an assumption the ``n > 5f`` bound needs.

Timeouts are the one failure mode streams add that the reliable-channel
simulator lacks: a dropped frame (fault proxy, peer death) can strand an
operation forever, since the protocol does not retransmit. The endpoint
maps an operation deadline onto the model's own vocabulary: the client
*crash–restarts* (history records CRASHED, protocol state reinitializes),
which the regularity checker and the stabilization story already account
for.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.core.client import RegisterClient
from repro.core.config import SystemConfig
from repro.core.server import RegisterServer
from repro.labels.alon import AlonLabelingScheme
from repro.labels.base import LabelingScheme
from repro.labels.ordering import MwmrOrdering
from repro.net.bridge import LiveClock, NetEnvironment
from repro.net.transport import (
    DEFAULT_FLUSH_WATERMARK,
    StreamConnection,
    StreamTransport,
    open_frame_connection,
    start_frame_server,
)
from repro.net.wire import DEFAULT_WIRE, WireError, get_codec
from repro.sim.process import OperationHandle, Process
from repro.spec.history import History, HistoryRecorder

__all__ = ["ServerDaemon", "ClientEndpoint", "TIMED_OUT", "default_scheme"]

# A live server factory: (pid, env, config, scheme) -> Process. Same shape
# as core.register.ServerFactory; env is duck-typed (NetEnvironment).
ServerFactory = Callable[[str, Any, SystemConfig, LabelingScheme], Process]


class _TimedOut:
    """Sentinel: the operation missed its deadline and the client
    crash-restarted. Distinct from ``ABORT`` (a protocol-level outcome)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TIMED_OUT"


TIMED_OUT = _TimedOut()


def default_scheme(config: SystemConfig, mwmr: bool = True) -> LabelingScheme:
    """The scheme :class:`RegisterSystem` would build for ``config``.

    Schemes are parameterized only by ``k``, so hosts constructing them
    independently (daemon process vs client process) agree byte-for-byte.
    """
    base = config.scheme or AlonLabelingScheme(k=config.n + 1)
    return MwmrOrdering(base) if mwmr else base


class ServerDaemon:
    """One listening register server (correct or Byzantine).

    Args:
        sid: the server's process id (must be one of
            ``config.server_ids`` for quorums to add up).
        config: the shared quorum configuration.
        address: listen address; ``tcp:HOST:0`` picks an ephemeral port,
            readable from :attr:`address` after :meth:`start`.
        factory: substitute process factory (Byzantine zoo ``.factory()``
            products slot in here); default hosts a correct
            :class:`RegisterServer`.
        seed: RNG seed for the hosted process (Byzantine strategies and
            corruption draw from it, exactly as in the sim).
        wire: wire codec version spoken on every connection (see
            :func:`repro.net.wire.get_codec`).
        flush_watermark: outbound coalescing threshold, in bytes (see
            :class:`StreamConnection`).
    """

    def __init__(
        self,
        sid: str,
        config: SystemConfig,
        address: str = "tcp:127.0.0.1:0",
        factory: Optional[ServerFactory] = None,
        scheme: Optional[LabelingScheme] = None,
        seed: int = 0,
        clock: Optional[LiveClock] = None,
        wire: int = DEFAULT_WIRE,
        flush_watermark: int = DEFAULT_FLUSH_WATERMARK,
    ) -> None:
        self.sid = sid
        self.config = config
        self._address_spec = address
        self.codec = get_codec(wire)
        self.flush_watermark = flush_watermark
        self.transport = StreamTransport()
        self.env = NetEnvironment(self.transport, seed=seed, clock=clock)
        self.scheme = scheme if scheme is not None else default_scheme(config)
        make = factory if factory is not None else RegisterServer
        self.process: Process = make(sid, self.env, config, self.scheme)
        self.server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[str] = None
        self._conns: set[StreamConnection] = set()
        self._handshakes: set[asyncio.Task] = set()

    @property
    def stats(self):
        return self.transport.stats

    async def start(self) -> str:
        """Bind and listen; returns the concrete address."""
        self.server, self.address = await start_frame_server(
            self._address_spec, self._make_connection
        )
        return self.address

    def _make_connection(self) -> StreamConnection:
        return StreamConnection(
            self.transport.stats,
            self._on_message,
            on_close=self._on_conn_close,
            codec=self.codec,
            flush_watermark=self.flush_watermark,
            on_connected=self._on_accept,
            flusher=self.transport.flusher,
        )

    def _on_accept(self, conn: StreamConnection) -> None:
        self._conns.add(conn)
        task = asyncio.get_running_loop().create_task(self._handshake(conn))
        self._handshakes.add(task)
        task.add_done_callback(self._handshakes.discard)

    async def _handshake(self, conn: StreamConnection) -> None:
        try:
            pid = await conn.expect_hello()
        except (WireError, asyncio.TimeoutError, ConnectionError, OSError):
            # Not a repro-wire peer (port scanner, wrong version, dead
            # dialer): drop the connection, keep the daemon.
            await conn.close()
            return
        conn.send_hello(self.sid)
        self.transport.bind_peer(pid, conn)
        conn.start_pump()

    def _on_message(
        self, conn: StreamConnection, src: str, dst: str, payload: Any
    ) -> None:
        if conn.peer_pid is not None:
            src = conn.peer_pid
        self.transport.deliver_local(dst, src, payload)

    def _on_conn_close(self, conn: StreamConnection) -> None:
        self._conns.discard(conn)
        self.transport.drop_peer(conn)

    async def stop(self) -> None:
        # Take ownership of the handle before the first await: rebinding
        # self.server after wait_closed() would race a concurrent start()
        # (torn read-modify-write across the suspension point).
        server, self.server = self.server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._handshakes):
            task.cancel()
        for conn in list(self._conns):
            await conn.close()
        await self.transport.close()


class ClientEndpoint:
    """One register client dialed into every server.

    ``write``/``read`` are coroutines: the protocol's
    :class:`OperationHandle` completion callback resolves an asyncio
    future. A miss of ``op_timeout`` crash-restarts the client and
    resolves to :data:`TIMED_OUT` (see module docstring for why that is
    the model-faithful reaction).
    """

    def __init__(
        self,
        cid: str,
        config: SystemConfig,
        server_addresses: dict[str, str],
        history: Optional[History] = None,
        clock: Optional[LiveClock] = None,
        scheme: Optional[LabelingScheme] = None,
        seed: int = 0,
        op_timeout: float = 30.0,
        wire: int = DEFAULT_WIRE,
        flush_watermark: int = DEFAULT_FLUSH_WATERMARK,
    ) -> None:
        self.cid = cid
        self.config = config
        self._addresses = dict(server_addresses)
        self.op_timeout = op_timeout
        self.codec = get_codec(wire)
        self.flush_watermark = flush_watermark
        self.transport = StreamTransport()
        self.clock = clock if clock is not None else LiveClock()
        self.env = NetEnvironment(self.transport, seed=seed, clock=self.clock)
        self.history = history if history is not None else History()
        self.recorder = HistoryRecorder(self.history, self.clock.now)
        self.scheme = scheme if scheme is not None else default_scheme(config)
        self.client = RegisterClient(
            cid,
            self.env,
            config,
            self.scheme,
            sorted(self._addresses),
            self.recorder,
        )
        self.timeouts = 0
        self._conns: dict[str, StreamConnection] = {}

    @property
    def stats(self):
        return self.transport.stats

    async def connect(self) -> None:
        """Dial every server, exchange HELLOs, start the dispatchers."""
        for sid in sorted(self._addresses):
            await self.redial(sid)

    async def redial(self, sid: str, address: Optional[str] = None) -> None:
        """(Re)dial one server: drop any stale connection, dial, HELLO.

        Respawned servers come back on a fresh ephemeral port, so churn
        hands the endpoint a new ``address`` for the same ``sid``; a
        killed-then-healed proxy keeps its address and only needs the
        re-HELLO.
        """
        if address is not None:
            self._addresses[sid] = address
        stale = self._conns.pop(sid, None)
        if stale is not None:
            await stale.close()
        conn = await open_frame_connection(
            self._addresses[sid],
            lambda: StreamConnection(
                self.transport.stats,
                self._on_message,
                on_close=self.transport.drop_peer,
                codec=self.codec,
                flush_watermark=self.flush_watermark,
                flusher=self.transport.flusher,
            ),
        )
        conn.send_hello(self.cid)
        peer = await conn.expect_hello()
        if peer != sid:
            await conn.close()
            raise WireError(
                f"dialed {sid!r} at {self._addresses[sid]} but peer "
                f"identifies as {peer!r}"
            )
        self.transport.bind_peer(sid, conn)
        conn.start_pump()
        self._conns[sid] = conn

    def _on_message(
        self, conn: StreamConnection, src: str, dst: str, payload: Any
    ) -> None:
        if conn.peer_pid is not None:
            src = conn.peer_pid
        self.transport.deliver_local(dst, src, payload)

    # -- operations ------------------------------------------------------
    async def write(self, value: Any) -> Any:
        """Live ``write(value)``; returns the handle result or TIMED_OUT."""
        return await self._complete(self.client.write, value)

    async def read(self) -> Any:
        """Live ``read()``; the value, ``ABORT``, or :data:`TIMED_OUT`."""
        return await self._complete(self.client.read)

    async def _complete(
        self, start: Callable[..., OperationHandle], *args: Any
    ) -> Any:
        # Deadline via call_later, not wait_for: wait_for spawns and
        # cancels a task per operation, which at saturation throughput is
        # measurable loop overhead for a timer that almost never fires.
        loop = asyncio.get_running_loop()
        handle = start(*args)
        future: asyncio.Future = loop.create_future()

        def settle(done: OperationHandle) -> None:
            if not future.done():
                future.set_result(done)

        def expire() -> None:
            if not future.done():
                future.set_result(TIMED_OUT)

        handle.on_done(settle)
        timer = loop.call_later(self.op_timeout, expire)
        try:
            finished = await future
        finally:
            timer.cancel()
        if finished is TIMED_OUT:
            self.timeouts += 1
            self.client.crash()
            self.client.restart()
            return TIMED_OUT
        if finished.failed:
            return TIMED_OUT
        return finished.result

    async def close(self) -> None:
        await self.transport.close()
        self._conns.clear()
