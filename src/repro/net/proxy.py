"""A socket-layer fault injector mirroring :class:`FairLossyChannel`.

The simulator injects channel faults through per-pair
:class:`~repro.sim.channels.Channel` policies; live deployments get the
same story from a man-in-the-middle proxy. Clients dial the proxy, the
proxy dials the real server, and every *frame* crossing it is subjected
to the FairLossyChannel treatment:

* dropped with probability ``loss``, capped at ``fairness_bound``
  consecutive drops (the fairness requirement — a message retransmitted
  forever is eventually delivered — in its finite form);
* duplicated with probability ``duplication`` (independent delays);
* delayed by ``delay + U(0, jitter)`` seconds. A nonzero ``jitter``
  makes the link non-FIFO (later frames can overtake earlier ones),
  exactly how the sim channel loses FIFO order. ``jitter=0`` keeps
  send order, which is what the protocol's reliable-channel assumption
  needs for CLEAN benchmark runs — lossy/reordering settings are for
  demonstrating the stabilization story, not for certifying histories.

Faults operate on whole frames (split by
:class:`~repro.net.wire.FrameAssembler`, forwarded opaquely, never
decoded): dropping raw bytes would desynchronize the stream, which is a
*corruption* fault, not a *lossy channel* fault. The first frame in each
direction — the HELLO — always passes through untouched; connection
establishment has no sim analogue and wedging it models a crash, not a
lossy link.

Randomness derives from ``derive_seed`` per pipe, so a proxy run's fault
pattern is reproducible for a fixed seed and connection order.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

from repro.net.transport import open_connection, start_server
from repro.net.wire import FrameAssembler, WireError, pack_frame
from repro.sim.environment import derive_seed

__all__ = ["FaultPolicy", "FaultProxy"]


@dataclass(frozen=True)
class FaultPolicy:
    """Per-direction fault parameters (see module docstring).

    Defaults are the identity policy: forward everything immediately.
    """

    loss: float = 0.0
    duplication: float = 0.0
    fairness_bound: int = 10
    delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss probability out of range: {self.loss}")
        if not 0.0 <= self.duplication <= 1.0:
            raise ValueError(
                f"duplication probability out of range: {self.duplication}"
            )
        if self.fairness_bound < 1:
            raise ValueError(
                f"fairness bound must be >= 1: {self.fairness_bound}"
            )


class _Pipe:
    """One proxied direction: read frames, apply the policy, re-emit."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        policy: FaultPolicy,
        rng: random.Random,
        proxy: "FaultProxy",
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.policy = policy
        self.rng = rng
        self.proxy = proxy
        self._drops = 0
        self._closed = False

    def _plan(self) -> list[float]:
        # Verbatim FairLossyChannel.plan, with `delay` standing in for the
        # adversary latency (relative emission offsets instead of absolute
        # delivery times).
        p = self.policy
        if self._drops < p.fairness_bound and self.rng.random() < p.loss:
            self._drops += 1
            return []
        self._drops = 0
        times = [p.delay + self.rng.uniform(0.0, p.jitter)]
        if self.rng.random() < p.duplication:
            times.append(p.delay + self.rng.uniform(0.0, p.jitter))
        return times

    def _emit(self, data: bytes) -> None:
        if self._closed or self.writer.is_closing():
            return
        self.writer.write(data)

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        assembler = FrameAssembler()
        first = True
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                try:
                    frames = assembler.feed(data)
                except WireError:
                    break  # desynchronized stream: kill this direction
                for body in frames:
                    frame = pack_frame(body)
                    if first:
                        first = False  # the HELLO rides through clean
                        self._emit(frame)
                        continue
                    offsets = self._plan()
                    if not offsets:
                        self.proxy.dropped += 1
                        continue
                    self.proxy.forwarded += 1
                    self.proxy.duplicated += len(offsets) - 1
                    for offset in offsets:
                        if offset <= 0.0:
                            self._emit(frame)
                        else:
                            loop.call_later(offset, self._emit, frame)
        except asyncio.CancelledError:
            # stop() cancels the pipe tasks; swallowing the cancellation
            # would let them finish as "completed" and leave stop()'s
            # gather believing the pipe is still draining. Clean up in
            # ``finally`` and let the cancellation propagate.
            raise
        except (ConnectionError, OSError):
            pass
        finally:
            await self.close()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class FaultProxy:
    """Listens on one address, forwards to one upstream, injects faults.

    Run one proxy per server to fault that server's links; point the
    clients at :attr:`address` instead of the real server address.

    Counters (:attr:`forwarded` / :attr:`dropped` / :attr:`duplicated`)
    count frames across both directions of every proxied connection.
    """

    def __init__(
        self,
        upstream: str,
        listen: str = "tcp:127.0.0.1:0",
        policy: FaultPolicy | None = None,
        seed: int = 0,
    ) -> None:
        self.upstream = upstream
        self._listen = listen
        self.policy = policy if policy is not None else FaultPolicy()
        self.seed = seed
        self.server: asyncio.AbstractServer | None = None
        self.address: str | None = None
        self.forwarded = 0
        self.dropped = 0
        self.duplicated = 0
        self._n_conns = 0
        self._killed = False
        self._pipes: list[_Pipe] = []
        self._tasks: list[asyncio.Task] = []

    async def start(self) -> str:
        self.server, self.address = await start_server(
            self._listen, self._accept
        )
        return self.address

    @property
    def killed(self) -> bool:
        return self._killed

    async def kill(self) -> None:
        """Hard-kill the proxied server's links: sever every live
        connection and refuse new ones until :meth:`heal`.

        The listening socket stays open — a killed server looks *crashed*
        (connects succeed at the TCP layer, then the proxy hangs up),
        not *removed from the address book*, which is what a client's
        redial loop needs to keep probing for the heal.
        """
        self._killed = True
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        for pipe in self._pipes:
            await pipe.close()
        self._tasks.clear()
        self._pipes.clear()

    def heal(self) -> None:
        """Accept connections again (clients must redial and re-HELLO)."""
        self._killed = False

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._killed:
            writer.close()
            return
        try:
            up_reader, up_writer = await open_connection(self.upstream)
        except OSError:
            writer.close()
            return
        n = self._n_conns
        self._n_conns += 1
        forward = _Pipe(
            reader,
            up_writer,
            self.policy,
            random.Random(derive_seed(self.seed, f"fwd:{n}")),
            self,
        )
        backward = _Pipe(
            up_reader,
            writer,
            self.policy,
            random.Random(derive_seed(self.seed, f"bwd:{n}")),
            self,
        )
        loop = asyncio.get_running_loop()
        self._pipes += [forward, backward]
        self._tasks += [
            loop.create_task(forward.run()),
            loop.create_task(backward.run()),
        ]

    async def stop(self) -> None:
        # Take ownership of the handle before the first await: rebinding
        # self.server after wait_closed() would race a concurrent start()
        # (torn read-modify-write across the suspension point).
        server, self.server = self.server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        # Reap the cancellations: run() re-raises CancelledError, so an
        # unawaited task would die with a never-retrieved exception.
        await asyncio.gather(*tasks, return_exceptions=True)
        for pipe in self._pipes:
            await pipe.close()
        self._tasks.clear()
        self._pipes.clear()
