"""A whole live register deployment on loopback, checked like a sim run.

:class:`LiveRegisterCluster` is the live twin of
:class:`~repro.core.register.RegisterSystem`: it boots ``config.n``
:class:`~repro.net.daemon.ServerDaemon` processes (substituting Byzantine
zoo factories where requested, at most ``f``), dials ``n_clients``
:class:`~repro.net.daemon.ClientEndpoint` clients into all of them, and
records every invocation/response into one shared
:class:`~repro.spec.history.History` stamped by one shared
:class:`~repro.net.bridge.LiveClock` — so the captured run is judged by
the very same :class:`~repro.spec.regularity.RegularityChecker` that
judges simulated histories.

Everything lives in one OS process and one event loop ("live" means real
sockets and kernel scheduling, not real distribution); an optional
:class:`~repro.net.proxy.FaultProxy` per server interposes
FairLossyChannel-style faults on the wire. Seeding matches the sim: every
hosted process draws its RNG stream from ``derive_seed(seed, pid)``, so a
live Byzantine server and its simulated twin emit identical forgeries.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.core.config import SystemConfig
from repro.core.messages import StateReply, StateRequest
from repro.core.server import INITIAL_VALUE, adopt_snapshot
from repro.errors import ConfigurationError
from repro.net.bridge import LiveClock
from repro.net.daemon import ClientEndpoint, ServerDaemon, ServerFactory, default_scheme
from repro.net.proxy import FaultPolicy, FaultProxy
from repro.net.transport import (
    DEFAULT_FLUSH_WATERMARK,
    StreamConnection,
    open_frame_connection,
)
from repro.net.wire import DEFAULT_WIRE, get_codec
from repro.sim.environment import derive_seed
from repro.sim.tracing import MessageStats
from repro.spec.history import History
from repro.spec.regularity import RegularityChecker, RegularityVerdict

__all__ = ["LiveRegisterCluster", "one_shot_state", "poll_state_snapshots"]


async def one_shot_state(
    probe: str,
    peer: str,
    address: str,
    nonce: int,
    wire: int = DEFAULT_WIRE,
) -> Optional[StateReply]:
    """One wire-level StateRequest/StateReply exchange with ``peer``.

    ``flush_watermark=0``: a single below-watermark request with no
    flusher attached would otherwise sit in the coalescing buffer
    forever. Returns ``None`` when the peer at ``address`` identifies
    as someone other than ``peer`` (stale address after churn).
    """
    got: asyncio.Future = asyncio.get_running_loop().create_future()

    def on_message(
        conn: StreamConnection, src: str, dst: str, payload: Any
    ) -> None:
        if isinstance(payload, StateReply) and payload.nonce == nonce:
            if not got.done():
                got.set_result(payload)

    conn = await open_frame_connection(
        address,
        lambda: StreamConnection(
            MessageStats(),
            on_message,
            codec=get_codec(wire),
            flush_watermark=0,
        ),
    )
    try:
        conn.send_hello(probe)
        peer_pid = await conn.expect_hello()
        if peer_pid != peer:
            return None
        conn.start_pump()
        conn.send_payload(probe, peer, StateRequest(nonce=nonce))
        return await got
    finally:
        await conn.close()


async def poll_state_snapshots(
    peers: dict[str, str],
    probe: str,
    nonce: int,
    wire: int = DEFAULT_WIRE,
    timeout: float = 5.0,
) -> dict[str, tuple[Any, Any]]:
    """Ask every peer (id -> address) for its ``(value, ts)`` snapshot.

    This is the PR 8 state-transfer poll: the live analogue of the sim
    joiner's StateRequest broadcast, one one-shot connection per peer.
    Peers that time out, refuse the connection, or misidentify are
    simply absent from the result — :func:`adopt_snapshot` then decides
    whether the ``f+1`` witnesses it needs are among the answers.
    """
    replies: dict[str, tuple[Any, Any]] = {}
    for peer, address in sorted(peers.items()):
        try:
            reply = await asyncio.wait_for(
                one_shot_state(probe, peer, address, nonce, wire=wire),
                timeout=timeout,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            continue
        if reply is not None:
            replies[peer] = (reply.value, reply.ts)
    return replies


class LiveRegisterCluster:
    """Servers + clients + shared history over loopback sockets.

    Args:
        config: quorum configuration (same object the sim takes).
        n_clients: endpoints ``c0 .. c{m-1}``.
        seed: master seed for every hosted process's RNG stream.
        byzantine: bare server id -> factory, at most ``config.f`` entries
            (the :data:`~repro.byzantine.strategies.STRATEGY_ZOO` classes
            slot straight in).
        family: ``"tcp"`` (loopback, ephemeral ports) or ``"unix"``
            (sockets under ``socket_dir``, required then).
        proxy_policy: when set, every server is fronted by a
            :class:`FaultProxy` with this policy and clients dial the
            proxies. Lossy/reordering policies break the protocol's
            reliable-FIFO channel assumption — use them to demonstrate
            stabilization, not to certify histories.
        op_timeout: per-operation deadline before an endpoint
            crash-restarts its client (see :mod:`repro.net.daemon`).
        external_servers: server id -> address of daemons running
            elsewhere (``repro serve``). The cluster then boots only the
            client side: no daemons, no proxies; ``byzantine`` must be
            empty (whoever runs the servers picks their strategies).
        wire: the wire codec version every host speaks (both hosts of a
            connection must agree; HELLO enforces it).
        flush_watermark: outbound coalescing threshold per connection, in
            bytes (:data:`~repro.net.transport.DEFAULT_FLUSH_WATERMARK`).
    """

    def __init__(
        self,
        config: SystemConfig,
        n_clients: int = 2,
        seed: int = 0,
        byzantine: Optional[dict[str, ServerFactory]] = None,
        family: str = "tcp",
        socket_dir: Optional[str] = None,
        proxy_policy: Optional[FaultPolicy] = None,
        op_timeout: float = 30.0,
        mwmr: bool = True,
        external_servers: Optional[dict[str, str]] = None,
        wire: int = DEFAULT_WIRE,
        flush_watermark: int = DEFAULT_FLUSH_WATERMARK,
    ) -> None:
        if n_clients < 1:
            raise ConfigurationError("need at least one client")
        byzantine = dict(byzantine or {})
        if external_servers is not None:
            if byzantine:
                raise ConfigurationError(
                    "byzantine factories cannot be applied to external servers"
                )
            missing = set(config.server_ids) - set(external_servers)
            if missing:
                raise ConfigurationError(
                    f"external_servers missing addresses for: {sorted(missing)}"
                )
        if len(byzantine) > config.f:
            raise ConfigurationError(
                f"{len(byzantine)} Byzantine servers configured but f={config.f}"
            )
        unknown = set(byzantine) - set(config.server_ids)
        if unknown:
            raise ConfigurationError(f"unknown Byzantine server ids: {unknown}")
        if family == "unix" and not socket_dir:
            raise ConfigurationError("family='unix' needs a socket_dir")
        if family not in ("tcp", "unix"):
            raise ConfigurationError(f"unknown address family {family!r}")

        self.config = config
        self.seed = seed
        self.n_clients = n_clients
        self.byzantine_ids = set(byzantine)
        self._byzantine = byzantine
        self._family = family
        self._socket_dir = socket_dir
        self.proxy_policy = proxy_policy
        self.op_timeout = op_timeout
        self._external = dict(external_servers) if external_servers else None
        self.wire = wire
        self.wire_format = get_codec(wire).format  # validates `wire` early
        self.flush_watermark = flush_watermark

        self.scheme = default_scheme(config, mwmr=mwmr)
        self.clock = LiveClock()
        self.history = History()
        self.daemons: dict[str, ServerDaemon] = {}
        self.proxies: dict[str, FaultProxy] = {}
        self.endpoints: dict[str, ClientEndpoint] = {}
        self.addresses: dict[str, str] = {}  # as dialed by clients
        self.departed: set[str] = set()  # retired, awaiting respawn
        self._generations: dict[str, int] = {}  # respawn counts per sid
        self.started = False

    # -- lifecycle -------------------------------------------------------
    def _listen_address(self, sid: str) -> str:
        if self._family == "unix":
            return f"unix:{self._socket_dir}/{sid}.sock"
        return "tcp:127.0.0.1:0"

    async def start(self) -> None:
        """Boot daemons, proxies and endpoints; rebase the cluster clock."""
        if self._external is not None:
            self.addresses.update(self._external)
            await self._start_clients()
            return
        for sid in self.config.server_ids:
            daemon = ServerDaemon(
                sid,
                self.config,
                address=self._listen_address(sid),
                factory=self._byzantine.get(sid),
                scheme=self.scheme,
                seed=self.seed,
                clock=self.clock,
                wire=self.wire,
                flush_watermark=self.flush_watermark,
            )
            await daemon.start()
            self.daemons[sid] = daemon
            self.addresses[sid] = daemon.address

        if self.proxy_policy is not None:
            for sid in self.config.server_ids:
                listen = (
                    f"unix:{self._socket_dir}/{sid}-proxy.sock"
                    if self._family == "unix"
                    else "tcp:127.0.0.1:0"
                )
                proxy = FaultProxy(
                    upstream=self.addresses[sid],
                    listen=listen,
                    policy=self.proxy_policy,
                    seed=derive_seed(self.seed, f"proxy:{sid}"),
                )
                await proxy.start()
                self.proxies[sid] = proxy
                self.addresses[sid] = proxy.address

        await self._start_clients()

    async def _start_clients(self) -> None:
        for i in range(self.n_clients):
            cid = f"c{i}"
            endpoint = ClientEndpoint(
                cid,
                self.config,
                self.addresses,
                history=self.history,
                clock=self.clock,
                scheme=self.scheme,
                seed=self.seed,
                op_timeout=self.op_timeout,
                wire=self.wire,
                flush_watermark=self.flush_watermark,
            )
            await endpoint.connect()
            self.endpoints[cid] = endpoint

        self.clock.start()  # history time zero = "cluster fully wired"
        self.started = True

    async def stop(self) -> None:
        """Tear everything down (idempotent)."""
        for endpoint in self.endpoints.values():
            await endpoint.close()
        for proxy in self.proxies.values():
            await proxy.stop()
        for daemon in self.daemons.values():
            await daemon.stop()
        self.started = False

    async def __aenter__(self) -> "LiveRegisterCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- operations ------------------------------------------------------
    def endpoint(self, cid: str) -> ClientEndpoint:
        return self.endpoints[cid]

    async def write(self, cid: str, value: Any) -> Any:
        return await self.endpoints[cid].write(value)

    async def read(self, cid: str) -> Any:
        return await self.endpoints[cid].read()

    # -- membership (continuous churn) -----------------------------------
    async def retire_server(self, sid: str) -> None:
        """Take one server out of the deployment for real.

        The daemon's socket closes and its hosted process is gone —
        unlike a proxy :meth:`~repro.net.proxy.FaultProxy.kill`, nothing
        of the server survives. Clients see dead connections and missing
        replies; with at most ``f`` servers absent the ``n - f`` quorums
        still assemble from the remainder.
        """
        if self._external is not None:
            raise ConfigurationError("cannot retire external servers")
        if sid not in self.daemons:
            raise ConfigurationError(f"unknown server id: {sid!r}")
        if sid in self.departed:
            raise ConfigurationError(f"server {sid!r} is already retired")
        self.departed.add(sid)
        proxy = self.proxies.pop(sid, None)
        if proxy is not None:
            await proxy.stop()
        await self.daemons[sid].stop()

    async def respawn_server(self, sid: str, transfer: bool = True) -> str:
        """Bring a retired server back as a brand-new daemon.

        The replacement listens on a fresh address with a fresh RNG
        stream (``derive_seed(seed, "respawn:{sid}:{gen}")``) and — when
        ``transfer`` is on and the slot is not Byzantine — adopts the
        ``(value, ts)`` snapshot the live peers vouch for: the cluster
        polls each of them over the wire with a real
        :class:`~repro.core.messages.StateRequest` one-shot connection
        and runs the same f+1-vote
        :func:`~repro.core.server.adopt_snapshot` the sim-tier joiner
        runs on its own broadcast. Every endpoint then redials the new
        address. Returns the address clients now dial.
        """
        if sid not in self.departed:
            raise ConfigurationError(f"server {sid!r} is not retired")
        gen = self._generations.get(sid, 0) + 1
        self._generations[sid] = gen
        listen = (
            f"unix:{self._socket_dir}/{sid}-g{gen}.sock"
            if self._family == "unix"
            else "tcp:127.0.0.1:0"
        )
        daemon = ServerDaemon(
            sid,
            self.config,
            address=listen,
            factory=self._byzantine.get(sid),
            scheme=self.scheme,
            seed=derive_seed(self.seed, f"respawn:{sid}:{gen}"),
            clock=self.clock,
            wire=self.wire,
            flush_watermark=self.flush_watermark,
        )
        await daemon.start()
        self.daemons[sid] = daemon
        address = daemon.address
        if transfer and sid not in self.byzantine_ids:
            replies = await self._poll_state(sid, nonce=gen)
            winner = adopt_snapshot(replies, self.scheme, self.config.f)
            process = daemon.process
            if winner is not None:
                # Unconditional, unlike the sim joiner's ≺-guarded
                # adoption: no endpoint learns the new address until
                # after this block, so nothing can have reached the
                # fresh daemon — its boot label is an arbitrary point
                # of the bounded (cyclic, bottomless) label graph, not
                # adopted write state, and a ≺-guard against it would
                # refuse genuine snapshots without protecting anything.
                process.value, process.ts = winner
                process.old_vals = []
        if self.proxy_policy is not None:
            proxy_listen = (
                f"unix:{self._socket_dir}/{sid}-proxy-g{gen}.sock"
                if self._family == "unix"
                else "tcp:127.0.0.1:0"
            )
            proxy = FaultProxy(
                upstream=address,
                listen=proxy_listen,
                policy=self.proxy_policy,
                seed=derive_seed(self.seed, f"proxy:{sid}:g{gen}"),
            )
            await proxy.start()
            self.proxies[sid] = proxy
            address = proxy.address
        self.addresses[sid] = address
        self.departed.discard(sid)
        for endpoint in self.endpoints.values():
            await endpoint.redial(sid, address=address)
        return address

    async def _poll_state(
        self, joiner: str, nonce: int
    ) -> dict[str, tuple[Any, Any]]:
        """Ask every live peer for its ``(value, ts)`` snapshot."""
        peers = {
            peer: daemon.address
            for peer, daemon in self.daemons.items()
            if peer != joiner and peer not in self.departed
        }
        return await poll_state_snapshots(
            peers, probe=f"join:{joiner}:{nonce}", nonce=nonce, wire=self.wire
        )

    # -- verification & accounting --------------------------------------
    def checker(self, **overrides: Any) -> RegularityChecker:
        """A checker wired like :meth:`RegisterSystem.checker`."""
        kwargs: dict[str, Any] = dict(
            scheme=self.scheme, initial_value=INITIAL_VALUE
        )
        kwargs.update(overrides)
        return RegularityChecker(**kwargs)

    def check_regularity(self, **overrides: Any) -> RegularityVerdict:
        """Judge the captured live history with the sim's own checker."""
        return self.checker(**overrides).check(self.history)

    def stats(self) -> MessageStats:
        """Message accounting merged across every host in the cluster."""
        merged = MessageStats()
        for daemon in self.daemons.values():
            merged = merged.merged_with(daemon.stats)
        for endpoint in self.endpoints.values():
            merged = merged.merged_with(endpoint.stats)
        return merged

    @property
    def timeouts(self) -> int:
        return sum(e.timeouts for e in self.endpoints.values())
