"""The ``repro-wire/1`` codec: length-prefixed, versioned frames.

Live transports move the exact payload dataclasses the simulator moves —
:mod:`repro.core.messages` protocol messages, bounded labels, MWMR
timestamps, :class:`~repro.sim.messages.Garbage` — wrapped in
:class:`~repro.sim.messages.Envelope` records, over byte streams. The
codec is deliberately value-faithful rather than schema-strict: a
*corrupted lookalike* (an ``AlonLabel`` whose antistings field is a list,
a ``WriteRequest`` whose ``ts`` is ``()``) must survive the wire
unchanged, because receiver-side validation is part of the protocol under
test. Rejecting malformed labels at the codec would silently launder the
very inputs the stabilization story is about.

Framing::

    +----------------+------+---------+------------------+
    | length (u32 BE)| b"RW"| version | JSON body (utf-8)|
    +----------------+------+---------+------------------+

``length`` counts everything after the length word. A frame whose magic,
version, or body does not parse raises :class:`WireError`; stream readers
drop the frame (and count it) rather than crash — garbage on a live
channel is the moral equivalent of the simulator's corrupted envelopes.

The JSON body is a tagged tree: scalars pass through verbatim; every
composite carries a ``"§"`` tag (``tuple``, ``fset``, ``alon``, ``mwmr``,
``msg``, ...). Decoding an unknown tag or a non-scalar without a tag is a
:class:`WireError`. Unknown *extra keys* on a tagged object are ignored,
so a later ``repro-wire/1.x`` producer can add fields without breaking
this decoder; a bumped *version byte* is rejected outright (the
``repro-fuzz-recipe/1`` → ``/2`` pattern: minor additions are tolerated,
major revisions are explicit).
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Optional

from repro.core import messages as protocol_messages
from repro.sim.messages import Envelope, Garbage

__all__ = [
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "MAX_FRAME",
    "WireError",
    "encode_value",
    "decode_value",
    "encode_frame",
    "decode_frame",
    "pack_frame",
    "encode_envelope",
    "decode_envelope",
    "hello_frame",
    "decode_hello",
    "FrameAssembler",
]

#: The format tag advertised in HELLO frames and benchmark artifacts.
WIRE_FORMAT = "repro-wire/1"
#: The version byte every frame carries. Bump = incompatible revision.
WIRE_VERSION = 1

_MAGIC = b"RW"
_HEADER = struct.Struct(">I")

#: Hard per-frame cap. A corrupted or adversarial length word must not be
#: able to make a reader buffer gigabytes before noticing the garbage.
MAX_FRAME = 1 << 20

_TAG = "§"  # "§": cannot collide with dataclass field names


class WireError(ValueError):
    """A frame or value that the codec refuses to encode or decode."""


# ----------------------------------------------------------------------
# value codec (tagged JSON tree)
# ----------------------------------------------------------------------
_SCALARS = (str, int, float, bool, type(None))

#: Protocol message registry: class name -> class. Everything the fuzz
#: harness, the Byzantine zoo, or a corrupted server can put on a channel
#: is one of these (or Garbage, or a scrambled lookalike thereof).
_MESSAGE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        protocol_messages.GetTs,
        protocol_messages.TsReply,
        protocol_messages.WriteRequest,
        protocol_messages.WriteAck,
        protocol_messages.WriteNack,
        protocol_messages.ReadRequest,
        protocol_messages.ReadReply,
        protocol_messages.CompleteRead,
        protocol_messages.Flush,
        protocol_messages.FlushAck,
    )
}


def _label_types() -> tuple[type, type]:
    # Deferred import: labels/ must stay importable without net/ (NET001
    # enforces the reverse direction; this keeps module import light).
    from repro.labels.alon import AlonLabel
    from repro.labels.ordering import MwmrTimestamp

    return AlonLabel, MwmrTimestamp


def encode_value(value: Any) -> Any:
    """Lower ``value`` to a JSON-able tagged tree.

    Raises :class:`WireError` for objects outside the wire vocabulary —
    better to fail loudly at the sender than to deliver something the
    receiving side cannot reconstruct faithfully.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    AlonLabel, MwmrTimestamp = _label_types()
    if isinstance(value, AlonLabel):
        return {_TAG: "alon", "s": encode_value(value.sting), "a": encode_value(value.antistings)}
    if isinstance(value, MwmrTimestamp):
        return {_TAG: "mwmr", "l": encode_value(value.label), "w": encode_value(value.writer_id)}
    if isinstance(value, Garbage):
        return {_TAG: "garbage", "n": encode_value(value.noise)}
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {_TAG: "list", "v": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        # Deterministic element order: identical values encode to identical
        # bytes regardless of set iteration order (PYTHONHASHSEED).
        items = sorted((encode_value(v) for v in value), key=repr)
        return {_TAG: "fset", "v": items}
    if type(value).__name__ in _MESSAGE_TYPES and dataclasses.is_dataclass(value):
        fields = {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {_TAG: "msg", "t": type(value).__name__, "f": fields}
    raise WireError(f"value outside the wire vocabulary: {value!r}")


def decode_value(node: Any) -> Any:
    """Rebuild a value from :func:`encode_value` output."""
    if isinstance(node, _SCALARS):
        return node
    if not isinstance(node, dict):
        raise WireError(f"undecodable wire node: {node!r}")
    tag = node.get(_TAG)
    if tag == "tuple":
        return tuple(decode_value(v) for v in _want(node, "v", list))
    if tag == "list":
        return [decode_value(v) for v in _want(node, "v", list)]
    if tag == "fset":
        return frozenset(decode_value(v) for v in _want(node, "v", list))
    if tag == "alon":
        from repro.labels.alon import AlonLabel

        return AlonLabel(
            sting=decode_value(node.get("s")),
            antistings=decode_value(node.get("a")),
        )
    if tag == "mwmr":
        from repro.labels.ordering import MwmrTimestamp

        return MwmrTimestamp(
            label=decode_value(node.get("l")),
            writer_id=decode_value(node.get("w")),
        )
    if tag == "garbage":
        return Garbage(noise=decode_value(node.get("n")))
    if tag == "msg":
        cls = _MESSAGE_TYPES.get(_want(node, "t", str))
        if cls is None:
            raise WireError(f"unknown message type: {node.get('t')!r}")
        fields = _want(node, "f", dict)
        known = {f.name for f in dataclasses.fields(cls)}
        # Extra keys from a newer minor revision are dropped; missing keys
        # are a malformed frame (every v1 field is required).
        kwargs = {k: decode_value(v) for k, v in fields.items() if k in known}
        if set(kwargs) != known:
            raise WireError(
                f"message {cls.__name__} missing fields: {sorted(known - set(kwargs))}"
            )
        return cls(**kwargs)
    raise WireError(f"unknown wire tag: {tag!r}")


def _want(node: dict, key: str, kind: type) -> Any:
    value = node.get(key)
    if not isinstance(value, kind):
        raise WireError(f"malformed wire node: {key}={value!r}")
    return value


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def _encode_body(obj: Any) -> bytes:
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    frame = _MAGIC + bytes([WIRE_VERSION]) + body
    if len(frame) > MAX_FRAME:
        raise WireError(f"frame of {len(frame)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(frame)) + frame


def _decode_body(frame: bytes) -> Any:
    if len(frame) < 3 or frame[:2] != _MAGIC:
        raise WireError("bad frame magic")
    version = frame[2]
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_FORMAT})"
        )
    try:
        return json.loads(frame[3:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"unparseable frame body: {exc}") from None


def pack_frame(body: bytes) -> bytes:
    """Re-attach a length header to a frame body.

    The fault proxy forwards frames *opaquely* — split by
    :class:`FrameAssembler`, never decoded — and this puts the header
    back on the way out.
    """
    return _HEADER.pack(len(body)) + body


def encode_frame(value: Any) -> bytes:
    """One length-prefixed frame holding a bare tagged value."""
    return _encode_body(encode_value(value))


def decode_frame(frame: bytes) -> Any:
    """Inverse of :func:`encode_frame` (frame = header-less body bytes)."""
    return decode_value(_decode_body(frame))


def encode_envelope(env: Envelope) -> bytes:
    """One frame carrying a routed protocol message."""
    return _encode_body(
        {
            _TAG: "env",
            "src": env.src,
            "dst": env.dst,
            "p": encode_value(env.payload),
            "st": env.send_time,
        }
    )


def decode_envelope(frame: bytes) -> Envelope:
    node = _decode_body(frame)
    if not isinstance(node, dict) or node.get(_TAG) != "env":
        raise WireError(f"expected an envelope frame, got {node!r}")
    src = _want(node, "src", str)
    dst = _want(node, "dst", str)
    send_time = node.get("st", 0.0)
    if not isinstance(send_time, (int, float)) or isinstance(send_time, bool):
        raise WireError(f"malformed envelope send_time: {send_time!r}")
    return Envelope(
        src=src, dst=dst, payload=decode_value(node.get("p")), send_time=float(send_time)
    )


def hello_frame(pid: str) -> bytes:
    """The connection-opening identification frame."""
    return _encode_body({_TAG: "hello", "format": WIRE_FORMAT, "pid": pid})


def decode_hello(frame: bytes) -> str:
    """Validate a HELLO frame; returns the peer pid."""
    node = _decode_body(frame)
    if not isinstance(node, dict) or node.get(_TAG) != "hello":
        raise WireError(f"expected a hello frame, got {node!r}")
    fmt = node.get("format")
    if fmt != WIRE_FORMAT:
        raise WireError(f"peer speaks {fmt!r}, this build speaks {WIRE_FORMAT!r}")
    return _want(node, "pid", str)


class FrameAssembler:
    """Incremental frame splitter for stream readers.

    Feed raw bytes; iterate complete frame bodies (header stripped, magic
    and version *not yet* checked — that is the decoder's job, so a
    corrupt frame surfaces as a :class:`WireError` at decode time rather
    than desynchronizing the splitter).
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append ``data``; return every now-complete frame body."""
        self._buf.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buf) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buf)
            if length > MAX_FRAME:
                raise WireError(
                    f"declared frame length {length} exceeds MAX_FRAME — "
                    f"stream is garbage or adversarial"
                )
            end = _HEADER.size + length
            if len(self._buf) < end:
                return frames
            frames.append(bytes(self._buf[_HEADER.size : end]))
            del self._buf[:end]

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)
