"""The ``repro-wire/1`` and ``repro-wire/2`` codecs: length-prefixed frames.

Live transports move the exact payload dataclasses the simulator moves —
:mod:`repro.core.messages` protocol messages, bounded labels, MWMR
timestamps, :class:`~repro.sim.messages.Garbage` — wrapped in
:class:`~repro.sim.messages.Envelope` records, over byte streams. The
codec is deliberately value-faithful rather than schema-strict: a
*corrupted lookalike* (an ``AlonLabel`` whose antistings field is a list,
a ``WriteRequest`` whose ``ts`` is ``()``) must survive the wire
unchanged, because receiver-side validation is part of the protocol under
test. Rejecting malformed labels at the codec would silently launder the
very inputs the stabilization story is about.

Framing::

    +----------------+------+---------+------------------+
    | length (u32 BE)| b"RW"| version | JSON body (utf-8)|
    +----------------+------+---------+------------------+

``length`` counts everything after the length word. A frame whose magic,
version, or body does not parse raises :class:`WireError`; stream readers
drop the frame (and count it) rather than crash — garbage on a live
channel is the moral equivalent of the simulator's corrupted envelopes.

The JSON body is a tagged tree: scalars pass through verbatim; every
composite carries a ``"§"`` tag (``tuple``, ``fset``, ``alon``, ``mwmr``,
``msg``, ...). Decoding an unknown tag or a non-scalar without a tag is a
:class:`WireError`. Unknown *extra keys* on a tagged object are ignored,
so a later ``repro-wire/1.x`` producer can add fields without breaking
this decoder; a bumped *version byte* is rejected outright (the
``repro-fuzz-recipe/1`` → ``/2`` pattern: minor additions are tolerated,
major revisions are explicit).

``repro-wire/2`` (version byte 2) keeps the framing and the faithfulness
contract but swaps the body for a struct-packed binary tree: fixed-width
ints, length-prefixed strings and containers, a packed fast path for
well-shaped Alon labels (sting + sorted antisting array as ``u32``), and
a **tagged-JSON escape hatch** — any node the binary vocabulary cannot
carry byte-faithfully (Garbage blobs, corrupted lookalike labels whose
fields hold the wrong types or out-of-range values) is embedded as its
``repro-wire/1`` JSON encoding. The hot protocol path never touches
JSON; the adversarial path loses nothing. Both codecs are exposed as
:func:`get_codec` objects with identical surfaces; a frame of either
version is rejected by the other's decoder exactly as an unknown future
version would be.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Optional

from repro.core import messages as protocol_messages
from repro.sim.messages import Envelope, Garbage

__all__ = [
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "WIRE_FORMAT_V2",
    "WIRE_VERSION_V2",
    "DEFAULT_WIRE",
    "MAX_FRAME",
    "WireError",
    "get_codec",
    "CODECS",
    "JsonCodec",
    "BinaryCodec",
    "encode_value",
    "decode_value",
    "encode_frame",
    "decode_frame",
    "pack_frame",
    "encode_envelope",
    "decode_envelope",
    "hello_frame",
    "decode_hello",
    "FrameAssembler",
]

#: The format tag advertised in HELLO frames and benchmark artifacts.
WIRE_FORMAT = "repro-wire/1"
#: The version byte every frame carries. Bump = incompatible revision.
WIRE_VERSION = 1

_MAGIC = b"RW"
_HEADER = struct.Struct(">I")

#: Hard per-frame cap. A corrupted or adversarial length word must not be
#: able to make a reader buffer gigabytes before noticing the garbage.
MAX_FRAME = 1 << 20

_TAG = "§"  # "§": cannot collide with dataclass field names


class WireError(ValueError):
    """A frame or value that the codec refuses to encode or decode."""


# ----------------------------------------------------------------------
# value codec (tagged JSON tree)
# ----------------------------------------------------------------------
_SCALARS = (str, int, float, bool, type(None))

#: Protocol message registry: class name -> class. Everything the fuzz
#: harness, the Byzantine zoo, or a corrupted server can put on a channel
#: is one of these (or Garbage, or a scrambled lookalike thereof).
_MESSAGE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        protocol_messages.GetTs,
        protocol_messages.TsReply,
        protocol_messages.WriteRequest,
        protocol_messages.WriteAck,
        protocol_messages.WriteNack,
        protocol_messages.ReadRequest,
        protocol_messages.ReadReply,
        protocol_messages.CompleteRead,
        protocol_messages.Flush,
        protocol_messages.FlushAck,
        protocol_messages.StateRequest,
        protocol_messages.StateReply,
    )
}


_LABEL_TYPES: Optional[tuple[type, type]] = None


def _label_types() -> tuple[type, type]:
    # Deferred import: labels/ must stay importable without net/ (NET001
    # enforces the reverse direction; this keeps module import light).
    # Cached after the first call — this sits on the per-message hot path.
    global _LABEL_TYPES
    if _LABEL_TYPES is None:
        from repro.labels.alon import AlonLabel
        from repro.labels.ordering import MwmrTimestamp

        _LABEL_TYPES = (AlonLabel, MwmrTimestamp)
    return _LABEL_TYPES


def encode_value(value: Any) -> Any:
    """Lower ``value`` to a JSON-able tagged tree.

    Raises :class:`WireError` for objects outside the wire vocabulary —
    better to fail loudly at the sender than to deliver something the
    receiving side cannot reconstruct faithfully.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    AlonLabel, MwmrTimestamp = _label_types()
    if isinstance(value, AlonLabel):
        return {_TAG: "alon", "s": encode_value(value.sting), "a": encode_value(value.antistings)}
    if isinstance(value, MwmrTimestamp):
        return {_TAG: "mwmr", "l": encode_value(value.label), "w": encode_value(value.writer_id)}
    if isinstance(value, Garbage):
        return {_TAG: "garbage", "n": encode_value(value.noise)}
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {_TAG: "list", "v": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        # Deterministic element order: identical values encode to identical
        # bytes regardless of set iteration order (PYTHONHASHSEED).
        items = sorted((encode_value(v) for v in value), key=repr)
        return {_TAG: "fset", "v": items}
    if type(value).__name__ in _MESSAGE_TYPES and dataclasses.is_dataclass(value):
        fields = {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {_TAG: "msg", "t": type(value).__name__, "f": fields}
    raise WireError(f"value outside the wire vocabulary: {value!r}")


def decode_value(node: Any) -> Any:
    """Rebuild a value from :func:`encode_value` output."""
    if isinstance(node, _SCALARS):
        return node
    if not isinstance(node, dict):
        raise WireError(f"undecodable wire node: {node!r}")
    tag = node.get(_TAG)
    if tag == "tuple":
        return tuple(decode_value(v) for v in _want(node, "v", list))
    if tag == "list":
        return [decode_value(v) for v in _want(node, "v", list)]
    if tag == "fset":
        return frozenset(decode_value(v) for v in _want(node, "v", list))
    if tag == "alon":
        from repro.labels.alon import AlonLabel

        return AlonLabel(
            sting=decode_value(node.get("s")),
            antistings=decode_value(node.get("a")),
        )
    if tag == "mwmr":
        from repro.labels.ordering import MwmrTimestamp

        return MwmrTimestamp(
            label=decode_value(node.get("l")),
            writer_id=decode_value(node.get("w")),
        )
    if tag == "garbage":
        return Garbage(noise=decode_value(node.get("n")))
    if tag == "msg":
        cls = _MESSAGE_TYPES.get(_want(node, "t", str))
        if cls is None:
            raise WireError(f"unknown message type: {node.get('t')!r}")
        fields = _want(node, "f", dict)
        known = {f.name for f in dataclasses.fields(cls)}
        # Extra keys from a newer minor revision are dropped; missing keys
        # are a malformed frame (every v1 field is required).
        kwargs = {k: decode_value(v) for k, v in fields.items() if k in known}
        if set(kwargs) != known:
            raise WireError(
                f"message {cls.__name__} missing fields: {sorted(known - set(kwargs))}"
            )
        return cls(**kwargs)
    raise WireError(f"unknown wire tag: {tag!r}")


def _want(node: dict, key: str, kind: type) -> Any:
    value = node.get(key)
    if not isinstance(value, kind):
        raise WireError(f"malformed wire node: {key}={value!r}")
    return value


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def _encode_body(obj: Any) -> bytes:
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    frame = _MAGIC + bytes([WIRE_VERSION]) + body
    if len(frame) > MAX_FRAME:
        raise WireError(f"frame of {len(frame)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(frame)) + frame


def _decode_body(frame: bytes) -> Any:
    if len(frame) < 3 or frame[:2] != _MAGIC:
        raise WireError("bad frame magic")
    version = frame[2]
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_FORMAT})"
        )
    try:
        return json.loads(frame[3:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"unparseable frame body: {exc}") from None


def pack_frame(body: bytes) -> bytes:
    """Re-attach a length header to a frame body.

    The fault proxy forwards frames *opaquely* — split by
    :class:`FrameAssembler`, never decoded — and this puts the header
    back on the way out.
    """
    return _HEADER.pack(len(body)) + body


def encode_frame(value: Any) -> bytes:
    """One length-prefixed frame holding a bare tagged value."""
    return _encode_body(encode_value(value))


def decode_frame(frame: bytes) -> Any:
    """Inverse of :func:`encode_frame` (frame = header-less body bytes)."""
    return decode_value(_decode_body(frame))


def encode_envelope(env: Envelope) -> bytes:
    """One frame carrying a routed protocol message."""
    return _encode_body(
        {
            _TAG: "env",
            "src": env.src,
            "dst": env.dst,
            "p": encode_value(env.payload),
            "st": env.send_time,
        }
    )


def decode_envelope(frame: bytes) -> Envelope:
    node = _decode_body(frame)
    if not isinstance(node, dict) or node.get(_TAG) != "env":
        raise WireError(f"expected an envelope frame, got {node!r}")
    src = _want(node, "src", str)
    dst = _want(node, "dst", str)
    send_time = node.get("st", 0.0)
    if not isinstance(send_time, (int, float)) or isinstance(send_time, bool):
        raise WireError(f"malformed envelope send_time: {send_time!r}")
    return Envelope(
        src=src, dst=dst, payload=decode_value(node.get("p")), send_time=float(send_time)
    )


def hello_frame(pid: str) -> bytes:
    """The connection-opening identification frame."""
    return _encode_body({_TAG: "hello", "format": WIRE_FORMAT, "pid": pid})


def decode_hello(frame: bytes) -> str:
    """Validate a HELLO frame; returns the peer pid."""
    node = _decode_body(frame)
    if not isinstance(node, dict) or node.get(_TAG) != "hello":
        raise WireError(f"expected a hello frame, got {node!r}")
    fmt = node.get("format")
    if fmt != WIRE_FORMAT:
        raise WireError(f"peer speaks {fmt!r}, this build speaks {WIRE_FORMAT!r}")
    return _want(node, "pid", str)


class FrameAssembler:
    """Incremental frame splitter for stream readers.

    Feed raw bytes; iterate complete frame bodies (header stripped, magic
    and version *not yet* checked — that is the decoder's job, so a
    corrupt frame surfaces as a :class:`WireError` at decode time rather
    than desynchronizing the splitter).
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append ``data``; return every now-complete frame body."""
        if not self._buf:
            # Fast path: no partial frame pending, so complete frames can
            # be sliced straight out of ``data`` without the extend/del
            # churn on the carry buffer (the overwhelmingly common case —
            # a read usually delivers whole frames).
            frames: list[bytes] = []
            pos, size = 0, len(data)
            while size - pos >= 4:
                length = _HEADER.unpack_from(data, pos)[0]
                if length > MAX_FRAME:
                    raise WireError(
                        f"declared frame length {length} exceeds MAX_FRAME — "
                        f"stream is garbage or adversarial"
                    )
                end = pos + 4 + length
                if end > size:
                    break
                frames.append(bytes(data[pos + 4 : end]))
                pos = end
            if pos < size:
                self._buf.extend(data[pos:])
            return frames
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buf)
            if length > MAX_FRAME:
                raise WireError(
                    f"declared frame length {length} exceeds MAX_FRAME — "
                    f"stream is garbage or adversarial"
                )
            end = _HEADER.size + length
            if len(self._buf) < end:
                return frames
            frames.append(bytes(self._buf[_HEADER.size : end]))
            del self._buf[:end]

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


# ----------------------------------------------------------------------
# repro-wire/2: struct-packed binary bodies with a JSON escape hatch
# ----------------------------------------------------------------------
#: Format tag / version byte of the binary codec.
WIRE_FORMAT_V2 = "repro-wire/2"
WIRE_VERSION_V2 = 2
#: The version new connections speak unless configured otherwise.
DEFAULT_WIRE = 2

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

# One-byte node tags. The vocabulary is closed: every tag below, and
# nothing else, may appear in a v2 body. ENV and HELLO are frame-level
# tags — meeting one where a value is expected is a WireError.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_I64 = 0x03
_T_BIGINT = 0x04  # decimal ASCII, for ints beyond 64 bits
_T_F64 = 0x05
_T_STR = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_FSET = 0x09
_T_ALONP = 0x0A  # packed well-shaped AlonLabel: u32 sting + u8 n + n*u32
_T_MWMR = 0x0B
_T_MSG = 0x0C
_T_ENV = 0x0D
_T_HELLO = 0x0E
_T_JSONESC = 0x0F  # embedded repro-wire/1 JSON node (the escape hatch)

#: Fixed positional registry for _T_MSG: index on the wire is position in
#: this tuple. Append-only — reordering is a wire-breaking change.
_MESSAGE_ORDER: tuple[type, ...] = (
    protocol_messages.GetTs,
    protocol_messages.TsReply,
    protocol_messages.WriteRequest,
    protocol_messages.WriteAck,
    protocol_messages.WriteNack,
    protocol_messages.ReadRequest,
    protocol_messages.ReadReply,
    protocol_messages.CompleteRead,
    protocol_messages.Flush,
    protocol_messages.FlushAck,
    protocol_messages.StateRequest,
    protocol_messages.StateReply,
)
_MESSAGE_INDEX: dict[type, int] = {cls: i for i, cls in enumerate(_MESSAGE_ORDER)}
_MESSAGE_FIELDS: dict[type, tuple] = {
    cls: dataclasses.fields(cls) for cls in _MESSAGE_ORDER
}

#: Capped memo of packed label encodings/decodings (the Alon domain for a
#: deployed n is tiny — n=6 has 57 labels — so these saturate instantly;
#: the cap only matters under fuzzing). Same pattern as
#: ``AlonLabelingScheme._CACHE_LIMIT``.
_ALON_CACHE_LIMIT = 65536
_ALON_DEC: dict[bytes, Any] = {}

#: Identity-memo "empty" marker; `is`-distinct from every encodable value.
_MEMO_UNSET = object()


def _enc2_rawstr(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8", "surrogatepass")
    out += _U32.pack(len(raw))
    out += raw


def _pack_alon(label: Any, codec: "BinaryCodec") -> Optional[bytes]:
    """The ALONP fast path, or ``None`` if the label is not well-shaped.

    Only exact-``int`` stings in ``[0, 2**32)`` and frozensets of at most
    255 such ints qualify — anything a scrambled replica bent out of that
    shape (negative stings, alien types, oversized sets) falls through to
    the JSON escape hatch so it survives byte-faithfully.
    """
    cache = codec._alon_enc
    try:
        hit = cache.get(label)
    except TypeError:  # unhashable lookalike fields (e.g. list antistings)
        return None
    if hit is not None:
        return hit
    sting, ants = label.sting, label.antistings
    if type(sting) is not int or not 0 <= sting < 2**32:
        return None
    if type(ants) is not frozenset or len(ants) > 255:
        return None
    for a in ants:
        if type(a) is not int or not 0 <= a < 2**32:
            return None
    out = bytearray((_T_ALONP,))
    out += _U32.pack(sting)
    out.append(len(ants))
    for a in sorted(ants):
        out += _U32.pack(a)
    packed = bytes(out)
    if len(cache) < _ALON_CACHE_LIMIT:
        cache[label] = packed
    return packed


def _enc2_escape(value: Any, out: bytearray, codec: "BinaryCodec") -> None:
    # encode_value raises WireError for out-of-vocabulary objects, so the
    # escape hatch widens *faithfulness*, never the vocabulary itself.
    blob = json.dumps(encode_value(value), separators=(",", ":")).encode("utf-8")
    codec.esc_encodes += 1
    out.append(_T_JSONESC)
    out += _U32.pack(len(blob))
    out += blob


def _enc2(value: Any, out: bytearray, codec: "BinaryCodec") -> None:
    # Exact-type dispatch: bool is not int, 1 is not 1.0, subclasses and
    # lookalikes drop to the escape hatch. Faithfulness includes types.
    if value is None:
        out.append(_T_NONE)
        return
    t = type(value)
    if t is bool:
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if t is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_T_I64)
            out += _I64.pack(value)
        else:
            digits = str(value).encode("ascii")
            out.append(_T_BIGINT)
            out += _U32.pack(len(digits))
            out += digits
        return
    if t is float:
        out.append(_T_F64)
        out += _F64.pack(value)
        return
    if t is str:
        out.append(_T_STR)
        _enc2_rawstr(out, value)
        return
    AlonLabel, MwmrTimestamp = _label_types()
    if t is AlonLabel:
        packed = _pack_alon(value, codec)
        if packed is not None:
            out += packed
        else:
            _enc2_escape(value, out, codec)
        return
    if t is MwmrTimestamp:
        # Identity-keyed memo: a server's current `ts` object is stable
        # across many replies and rides along inside every old_vals entry.
        # The strong ref in the entry keeps the id valid; only shapes with
        # no reachable mutable state (packed label + str/None writer) are
        # cached, so in-place mutation can never stale an entry. The id()
        # is a cache key only, revalidated by identity below — a miss or
        # collision re-encodes to identical bytes, so run-to-run id
        # variation cannot reach the wire.
        cache = codec._mwmr_enc
        entry = cache.get(id(value))  # lint-ok: DET004
        if entry is not None and entry[0] is value:
            out += entry[1]
            return
        start = len(out)
        out.append(_T_MWMR)
        label = value.label
        writer = value.writer_id
        packed = None
        if type(label) is AlonLabel:
            packed = _pack_alon(label, codec)
        if packed is not None:
            out += packed
        else:
            _enc2(label, out, codec)
        _enc2(writer, out, codec)
        if packed is not None and (writer is None or type(writer) is str):
            if len(cache) >= _ALON_CACHE_LIMIT:
                cache.clear()
            cache[id(value)] = (value, bytes(out[start:]))  # lint-ok: DET004
        return
    if t is tuple or t is list:
        out.append(_T_TUPLE if t is tuple else _T_LIST)
        out += _U32.pack(len(value))
        for v in value:
            _enc2(v, out, codec)
        return
    if t is frozenset:
        # Canonical order = sort by encoded bytes: identical sets encode
        # to identical frames regardless of iteration order.
        encoded = []
        for v in value:
            item = bytearray()
            _enc2(v, item, codec)
            encoded.append(bytes(item))
        encoded.sort()
        out.append(_T_FSET)
        out += _U32.pack(len(encoded))
        for item in encoded:
            out += item
        return
    idx = _MESSAGE_INDEX.get(t)
    if idx is not None:
        fields = _MESSAGE_FIELDS[t]
        out.append(_T_MSG)
        out.append(idx)
        out.append(len(fields))
        for f in fields:
            _enc2(getattr(value, f.name), out, codec)
        return
    _enc2_escape(value, out, codec)


def _need(buf: bytes, pos: int, n: int) -> None:
    if pos + n > len(buf):
        raise WireError("truncated v2 frame body")


def _dec2_len(buf: bytes, pos: int) -> tuple[int, int]:
    _need(buf, pos, 4)
    return _U32.unpack_from(buf, pos)[0], pos + 4


def _dec2_count(buf: bytes, pos: int) -> tuple[int, int]:
    n, pos = _dec2_len(buf, pos)
    # Each element occupies at least one byte; an adversarial count can
    # never allocate more elements than there are bytes left.
    if n > len(buf) - pos:
        raise WireError(f"v2 container count {n} exceeds remaining bytes")
    return n, pos


def _dec2_rawstr(buf: bytes, pos: int) -> tuple[str, int]:
    n, pos = _dec2_len(buf, pos)
    _need(buf, pos, n)
    try:
        return bytes(buf[pos : pos + n]).decode("utf-8", "surrogatepass"), pos + n
    except UnicodeDecodeError as exc:
        raise WireError(f"undecodable v2 string: {exc}") from None


def _dec2(buf: bytes, pos: int) -> tuple[Any, int]:
    # Bounds guards and the string path are inlined: this function runs
    # ~18 times per hot envelope and call overhead dominated the profile.
    size = len(buf)
    if pos >= size:
        raise WireError("truncated v2 frame body")
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_I64:
        if pos + 8 > size:
            raise WireError("truncated v2 frame body")
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_F64:
        if pos + 8 > size:
            raise WireError("truncated v2 frame body")
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_STR:
        if pos + 4 > size:
            raise WireError("truncated v2 frame body")
        n = _U32.unpack_from(buf, pos)[0]
        pos += 4
        if pos + n > size:
            raise WireError("truncated v2 frame body")
        try:
            return bytes(buf[pos : pos + n]).decode("utf-8", "surrogatepass"), pos + n
        except UnicodeDecodeError as exc:
            raise WireError(f"undecodable v2 string: {exc}") from None
    if tag == _T_BIGINT:
        n, pos = _dec2_len(buf, pos)
        _need(buf, pos, n)
        raw = bytes(buf[pos : pos + n])
        try:
            return int(raw.decode("ascii")), pos + n
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"malformed v2 bigint: {exc}") from None
    if tag == _T_TUPLE or tag == _T_LIST:
        n, pos = _dec2_count(buf, pos)
        items = []
        for _ in range(n):
            v, pos = _dec2(buf, pos)
            items.append(v)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_FSET:
        n, pos = _dec2_count(buf, pos)
        items = []
        for _ in range(n):
            v, pos = _dec2(buf, pos)
            items.append(v)
        try:
            return frozenset(items), pos
        except TypeError as exc:  # adversarial bytes: unhashable elements
            raise WireError(f"unhashable v2 frozenset element: {exc}") from None
    if tag == _T_ALONP:
        start = pos - 1
        _need(buf, pos, 5)
        sting = _U32.unpack_from(buf, pos)[0]
        count = buf[pos + 4]
        pos += 5
        _need(buf, pos, 4 * count)
        end = pos + 4 * count
        span = bytes(buf[start:end])
        label = _ALON_DEC.get(span)
        if label is None:
            AlonLabel, _ = _label_types()
            label = AlonLabel(
                sting=sting,
                antistings=frozenset(
                    _U32.unpack_from(buf, pos + 4 * i)[0] for i in range(count)
                ),
            )
            if len(_ALON_DEC) < _ALON_CACHE_LIMIT:
                _ALON_DEC[span] = label
        return label, end
    if tag == _T_MWMR:
        _, MwmrTimestamp = _label_types()
        label, pos = _dec2(buf, pos)
        writer, pos = _dec2(buf, pos)
        return MwmrTimestamp(label=label, writer_id=writer), pos
    if tag == _T_MSG:
        _need(buf, pos, 2)
        idx = buf[pos]
        nvals = buf[pos + 1]
        pos += 2
        if idx >= len(_MESSAGE_ORDER):
            raise WireError(f"unknown message type index {idx}")
        cls = _MESSAGE_ORDER[idx]
        fields = _MESSAGE_FIELDS[cls]
        if nvals < len(fields):
            raise WireError(
                f"message {cls.__name__} missing fields: carries {nvals} of "
                f"{len(fields)}"
            )
        vals = []
        for _ in range(nvals):
            v, pos = _dec2(buf, pos)
            vals.append(v)
        # Extra positional values from a newer minor revision are dropped,
        # mirroring v1's ignore-unknown-keys rule.
        return cls(*vals[: len(fields)]), pos
    if tag == _T_JSONESC:
        n, pos = _dec2_len(buf, pos)
        _need(buf, pos, n)
        try:
            node = json.loads(bytes(buf[pos : pos + n]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"unparseable v2 escape blob: {exc}") from None
        return decode_value(node), pos + n
    raise WireError(f"unknown v2 wire tag 0x{tag:02x}")


def _encode_body2(payload: bytes) -> bytes:
    frame = _MAGIC + b"\x02" + payload
    if len(frame) > MAX_FRAME:
        raise WireError(f"frame of {len(frame)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(frame)) + frame


def _check_body2(frame: bytes) -> bytes:
    if len(frame) < 3 or frame[:2] != _MAGIC:
        raise WireError("bad frame magic")
    if frame[2] != WIRE_VERSION_V2:
        raise WireError(
            f"unsupported wire version {frame[2]} (this codec speaks "
            f"{WIRE_FORMAT_V2})"
        )
    return frame


def _guard_dec2(body: bytes, pos: int) -> tuple[Any, int]:
    """Run :func:`_dec2` with every parse failure folded into WireError."""
    try:
        return _dec2(body, pos)
    except WireError:
        raise
    except (struct.error, ValueError, TypeError, OverflowError, IndexError) as exc:
        raise WireError(f"unparseable v2 frame body: {exc}") from None


class BinaryCodec:
    """The ``repro-wire/2`` codec: packed hot path, JSON escape hatch.

    Mirrors the module-level v1 functions method-for-method so transports
    can hold either codec behind one variable. ``esc_encodes`` counts how
    often the escape hatch fired — live tests use it to prove lookalike
    labels really took the adversarial path.
    """

    version = WIRE_VERSION_V2
    format = WIRE_FORMAT_V2

    pack_frame = staticmethod(pack_frame)

    #: Decode-side payload memo cap; cleared wholesale when full (payload
    #: spans churn with every new timestamp, so LRU bookkeeping would
    #: cost more than the occasional cold refill).
    _PAYLOAD_CACHE_LIMIT = 4096

    def __init__(self) -> None:
        self.esc_encodes = 0
        self._alon_enc: dict[Any, bytes] = {}
        # Broadcast amortization: a protocol step sends one payload object
        # to many destinations (and, loopback, many hosts decode identical
        # payload bytes). Both memos are restricted to registered message
        # dataclasses — frozen, so sharing one decoded object between
        # receivers is safe, and identity-keying the encoder is sound.
        # Sentinel, not None: a literal None payload must never match an
        # empty memo (the differential suite caught exactly that).
        self._enc_payload_obj: Any = _MEMO_UNSET
        self._enc_payload_bytes: bytes = b""
        self._dec_payloads: dict[bytes, Any] = {}
        self._mwmr_enc: dict[int, tuple[Any, bytes]] = {}
        self._env_prefix: dict[tuple[str, str], bytes] = {}
        # Decode twin of _env_prefix: raw (src, dst) header bytes -> the
        # parsed pair and its end offset. The v2 encoding is length-
        # prefixed, hence prefix-free: if the first L bytes of a body
        # equal a cached L-byte key, the full parse is already determined
        # byte-for-byte, so replaying the cached result is exact. A
        # cluster has ~n*m (src, dst) pairs — a handful of key lengths.
        self._dec_prefix: dict[bytes, tuple[str, str, int]] = {}
        self._dec_prefix_lens: list[int] = []

    def encode_frame(self, value: Any) -> bytes:
        out = bytearray()
        _enc2(value, out, self)
        return _encode_body2(bytes(out))

    def decode_frame(self, frame: bytes) -> Any:
        body = _check_body2(frame)
        value, end = _guard_dec2(body, 3)
        if end != len(body):
            raise WireError(f"{len(body) - end} trailing bytes after v2 value")
        return value

    def encode_envelope(self, env: Envelope) -> bytes:
        out = bytearray()
        self.encode_payload_into(env.src, env.dst, env.send_time, env.payload, out)
        return bytes(out)

    def encode_envelope_into(self, env: Envelope, out: bytearray) -> None:
        """Append the full framed envelope to ``out``."""
        self.encode_payload_into(env.src, env.dst, env.send_time, env.payload, out)

    def encode_payload_into(
        self, src: str, dst: str, send_time: float, payload: Any, out: bytearray
    ) -> None:
        """Append a framed envelope built from its parts to ``out``.

        The hot-path variant: connections pass their coalescing buffer so
        the frame is built in place, with no intermediate bytes objects
        and no :class:`Envelope` allocation.
        """
        base = len(out)
        out += b"\x00\x00\x00\x00"  # length placeholder, patched below
        out += _MAGIC
        out.append(WIRE_VERSION_V2)
        key = (src, dst)
        prefix = self._env_prefix.get(key)
        if prefix is None:
            head = bytearray((_T_ENV,))
            _enc2_rawstr(head, src)
            _enc2_rawstr(head, dst)
            prefix = bytes(head)
            if len(self._env_prefix) < self._PAYLOAD_CACHE_LIMIT:
                self._env_prefix[key] = prefix
        out += prefix
        out += _F64.pack(send_time)
        if payload is self._enc_payload_obj:
            out += self._enc_payload_bytes
        else:
            start = len(out)
            _enc2(payload, out, self)
            if type(payload) in _MESSAGE_INDEX:
                self._enc_payload_obj = payload  # strong ref: id stays valid
                self._enc_payload_bytes = bytes(out[start:])
        length = len(out) - base - 4
        if length > MAX_FRAME:
            raise WireError(f"frame of {length} bytes exceeds MAX_FRAME")
        _HEADER.pack_into(out, base, length)

    def decode_parts(self, frame: bytes) -> tuple[str, str, float, Any]:
        """Decode an envelope frame to ``(src, dst, send_time, payload)``.

        The hot-path variant of :meth:`decode_envelope`: same validation,
        no :class:`Envelope` allocation, and the (src, dst) header parse
        is memoized on its raw byte prefix.
        """
        body = _check_body2(frame)
        if len(body) < 4 or body[3] != _T_ENV:
            raise WireError("expected an envelope frame")
        src = None
        for ln in self._dec_prefix_lens:
            hit = self._dec_prefix.get(body[4 : 4 + ln])
            if hit is not None:
                src, dst, pos = hit
                break
        if src is None:
            try:
                src, pos = _dec2_rawstr(body, 4)
                dst, pos = _dec2_rawstr(body, pos)
            except WireError:
                raise
            except struct.error as exc:
                raise WireError(f"malformed v2 envelope: {exc}") from None
            if len(self._dec_prefix) < self._PAYLOAD_CACHE_LIMIT:
                self._dec_prefix[bytes(body[4:pos])] = (src, dst, pos)
                if pos - 4 not in self._dec_prefix_lens:
                    self._dec_prefix_lens.append(pos - 4)
        _need(body, pos, 8)
        send_time = _F64.unpack_from(body, pos)[0]
        pos += 8
        span = bytes(body[pos:])
        payload = self._dec_payloads.get(span)
        if payload is None:
            payload, end = _guard_dec2(body, pos)
            if end != len(body):
                raise WireError(
                    f"{len(body) - end} trailing bytes after v2 envelope"
                )
            if type(payload) in _MESSAGE_INDEX:
                if len(self._dec_payloads) >= self._PAYLOAD_CACHE_LIMIT:
                    self._dec_payloads.clear()
                self._dec_payloads[span] = payload
        return src, dst, send_time, payload

    def decode_envelope(self, frame: bytes) -> Envelope:
        src, dst, send_time, payload = self.decode_parts(frame)
        return Envelope(src=src, dst=dst, payload=payload, send_time=send_time)

    def hello_frame(self, pid: str) -> bytes:
        out = bytearray((_T_HELLO,))
        _enc2_rawstr(out, self.format)
        _enc2_rawstr(out, pid)
        return _encode_body2(bytes(out))

    def decode_hello(self, frame: bytes) -> str:
        body = _check_body2(frame)
        if len(body) < 4 or body[3] != _T_HELLO:
            raise WireError("expected a hello frame")
        fmt, pos = _dec2_rawstr(body, 4)
        if fmt != self.format:
            raise WireError(
                f"peer speaks {fmt!r}, this codec speaks {self.format!r}"
            )
        pid, end = _dec2_rawstr(body, pos)
        if end != len(body):
            raise WireError("trailing bytes after v2 hello")
        return pid


class JsonCodec:
    """The ``repro-wire/1`` functions wrapped as a codec object."""

    version = WIRE_VERSION
    format = WIRE_FORMAT
    #: Surface parity with BinaryCodec; v1 is all-JSON so this never moves.
    esc_encodes = 0

    encode_frame = staticmethod(encode_frame)
    decode_frame = staticmethod(decode_frame)
    encode_envelope = staticmethod(encode_envelope)
    decode_envelope = staticmethod(decode_envelope)
    hello_frame = staticmethod(hello_frame)
    decode_hello = staticmethod(decode_hello)
    pack_frame = staticmethod(pack_frame)

    def encode_envelope_into(self, env: Envelope, out: bytearray) -> None:
        out += encode_envelope(env)

    def encode_payload_into(
        self, src: str, dst: str, send_time: float, payload: Any, out: bytearray
    ) -> None:
        out += encode_envelope(
            Envelope(src=src, dst=dst, payload=payload, send_time=send_time)
        )

    def decode_parts(self, frame: bytes) -> tuple[str, str, float, Any]:
        env = decode_envelope(frame)
        return env.src, env.dst, env.send_time, env.payload


#: Singleton codec registry; transports resolve versions through this.
CODECS: dict[int, Any] = {WIRE_VERSION: JsonCodec(), WIRE_VERSION_V2: BinaryCodec()}


def get_codec(version: int = DEFAULT_WIRE) -> Any:
    """Resolve a wire version to its codec singleton."""
    try:
        return CODECS[version]
    except KeyError:
        raise WireError(f"unknown wire version {version!r}") from None
