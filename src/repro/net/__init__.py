"""Live deployment tier: the simulator's protocol over real sockets.

Layers (each importable alone):

* :mod:`repro.net.wire` — the ``repro-wire/1`` framed codec.
* :mod:`repro.net.transport` — the :class:`Transport` seam with the sim
  and asyncio-stream backends.
* :mod:`repro.net.bridge` — :class:`NetEnvironment`, the environment
  stand-in that lets unmodified protocol classes run live.
* :mod:`repro.net.daemon` — :class:`ServerDaemon` / :class:`ClientEndpoint`.
* :mod:`repro.net.proxy` — socket-layer FairLossyChannel twin.
* :mod:`repro.net.cluster` — :class:`LiveRegisterCluster` on loopback.
* :mod:`repro.net.loadgen` — closed-loop load + ``BENCH_live.json``.

The import direction is strictly one-way: ``repro.net`` imports the
protocol layers, never the reverse (lint rule NET001).
"""

from repro.net.bridge import LiveClock, NetEnvironment
from repro.net.cluster import LiveRegisterCluster
from repro.net.daemon import TIMED_OUT, ClientEndpoint, ServerDaemon
from repro.net.loadgen import LoadResult, benchmark, run_load
from repro.net.proxy import FaultPolicy, FaultProxy
from repro.net.transport import SimTransport, StreamTransport, Transport
from repro.net.wire import WIRE_FORMAT, WIRE_VERSION, WireError

__all__ = [
    "LiveClock",
    "NetEnvironment",
    "LiveRegisterCluster",
    "TIMED_OUT",
    "ClientEndpoint",
    "ServerDaemon",
    "LoadResult",
    "benchmark",
    "run_load",
    "FaultPolicy",
    "FaultProxy",
    "SimTransport",
    "StreamTransport",
    "Transport",
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "WireError",
]
