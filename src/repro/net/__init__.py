"""Live deployment tier: the simulator's protocol over real sockets.

Layers (each importable alone):

* :mod:`repro.net.wire` — the framed codecs: ``repro-wire/2`` (binary,
  default) and ``repro-wire/1`` (JSON).
* :mod:`repro.net.transport` — the :class:`Transport` seam with the sim
  and asyncio-stream backends.
* :mod:`repro.net.bridge` — :class:`NetEnvironment`, the environment
  stand-in that lets unmodified protocol classes run live.
* :mod:`repro.net.daemon` — :class:`ServerDaemon` / :class:`ClientEndpoint`.
* :mod:`repro.net.proxy` — socket-layer FairLossyChannel twin.
* :mod:`repro.net.cluster` — :class:`LiveRegisterCluster` on loopback.
* :mod:`repro.net.loadgen` — closed/open-loop load, saturation sweeps,
  ``BENCH_live.json``.
* :mod:`repro.net.runtime` — optional uvloop installation with stdlib
  fallback.

The import direction is strictly one-way: ``repro.net`` imports the
protocol layers, never the reverse (lint rule NET001).
"""

from repro.net.bridge import LiveClock, NetEnvironment
from repro.net.cluster import LiveRegisterCluster
from repro.net.daemon import TIMED_OUT, ClientEndpoint, ServerDaemon
from repro.net.loadgen import (
    LoadResult,
    benchmark,
    measurement_harness,
    run_load,
    run_open_load,
    saturation_sweep,
)
from repro.net.proxy import FaultPolicy, FaultProxy
from repro.net.runtime import install_event_loop
from repro.net.transport import (
    HostFlusher,
    SimTransport,
    StreamTransport,
    Transport,
)
from repro.net.wire import (
    DEFAULT_WIRE,
    WIRE_FORMAT,
    WIRE_FORMAT_V2,
    WIRE_VERSION,
    WireError,
    get_codec,
)

__all__ = [
    "LiveClock",
    "NetEnvironment",
    "LiveRegisterCluster",
    "TIMED_OUT",
    "ClientEndpoint",
    "ServerDaemon",
    "LoadResult",
    "benchmark",
    "measurement_harness",
    "run_load",
    "run_open_load",
    "saturation_sweep",
    "install_event_loop",
    "FaultPolicy",
    "FaultProxy",
    "HostFlusher",
    "SimTransport",
    "StreamTransport",
    "Transport",
    "DEFAULT_WIRE",
    "WIRE_FORMAT",
    "WIRE_FORMAT_V2",
    "WIRE_VERSION",
    "WireError",
    "get_codec",
]
